"""Ablation A5 — the lock predictor (paper §3.4).

Measures (a) that prediction converges and is effectively perfect for
lock-implementing LL/SC (the paper: "the benchmarks always used LL/SC to
implement locks and so we had perfect behavior"), (b) that Fetch&Phi PCs
are *not* classified as locks, and (c) the pathological case: a PC whose
"critical sections" outlive the bound gets its entry disabled by the
accuracy counter.
"""

from conftest import once, publish
from repro import System, SystemConfig
from repro.cpu.ops import Compute, Read, Write
from repro.harness.tables import render_table
from repro.sync import TTSLock, fetch_and_add
from repro.sync.primitives import synthetic_pc


def mixed_run(n_processors: int = 8, iterations: int = 20):
    """Locks + Fetch&Inc mixed; returns predictor verdicts + stats."""
    system = System(SystemConfig(n_processors=n_processors, policy="iqolb"))
    lock = TTSLock(system.layout.alloc_line())
    counter = system.layout.alloc_line()
    shared = system.layout.alloc_line()

    def worker():
        for _ in range(iterations):
            yield from lock.acquire()
            value = yield Read(shared)
            yield Compute(25)
            yield Write(shared, value + 1)
            yield from lock.release()
            yield from fetch_and_add(counter, 1, pc_label="abl.count")
            yield Compute(70)

    for node in range(n_processors):
        system.load_program(node, worker())
    system.run()
    count_pc = synthetic_pc("abl.count")
    lock_votes = sum(
        1
        for c in system.controllers
        if c.policy.predictor.predict_lock(lock.pc_acquire)
    )
    fetchinc_votes = sum(
        1
        for c in system.controllers
        if c.policy.predictor.predict_lock(count_pc)
    )
    return {
        "n": n_processors,
        "lock_votes": lock_votes,
        "fetchinc_votes": fetchinc_votes,
        "tearoffs": system.total("tearoffs_sent"),
        "release_handoffs": system.total("handoff_release"),
        "sc_handoffs": system.total("handoff_sc"),
        "counter": system.read_word(counter),
        "protected": system.read_word(shared),
        "expected": n_processors * iterations,
    }


def pathological_run(n_processors: int = 4, iterations: int = 24):
    """Critical sections far longer than the bound: entries disable."""
    system = System(
        SystemConfig(n_processors=n_processors, policy="iqolb", timeout_cycles=300)
    )
    lock = TTSLock(system.layout.alloc_line())

    def worker():
        for _ in range(iterations):
            yield from lock.acquire()
            yield Compute(2_000)  # dwarfs the 300-cycle bound
            yield from lock.release()
            yield Compute(50)

    for node in range(n_processors):
        system.load_program(node, worker())
    system.run()
    disabled = sum(
        c.policy.predictor.stats()["disabled"] for c in system.controllers
    )
    return {
        "timeouts": system.total("timeouts"),
        "disabled_entries": disabled,
    }


def run_all():
    return mixed_run(), pathological_run()


def test_predictor_ablation(benchmark):
    mixed, pathological = once(benchmark, run_all)
    publish(
        "ablation_predictor",
        render_table(
            ["metric", "value"],
            list(mixed.items()) + list(pathological.items()),
            title="A5: lock predictor behaviour",
        ),
    )

    # Correctness of the mixed run.
    assert mixed["counter"] == mixed["expected"]
    assert mixed["protected"] == mixed["expected"]
    # Perfect classification: every node that voted, voted right.
    assert mixed["lock_votes"] == mixed["n"]
    assert mixed["fetchinc_votes"] == 0
    # Locks produce tear-offs + release hand-offs; Fetch&Inc produces
    # SC-time hand-offs.
    assert mixed["tearoffs"] > 0
    assert mixed["release_handoffs"] > 0
    assert mixed["sc_handoffs"] > 0

    # Pathological case: timeouts fire and the accuracy counter turns
    # entries off (paper §3.4).
    assert pathological["timeouts"] > 0
    assert pathological["disabled_entries"] > 0

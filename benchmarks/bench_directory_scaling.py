"""Headline — directory coherence vs. bus saturation, 16 to 128 procs.

The paper claims its mechanisms "require no changes to the processor"
and work "in systems with either a broadcast-based or a directory-based
coherence protocol" (§3.2's generality argument).  This bench runs the
taxonomy on the home-node directory over the point-to-point mesh
(``interconnect="directory"``) at machine sizes the broadcast bus
cannot reach, and measures both halves of the story:

* **Taxonomy transfers.**  The ordering the paper establishes on the
  bus — baseline > delayed > IQOLB in contended-lock cost — holds
  unchanged on the directory at 64 and 128 processors: the distributed
  queue forms from home-node forwarding instead of observed bus order.
* **The bus saturates; the directory scales.**  IQOLB is
  network-optimal (one line transfer per hand-off), so on the bus its
  per-hand-off cost is *flat* until the broadcast medium itself
  saturates — then it cliffs (every transaction still occupies the one
  shared address bus).  On the mesh the same protocol keeps scaling:
  hand-offs ride disjoint links.
"""

import functools

from conftest import once, publish, publish_metrics
from repro.harness.sweep import sweep
from repro.harness.tables import render_table
from repro.workloads.micro import NullCriticalSection

SIZES = [16, 32, 64, 128]
SMOKE_SIZES = [4, 8]
DIR_PRIMS = ["tts", "delayed", "iqolb"]
ACQUIRES = 6

factory = functools.partial(
    NullCriticalSection, acquires_per_proc=ACQUIRES, think_cycles=60
)


def measure(sizes, n_jobs=1, cache=None, engine="fast"):
    """Per-hand-off cost grids: the taxonomy on the directory, and
    IQOLB on both fabrics."""
    dir_grid = sweep(
        factory,
        DIR_PRIMS,
        sizes,
        config_overrides={"interconnect": "directory", "engine": engine},
        n_jobs=n_jobs,
        cache=cache,
    )
    bus_grid = sweep(
        factory,
        ["iqolb"],
        sizes,
        config_overrides={"interconnect": "bus", "engine": engine},
        n_jobs=n_jobs,
        cache=cache,
    )

    def per_handoff(grid, prim):
        return [
            grid.cell(prim, n).cycles / (n * ACQUIRES) for n in grid.cols
        ]

    results = {
        f"dir/{prim}": per_handoff(dir_grid, prim) for prim in DIR_PRIMS
    }
    results["bus/iqolb"] = per_handoff(bus_grid, "iqolb")
    export = {
        ("directory", prim, n): dir_grid.cell(prim, n)
        for prim in DIR_PRIMS
        for n in dir_grid.cols
    }
    export.update(
        {("bus", "iqolb", n): bus_grid.cell("iqolb", n) for n in bus_grid.cols}
    )
    return results, export


def test_directory_scaling(benchmark, smoke, jobs, result_cache, engine):
    sizes = SMOKE_SIZES if smoke else SIZES
    results, export = once(
        benchmark, measure, sizes, n_jobs=jobs, cache=result_cache, engine=engine
    )
    # The full grid is ~700KB of per-node counters at paper scale: too
    # big to commit raw, so publish the compact digest + gzipped full.
    # A non-default engine gets its own artefact name so the CI
    # perf-smoke lane can diff the fast and reference summaries.
    name = "directory_scaling" if engine == "fast" else f"directory_scaling_{engine}"
    publish_metrics(name, export, archive=True)
    rows = [
        [name] + [f"{c:.0f}" for c in cycles]
        for name, cycles in results.items()
    ]
    publish(
        name,
        render_table(
            ["fabric/primitive"] + [f"{s}p" for s in sizes],
            rows,
            title="Cycles per lock hand-off: directory taxonomy vs. bus",
        ),
    )
    if smoke:
        assert all(all(c > 0 for c in cycles) for cycles in results.values())
        return

    tts = results["dir/tts"]
    delayed = results["dir/delayed"]
    iqolb = results["dir/iqolb"]
    bus_iqolb = results["bus/iqolb"]

    # The paper's taxonomy ordering holds on the directory at every
    # size — including 64 and 128 processors, beyond any broadcast bus.
    for i, _n in enumerate(sizes):
        assert tts[i] > delayed[i] * 1.2
        assert delayed[i] > iqolb[i] * 1.2

    # IQOLB on the bus: flat while the broadcast medium has headroom...
    assert bus_iqolb[2] < bus_iqolb[0] * 2  # 16p -> 64p
    # ...then the bus itself saturates and the cost cliffs.
    assert bus_iqolb[3] > bus_iqolb[2] * 5  # 64p -> 128p

    # The directory has no shared medium to saturate: the same protocol
    # degrades smoothly past the bus's cliff...
    assert iqolb[3] < iqolb[2] * 4
    # ...and is absolutely cheaper than the saturated bus at 128p.
    assert iqolb[3] < bus_iqolb[3]

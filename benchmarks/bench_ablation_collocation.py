"""Ablation A3 — collocation (paper §2 and §6, Generalized IQOLB).

Compares the same critical section with protected data collocated in
the lock's cache line vs. in separate lines, under TTS, IQOLB and QOLB.
For the queue-based schemes the collocated data rides the lock hand-off
for free; for TTS the line ping-pongs either way.
"""

from conftest import once, publish
from repro.harness.config import SystemConfig
from repro.harness.experiment import PRIMITIVES, run_workload
from repro.harness.tables import render_table
from repro.workloads.micro import CollocatedCriticalSection, NullCriticalSection

PRIMS = ["tts", "iqolb", "qolb"]


def measure(n_processors: int = 16):
    out = {}
    for primitive in PRIMS:
        policy, lock_kind = PRIMITIVES[primitive]
        config = SystemConfig(n_processors=n_processors, policy=policy)
        separate = run_workload(
            NullCriticalSection(
                lock_kind=lock_kind, acquires_per_proc=20, think_cycles=80
            ),
            config,
            primitive=primitive,
        )
        collocated = run_workload(
            CollocatedCriticalSection(
                lock_kind=lock_kind, acquires_per_proc=20, think_cycles=80
            ),
            config,
            primitive=primitive,
        )
        out[primitive] = (separate, collocated)
    return out


def test_collocation_ablation(benchmark):
    results = once(benchmark, measure)
    rows = []
    for primitive, (separate, collocated) in results.items():
        rows.append(
            (
                primitive,
                separate.cycles,
                collocated.cycles,
                f"{separate.cycles / collocated.cycles:.2f}x",
                separate.bus_transactions,
                collocated.bus_transactions,
            )
        )
    publish(
        "ablation_collocation",
        render_table(
            ["primitive", "separate cyc", "collocated cyc", "benefit",
             "separate txns", "collocated txns"],
            rows,
            title="A3: collocation of lock and protected data (16p)",
        ),
    )

    for primitive in ("iqolb", "qolb"):
        separate, collocated = results[primitive]
        # Queue-based schemes: collocation saves the separate data-line
        # transfers entirely.
        assert collocated.bus_transactions < separate.bus_transactions
        assert collocated.cycles <= separate.cycles

    # And the benefit is larger for the queue schemes than for TTS.
    tts_sep, tts_col = results["tts"]
    tts_benefit = tts_sep.cycles / max(tts_col.cycles, 1)
    iq_sep, iq_col = results["iqolb"]
    iq_benefit = iq_sep.cycles / max(iq_col.cycles, 1)
    assert iq_benefit >= tts_benefit * 0.9

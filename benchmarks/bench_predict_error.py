"""Prediction-error bench: the analytical model vs. cached simulations.

Replays every committed benchmark cell (directory scaling, Figure 1
taxonomy, Table 3) through ``repro.predict`` — calibrating from those
same artifacts, with zero simulator invocations — and publishes the
``BENCH_predict_error.summary.json`` artifact CI gates on: mean
relative error <= 25% and the paper's taxonomy ordering (tts > delayed
> iqolb) preserved on >= 90% of comparable cell groups.

Unlike the other benches this one needs no ``--smoke`` split: the whole
validation is closed-form arithmetic and finishes in seconds.
"""

import pathlib

from conftest import RESULTS_DIR, once, publish
from repro.harness.tables import render_table
from repro.predict import check_gates, validate_artifacts, write_report

ROOT = pathlib.Path(__file__).resolve().parents[1]


def run_validation():
    return validate_artifacts(ROOT)


def test_predict_error(benchmark):
    report = once(benchmark, run_validation)

    write_report(report, RESULTS_DIR / "BENCH_predict_error.summary.json")

    rows = [
        (
            cell.artifact,
            "/".join(str(part) for part in cell.key),
            cell.kind,
            f"{cell.observed_cycles:,.0f}",
            f"{cell.predicted_cycles:,.0f}",
            f"{cell.rel_error:+.1%}",
            cell.regime,
        )
        for cell in sorted(report.cells, key=lambda c: -abs(c.rel_error))
    ]
    summary = (
        f"mean |rel error| {report.mean_abs_rel_error:.1%} over "
        f"{len(report.cells)} cells (max {report.max_abs_rel_error:.1%}); "
        f"ordering preserved on {report.ordering_agreement:.0%} of "
        f"{len(report.ordering)} groups"
    )
    table = render_table(
        ["artifact", "cell", "kind", "simulated", "predicted", "error",
         "regime"],
        rows,
        title=f"Prediction vs. cached simulation — {summary}",
    )
    publish("predict_error", table)

    # the same gates predict-smoke enforces in CI
    assert check_gates(report) == [], check_gates(report)
    # simulation-free: every observation came from the committed files
    assert len(report.cells) >= 50
    # the paper's ordering claim must hold in the *simulated* data too,
    # or the model is being graded against a broken pairing
    assert all(group.observed_ordered for group in report.ordering)

"""Ablation A8 — fairness (paper §3.2/§3.3).

The distributed queue grants the lock "in precisely the order in which
the original requests occurred" (§3.2); raw TTS spinning has no order at
all; and retention is said to come "at the expense of fairness".  This
bench measures waiting-time dispersion, FIFO inversions and Jain's
index for each primitive on one contended lock.
"""

from conftest import once, publish
from repro.harness.fairness import measure_lock_fairness
from repro.harness.tables import render_table

PRIMS = ["tts", "ticket", "mcs", "delayed", "iqolb", "iqolb+retention", "qolb"]


def measure():
    return {prim: measure_lock_fairness(prim) for prim in PRIMS}


def test_fairness(benchmark):
    reports = once(benchmark, measure)
    publish(
        "fairness",
        render_table(
            ["primitive", "acquires", "mean wait", "max wait",
             "wait CV", "FIFO inversions", "Jain idx"],
            [r.row() for r in reports.values()],
            title="A8: lock fairness (8 processors, one contended lock)",
        ),
    )

    tts = reports["tts"]
    iqolb = reports["iqolb"]
    qolb = reports["qolb"]
    ticket = reports["ticket"]

    # The explicitly FIFO primitives barely invert (ties at identical
    # arrival cycles can count as inversions, so allow a small slack).
    assert ticket.fifo_inversions <= tts.fifo_inversions
    assert iqolb.fifo_inversions < tts.fifo_inversions
    assert qolb.fifo_inversions < tts.fifo_inversions

    # Queue hand-off keeps waits tight: lower dispersion and far lower
    # worst-case than TTS's free-for-all.
    assert iqolb.max_wait < tts.max_wait
    assert iqolb.wait_cv < tts.wait_cv

    # Per-thread fairness (Jain index, 1.0 = perfectly fair).
    assert iqolb.jain_index > tts.jain_index
    assert iqolb.jain_index > 0.9

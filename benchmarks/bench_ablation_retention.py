"""Ablation A1 — queue retention vs. queue breakdown (paper §3.2/§3.3).

The paper presents both alternatives for handling a regular RFO hitting
a deferring owner: break the queue down (waiters squash and reissue,
possibly re-forming in a different order) or retain it (the owner loans
the line and takes it back).  This bench measures both on the workload
where the difference matters — a contended TTS lock, whose release store
is exactly the regular RFO that hits the queue.
"""

from conftest import once, publish
from repro.harness.config import SystemConfig
from repro.harness.experiment import PRIMITIVES, run_workload
from repro.harness.tables import render_table
from repro.workloads.micro import NullCriticalSection

VARIANTS = ["delayed", "delayed+retention", "iqolb", "iqolb+retention"]


def measure(n_processors: int = 16):
    out = {}
    for primitive in VARIANTS:
        policy, lock_kind = PRIMITIVES[primitive]
        config = SystemConfig(n_processors=n_processors, policy=policy)
        workload = NullCriticalSection(
            lock_kind=lock_kind, acquires_per_proc=20, think_cycles=80
        )
        result = run_workload(workload, config, primitive=primitive)
        out[primitive] = result
    return out


def test_retention_ablation(benchmark):
    results = once(benchmark, measure)
    rows = []
    for primitive, r in results.items():
        rows.append(
            (
                primitive,
                r.cycles,
                r.bus_transactions,
                r.stat("squashes"),
                r.stat("queue_breakdowns"),
                r.stat("loans"),
                r.stat("loan_returns"),
            )
        )
    publish(
        "ablation_retention",
        render_table(
            ["variant", "cycles", "bus txns", "squashes",
             "breakdowns", "loans", "returns"],
            rows,
            title="A1: queue retention vs breakdown (contended lock, 16p)",
        ),
    )

    delayed, delayed_ret = results["delayed"], results["delayed+retention"]
    iqolb, iqolb_ret = results["iqolb"], results["iqolb+retention"]

    # Without retention, the release store breaks the queue down; with
    # retention it becomes a loan instead.
    assert delayed.stat("squashes") > 0
    assert delayed_ret.stat("squashes") == 0
    assert delayed_ret.stat("loans") > 0
    assert delayed_ret.stat("loan_returns") > 0

    # Retention removes the re-request traffic, so for the delayed scheme
    # (which suffers a breakdown on every release) it is a clear win.
    assert delayed_ret.cycles < delayed.cycles
    assert delayed_ret.bus_transactions < delayed.bus_transactions

    # IQOLB rarely breaks down (the release usually happens while the
    # holder still owns the line), so the two variants are close — the
    # paper observed no breakdown at all in its runs (§4).
    ratio = iqolb_ret.cycles / iqolb.cycles
    assert 0.7 < ratio < 1.1

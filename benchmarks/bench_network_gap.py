"""Motivation study — the processor/communication performance gap.

The paper's abstract: "the ever increasing performance gap between
processor and interprocessor communication may further compromise the
scalability of these primitives."  This bench sweeps the data-network
latency (the crossbar's per-line transfer cost) and shows that the
baseline's contended-lock cost grows much faster than IQOLB's — i.e.,
the paper's mechanisms matter *more* as the gap widens.
"""

from conftest import once, publish
from repro.harness.config import SystemConfig
from repro.harness.experiment import PRIMITIVES, run_workload
from repro.harness.tables import render_table
from repro.workloads.micro import NullCriticalSection

LATENCIES = [20, 40, 80, 160]
#: per-link line serialization on the mesh (same 8x span as the bus
#: sweep; a transfer crosses several links, so the end-to-end line
#: latency sweeps a comparable range)
DIR_LATENCIES = [8, 16, 32, 64]
PRIMS = ["tts", "iqolb", "qolb"]


def measure(n_processors: int = 16):
    out = {}
    for primitive in PRIMS:
        policy, lock_kind = PRIMITIVES[primitive]
        per_latency = []
        for latency in LATENCIES:
            config = SystemConfig(
                n_processors=n_processors,
                policy=policy,
                xbar_line_cycles=latency,
            )
            workload = NullCriticalSection(
                lock_kind=lock_kind, acquires_per_proc=15, think_cycles=60
            )
            result = run_workload(workload, config, primitive=primitive)
            per_latency.append(result.cycles)
        out[primitive] = per_latency
        # The same sweep on the directory fabric: the gap argument is
        # protocol-generic, so it must reproduce without a broadcast
        # medium (line serialization is the mesh's per-link analogue of
        # the crossbar's transfer cost).
        per_latency = []
        for latency in DIR_LATENCIES:
            config = SystemConfig(
                n_processors=n_processors,
                policy=policy,
                interconnect="directory",
                net_line_ser_cycles=latency,
            )
            workload = NullCriticalSection(
                lock_kind=lock_kind, acquires_per_proc=15, think_cycles=60
            )
            result = run_workload(workload, config, primitive=primitive)
            per_latency.append(result.cycles)
        out[f"dir/{primitive}"] = per_latency
    return out


def test_network_gap(benchmark):
    results = once(benchmark, measure)
    rows = [
        [prim] + list(cycles) + [f"{cycles[-1] / cycles[0]:.2f}x"]
        for prim, cycles in results.items()
    ]
    publish(
        "network_gap",
        render_table(
            ["fabric/primitive"]
            + [f"L{i}" for i in range(len(LATENCIES))]
            + ["growth"],
            rows,
            title=(
                "Sensitivity to the data-network latency (contended lock, "
                f"16p; bus columns sweep {LATENCIES} cyc/line, dir columns "
                f"sweep {DIR_LATENCIES} cyc/link)"
            ),
        ),
    )

    for fabric in ("", "dir/"):
        tts = results[f"{fabric}tts"]
        iqolb = results[f"{fabric}iqolb"]
        qolb = results[f"{fabric}qolb"]
        # The queue-based schemes are network-optimal: one line transfer
        # per hand-off, so their cost tracks the transfer latency (and
        # IQOLB tracks QOLB throughout) — on either coherence fabric.
        for iq, q in zip(iqolb, qolb):
            assert iq / q < 1.2
        # TTS pays several transfers (plus invalidation storms) per
        # hand-off: it is multiples slower at *every* point of the sweep...
        for t, iq in zip(tts, iqolb):
            assert t / iq > 3
        # ...and the absolute cost of its extra traffic widens as the
        # processor/communication gap grows (the paper's motivation).
        assert (tts[-1] - iqolb[-1]) > (tts[0] - iqolb[0])

"""Figure 4 — the IQOLB sequence.

Replays the figure (three processors contending a predicted lock) and
asserts its structure: one LPRFO per acquire, tear-off copies delivered
to the waiters, local spinning (no extra bus traffic while waiting), and
the line handed to the next requestor by the *release store* — not the
acquire SC, and not a timeout.
"""

from conftest import once, publish, publish_chrome_trace
from repro.harness.traces import figure4_scenario


def test_fig4_iqolb_sequence(benchmark):
    result = once(benchmark, figure4_scenario, 3, 4)
    publish(
        "fig4_trace",
        result.render(limit=100) + "\n\nsummary: " + repr(result.summary),
    )
    # Machine-readable twin: the same run as a Perfetto-loadable trace.
    publish_chrome_trace("fig4", result.recorder.events)
    s = result.summary

    # Mutual exclusion held across all critical sections.
    assert s["cs_entries"] == s["expected"]
    # Tear-offs went to waiting requestors (speculative responses).
    assert s["tearoffs"] > 0
    # The hand-off happens at the release store (the IQOLB discharge),
    # and the deferral never had to fall back to its timeout.
    assert s["handoffs_at_release"] > 0
    assert s["timeouts"] == 0
    # Every release store was recognized by the held-lock table.
    assert s["releases_detected"] >= s["acquires"] - 1
    # One LPRFO per acquire at most: waiting generates no bus traffic
    # (local spinning on the tear-off).
    assert s["bus_lprfo"] <= s["acquires"]
    # No SC ever failed: the queue serializes acquires perfectly.
    assert s["sc_failures"] == 0

    # Stream structure: a tear-off delivery precedes the first
    # release-driven hand-off on the lock line.
    events = result.recorder.filtered(result.target_line)
    kinds = [e.kind for e in events]
    assert "tearoff" in kinds
    handoff_reasons = [
        e.info.get("reason")
        for e in events
        if e.kind == "handoff"
    ]
    assert "release" in handoff_reasons

"""Figure 3 — the delayed-response LL/SC sequence.

Replays the figure (three processors issuing concurrent LPRFOs) and
asserts its structure: a queue forms, exclusive responses are delayed
until the holder's SC completes, and — unlike Figure 2 — no processor
ever retries its LL/SC sequence.
"""

from conftest import once, publish
from repro.harness.traces import figure3_scenario


def test_fig3_delayed_sequence(benchmark):
    result = once(benchmark, figure3_scenario, 3, 4)
    publish(
        "fig3_trace",
        result.render(limit=80) + "\n\nsummary: " + repr(result.summary),
    )
    s = result.summary

    # Atomicity held, and — the figure's point — zero SC retries.
    assert s["final_value"] == s["expected"]
    assert s["sc_failures"] == 0
    # LL misses issue LPRFOs (one per RMW at most: single transaction).
    assert s["bus_lprfo"] <= s["expected"]
    # Responses were deferred and the queue drained at SC completions.
    assert s["deferrals"] > 0
    assert s["handoffs_at_sc"] > 0
    assert s["queue_waits"] > 0

    # Delayed exclusive responses: on the contended line, hand-offs (the
    # delayed responses) strictly follow the owner's SC in the stream.
    events = result.recorder.filtered(result.target_line)
    kinds = [e.kind for e in events]
    assert "handoff" in kinds and "defer" in kinds
    first_handoff = kinds.index("handoff")
    assert "sc" in kinds[:first_handoff]

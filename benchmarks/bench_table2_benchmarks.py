"""Table 2 — benchmarks and inputs.

Regenerates the paper's benchmark table from the live synthetic-model
registry, plus the reproduction's full parameterisation of each model.
"""

from conftest import once, publish
from repro.harness.tables import render_table2, render_table2_parameters
from repro.workloads.splash import APP_MODELS, APP_ORDER


def test_table2_regenerates(benchmark):
    text = once(benchmark, render_table2)
    publish("table2", text + "\n\n" + render_table2_parameters())

    assert APP_ORDER == ["barnes", "ocean", "radiosity", "raytrace", "water-nsq"]
    # The paper's input column analogues survive in the models.
    assert "2,048 bodies" in text
    assert "130x130" in text
    assert "room" in text
    assert "car" in text
    assert "512 molecules" in text
    # Models must conserve work across machine sizes (divisibility at 32p).
    for model in APP_MODELS.values():
        assert model.total_work % (32 * model.phases) == 0

"""Table 3 — the paper's headline result.

Runs all five synthetic SPLASH-2 models on the 32-processor Table 1
system under TTS, QOLB and IQOLB (plus the 1-processor TTS run for
absolute speedup), prints the regenerated Table 3, and asserts the
paper's qualitative claims:

* QOLB consistently outperforms TTS (paper §5);
* Barnes and Water are relatively insensitive (small gains);
* the other benchmarks show gains "in excess of 30%" — multiples, for
  Radiosity and Raytrace;
* IQOLB tracks QOLB: "although usually slower, IQOLB is never more than
  2% slower than QOLB" — we allow a slightly wider band (7%) for the
  reproduction's different substrate.
"""

from conftest import PAPER_TABLE3, RESULTS_DIR, once, publish
from repro.harness.experiment import table3_with_stats
from repro.harness.tables import render_table3

#: Smoke mode: an 8-processor machine with half the work per app.
#: total_work must divide n_processors x phases for every model.
SMOKE_PROCS = 8
SMOKE_MODEL = {"total_work": 320}


def test_table3_regenerates(benchmark, smoke, jobs, result_cache):
    n_procs = SMOKE_PROCS if smoke else 32
    overrides = SMOKE_MODEL if smoke else None
    RESULTS_DIR.mkdir(exist_ok=True)
    rows, stats = once(
        benchmark,
        table3_with_stats,
        n_procs,
        n_jobs=jobs,
        cache=result_cache,
        model_overrides=overrides,
        metrics_out=str(RESULTS_DIR / "BENCH_table3.json"),
    )
    text = render_table3(rows, n_processors=n_procs)
    lines = [text, "", stats.summary(), "", "paper-vs-measured:"]
    for row in rows:
        paper_abs, paper_qolb, paper_iqolb = PAPER_TABLE3[row.benchmark]
        lines.append(
            f"  {row.benchmark:10s} abs {row.tts_absolute_speedup:5.2f} "
            f"(paper {paper_abs:5.2f})  qolb {row.qolb_speedup:5.2f} "
            f"({paper_qolb:5.2f})  iqolb {row.iqolb_speedup:5.2f} "
            f"({paper_iqolb:5.2f})"
        )
    publish("table3", "\n".join(lines))

    if smoke:
        # Sweep-level sanity: every cell simulated and sensible; the
        # calibrated Table 3 claims only hold on the 32-processor system.
        assert len(rows) == 5
        for row in rows:
            assert row.tts_cycles > 0 and row.uniprocessor_cycles > 0
            assert row.qolb_speedup > 0.9
        return

    by_name = {row.benchmark: row for row in rows}

    # QOLB consistently outperforms TTS.
    for row in rows:
        assert row.qolb_speedup >= 0.99, f"{row.benchmark}: QOLB lost to TTS"

    # Sync-insensitive apps: small gains.  Sync-sensitive: large gains.
    assert by_name["barnes"].qolb_speedup < 1.25
    assert by_name["water-nsq"].qolb_speedup < 1.25
    assert by_name["ocean"].qolb_speedup > 1.3
    assert by_name["radiosity"].qolb_speedup > 3.0
    assert by_name["raytrace"].qolb_speedup > 5.0

    # Raytrace scales terribly under TTS; Water scales superbly.
    assert by_name["raytrace"].tts_absolute_speedup < 3.0
    assert by_name["water-nsq"].tts_absolute_speedup > 12.0

    # The key result: IQOLB tracks QOLB closely.
    for row in rows:
        ratio = row.iqolb_speedup / row.qolb_speedup
        assert ratio > 0.93, (
            f"{row.benchmark}: IQOLB {row.iqolb_speedup:.2f} trails QOLB "
            f"{row.qolb_speedup:.2f} by more than 7%"
        )

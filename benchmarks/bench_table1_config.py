"""Table 1 — baseline system parameters.

Regenerates the paper's Table 1 from the live :class:`SystemConfig`
defaults (no hard-coded strings: change a default and the table changes),
and checks the headline values against the paper.
"""

from conftest import once, publish
from repro.harness.config import SystemConfig
from repro.harness.tables import render_table1


def test_table1_regenerates(benchmark):
    config = SystemConfig()
    text = once(benchmark, render_table1, config)
    publish("table1", text)

    # The paper's Table 1 values, asserted against the live defaults.
    assert config.n_processors == 32
    assert config.line_bytes == 64
    assert config.l1_size_bytes == 64 * 1024 and config.l1_assoc == 2
    assert config.l1_hit_cycles == 1
    assert config.l2_size_bytes == 512 * 1024 and config.l2_assoc == 4
    assert config.l2_hit_cycles == 6
    assert config.bus_addr_latency == 12
    assert config.bus_max_outstanding == 117
    assert config.xbar_line_cycles == 40
    assert config.mem_first_chunk_cycles == 40
    assert config.mem_next_chunk_cycles == 4
    assert "sequential consistency" in text
    assert "512-KB" in text and "64-KB" in text

"""Ablation A6 — the wider primitive comparison (paper §2 related work).

Places the paper's mechanisms in the landscape of classic software
primitives: test&set with backoff, ticket lock, MCS queue lock — all on
the conventional protocol — against TTS, delayed response, IQOLB and
QOLB, on the contended-lock microbenchmark at 16 processors.
"""

import functools

from conftest import once, publish
from repro.harness.sweep import sweep
from repro.harness.tables import render_table
from repro.workloads.micro import NullCriticalSection

PRIMS = ["ts", "tts", "ticket", "anderson", "mcs", "clh",
         "delayed", "iqolb", "qolb"]

factory = functools.partial(
    NullCriticalSection, acquires_per_proc=15, think_cycles=80
)


def measure(n_processors: int = 16, n_jobs: int = 1, cache=None):
    grid = sweep(factory, PRIMS, [n_processors], n_jobs=n_jobs, cache=cache)
    return {prim: grid.cell(prim, n_processors) for prim in PRIMS}


def test_primitive_comparison(benchmark, smoke, jobs, result_cache):
    n_procs = 4 if smoke else 16
    results = once(
        benchmark, measure, n_procs, n_jobs=jobs, cache=result_cache
    )
    base = results["tts"].cycles
    rows = [
        (
            prim,
            r.cycles,
            f"{base / r.cycles:.2f}x",
            r.bus_transactions,
            r.stat("sc_fail"),
        )
        for prim, r in results.items()
    ]
    publish(
        "primitives",
        render_table(
            ["primitive", "cycles", "vs TTS", "bus txns", "SC fails"],
            rows,
            title=f"A6: primitive comparison (contended lock, {n_procs} "
                  "processors)",
        ),
    )
    if smoke:
        assert all(r.cycles > 0 for r in results.values())
        return

    # The software queue locks (Anderson, MCS, CLH) already beat raw TTS
    # spinning...
    for queue_lock in ("anderson", "mcs", "clh"):
        assert results[queue_lock].cycles < results["tts"].cycles
    # ...but the hardware queues beat the software queues (no software
    # overhead per hand-off), matching Kägi et al. / this paper.
    best_software = min(
        results[q].cycles for q in ("anderson", "mcs", "clh")
    )
    assert results["iqolb"].cycles < best_software
    assert results["qolb"].cycles < best_software
    # IQOLB stays in QOLB's neighbourhood.
    assert results["iqolb"].cycles / results["qolb"].cycles < 1.3

"""Ablation A7 — Generalized IQOLB (paper §6).

The paper's future-work proposal: "we believe that we can apply these
mechanisms to manage protected data as well as locks.  In fact, we
believe that these mechanisms can handle protected data better than QOLB
does."  This bench implements and measures it: critical sections whose
data lives in *separate* cache lines (so collocation cannot help), under
plain IQOLB vs. Generalized IQOLB which learns the protected lines and
forwards them with the released lock.
"""

from conftest import once, publish
from repro import System, SystemConfig
from repro.cpu.ops import Compute, Read, Write
from repro.harness.tables import render_table
from repro.sync import TTSLock

PRIMS = ["iqolb", "iqolb+gen"]


def run(policy: str, n: int = 16, iters: int = 15, data_lines: int = 3):
    system = System(SystemConfig(n_processors=n, policy=policy))
    lock = TTSLock(system.layout.alloc_line())
    data = [system.layout.alloc_line() for _ in range(data_lines)]

    def worker():
        for _ in range(iters):
            yield from lock.acquire()
            for addr in data:
                value = yield Read(addr)
                yield Write(addr, value + 1)
            yield from lock.release()
            yield Compute(90)

    for node in range(n):
        system.load_program(node, worker())
    cycles = system.run()
    for addr in data:
        assert system.read_word(addr) == n * iters, "protected data corrupted"
    return {
        "cycles": cycles,
        "bus_txns": system.bus_transactions(),
        "pushes": system.total("pushes_sent"),
        "retries": system.stats.value("bus.retries"),
    }


def measure():
    return {policy: run(policy) for policy in PRIMS}


def test_generalized_iqolb(benchmark):
    results = once(benchmark, measure)
    rows = [
        (policy, r["cycles"], r["bus_txns"], r["pushes"], r["retries"])
        for policy, r in results.items()
    ]
    publish(
        "ablation_generalized",
        render_table(
            ["variant", "cycles", "bus txns", "pushes", "bus retries"],
            rows,
            title="A7: Generalized IQOLB — forwarding protected data (16p, "
            "3 separate data lines per CS)",
        ),
    )

    plain, gen = results["iqolb"], results["iqolb+gen"]
    # The generalization actually pushed data...
    assert gen["pushes"] > 0
    assert plain["pushes"] == 0
    # ...and the pushes convert the CS's data misses into hits: fewer
    # bus transactions and less time.
    assert gen["bus_txns"] < plain["bus_txns"]
    assert gen["cycles"] < plain["cycles"]

"""Shared helpers for the benchmark harness.

Each bench regenerates one table or figure of the paper (see DESIGN.md's
experiment index).  Simulated runs are deterministic and expensive, so
every bench executes exactly once per session (``once``) and both prints
its artefact and writes it under ``results/``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: The paper's Table 3 (TTS absolute, QOLB relative, IQOLB relative).
PAPER_TABLE3 = {
    "barnes": (7.5, 1.06, 1.06),
    "ocean": (6.0, 1.54, 1.52),
    "radiosity": (2.5, 6.37, 6.37),
    "raytrace": (1.5, 11.01, 10.75),
    "water-nsq": (18.1, 1.06, 1.06),
}


def once(benchmark, fn, *args, **kwargs):
    """Run a deterministic, expensive experiment exactly once."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def publish(name: str, text: str) -> None:
    """Print an artefact and persist it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def paper_table3():
    return PAPER_TABLE3

"""Shared helpers for the benchmark harness.

Each bench regenerates one table or figure of the paper (see DESIGN.md's
experiment index).  Simulated runs are deterministic and expensive, so
every bench executes exactly once per session (``once``) and both prints
its artefact and writes it under ``results/``.

Harness options (also used by the CI smoke step):

``--smoke``
    Tiny machine sizes and short workloads: every driver still runs
    end-to-end (catching protocol regressions that only appear under
    sweeps), but the paper-calibrated quantitative assertions are
    skipped — they only hold at paper scale.
``--jobs N``
    Worker processes for sweep cells (default 1, serial).
``--no-cache``
    Ignore the on-disk result cache and re-simulate every cell.
``--engine {fast,reference}``
    Simulation kernel for every cell (default ``fast``).  The CI
    perf-smoke lane runs the same bench under both engines and asserts
    the artefacts agree (the engines are bit-identical by contract;
    see DESIGN.md "Two-engine architecture").
"""

from __future__ import annotations

import pathlib

import pytest

from repro.engine.simulator import ENGINES
from repro.harness.cache import ResultCache
from repro.telemetry import (
    ChromeTraceSink,
    replay,
    write_metrics,
    write_metrics_archive,
)

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: The paper's Table 3 (TTS absolute, QOLB relative, IQOLB relative).
PAPER_TABLE3 = {
    "barnes": (7.5, 1.06, 1.06),
    "ocean": (6.0, 1.54, 1.52),
    "radiosity": (2.5, 6.37, 6.37),
    "raytrace": (1.5, 11.01, 10.75),
    "water-nsq": (18.1, 1.06, 1.06),
}


def pytest_addoption(parser):
    group = parser.getgroup("repro benches")
    group.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="tiny sweeps, end-to-end only; skip paper-scale assertions",
    )
    group.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep cells (default: 1, serial)",
    )
    group.addoption(
        "--no-cache",
        action="store_true",
        default=False,
        help="bypass the on-disk result cache",
    )
    group.addoption(
        "--engine",
        choices=list(ENGINES),
        default="fast",
        help="simulation kernel for every cell (default: fast)",
    )


def once(benchmark, fn, *args, **kwargs):
    """Run a deterministic, expensive experiment exactly once."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def publish(name: str, text: str) -> None:
    """Print an artefact and persist it under results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def publish_metrics(name, results, runner_stats=None, archive=False) -> pathlib.Path:
    """Persist a machine-readable metrics document under results/.

    ``results`` is a grid (key -> RunResult) or an iterable of
    RunResults; the artefact conforms to
    ``tests/schemas/metrics.schema.json``.

    With ``archive=True`` (for sweeps too large to commit raw) the
    full document is written gzipped (``BENCH_<name>.json.gz``) next to
    a committed compact digest (``BENCH_<name>.summary.json``,
    ``tests/schemas/metrics_summary.schema.json``).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    if archive:
        base = RESULTS_DIR / f"BENCH_{name}.json"
        write_metrics_archive(base, results, runner_stats)
        return RESULTS_DIR / f"BENCH_{name}.summary.json"
    path = RESULTS_DIR / f"BENCH_{name}.json"
    write_metrics(path, results, runner_stats)
    return path


def publish_chrome_trace(name, events) -> pathlib.Path:
    """Persist recorded telemetry events as a Chrome trace under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.trace.json"
    replay(events, ChromeTraceSink(path))
    return path


@pytest.fixture
def paper_table3():
    return PAPER_TABLE3


@pytest.fixture
def smoke(request) -> bool:
    return request.config.getoption("--smoke")


@pytest.fixture
def jobs(request) -> int:
    return request.config.getoption("--jobs")


@pytest.fixture
def engine(request) -> str:
    return request.config.getoption("--engine")


@pytest.fixture
def result_cache(request):
    """The shared result cache, or None under ``--no-cache``."""
    if request.config.getoption("--no-cache"):
        return None
    return ResultCache()

"""Widened lock ladder — modern software queue locks vs. the taxonomy.

The paper's ladder compares delay-insertion protocols against TTS and
the hardware queues.  This bench adds the modern software primitives
built on the qcore substrate — the reciprocating lock (single-word
palindromic admission) and the fissile lock (test&set fast path behind
an MCS anti-collapse queue) — and runs the widened ladder on **both**
fabrics at 16-128 processors, against TTS, MCS, delayed response, and
IQOLB.

Expected shape (the taxonomy's claim, extended):

* TTS collapses super-linearly on both fabrics (invalidation storm).
* Delayed response bounds the storm but keeps centralized spinning.
* MCS, reciprocating, and fissile — all ``swqueue`` class — track each
  other within a small factor: one software hand-off per transfer,
  regardless of which queue discipline (FIFO, palindromic, or bounded
  barging) orders the waiters.
* IQOLB (hardware queue) beats every software queue at small scale —
  the hand-off is one line transfer with no software protocol around
  it — but the measured ladder shows a **crossover**: per-hand-off
  cost for the software queues is nearly flat in machine size (the
  next holder is already spinning on its own private word), while
  IQOLB's cost grows with the fabric (and falls off the bus's known
  128p saturation cliff).  By 64 processors on the directory, and at
  the 128p bus cliff, every software queue undercuts the hardware
  queue.
"""

import functools

from conftest import once, publish, publish_metrics
from repro.harness.sweep import sweep
from repro.harness.tables import render_table
from repro.workloads.micro import NullCriticalSection

SIZES = [16, 32, 64, 128]
SMOKE_SIZES = [4, 8]
PRIMS = ["tts", "delayed", "iqolb", "mcs", "reciprocating", "fissile"]
FABRICS = ["bus", "directory"]
ACQUIRES = 4

factory = functools.partial(
    NullCriticalSection, acquires_per_proc=ACQUIRES, think_cycles=60
)


def measure(sizes, n_jobs=1, cache=None, engine="fast"):
    """Per-hand-off cost for the widened ladder on both fabrics."""
    results = {}
    export = {}
    for fabric in FABRICS:
        grid = sweep(
            factory,
            PRIMS,
            sizes,
            config_overrides={"interconnect": fabric, "engine": engine},
            n_jobs=n_jobs,
            cache=cache,
        )
        for prim in PRIMS:
            results[f"{fabric}/{prim}"] = [
                grid.cell(prim, n).cycles / (n * ACQUIRES) for n in sizes
            ]
            export.update(
                {(fabric, prim, n): grid.cell(prim, n) for n in sizes}
            )
    return results, export


def test_lock_ladder(benchmark, smoke, jobs, result_cache, engine):
    sizes = SMOKE_SIZES if smoke else SIZES
    results, export = once(
        benchmark, measure, sizes, n_jobs=jobs, cache=result_cache,
        engine=engine,
    )
    publish_metrics("lock_ladder", export, archive=True)
    rows = [
        [name] + [f"{c:.0f}" for c in cycles]
        for name, cycles in results.items()
    ]
    publish(
        "lock_ladder",
        render_table(
            ["fabric/primitive"] + [f"{s}p" for s in sizes],
            rows,
            title="Cycles per lock hand-off: widened ladder, both fabrics",
        ),
    )
    if smoke:
        assert all(all(c > 0 for c in cycles) for cycles in results.values())
        return

    for fabric in FABRICS:
        tts = results[f"{fabric}/tts"]
        delayed = results[f"{fabric}/delayed"]
        iqolb = results[f"{fabric}/iqolb"]
        mcs = results[f"{fabric}/mcs"]
        recip = results[f"{fabric}/reciprocating"]
        fissile = results[f"{fabric}/fissile"]
        queues = (mcs, recip, fissile)

        for i, n in enumerate(sizes):
            # The storm -> deferred rung holds at every size on both
            # fabrics, and deferred -> queued everywhere short of the
            # bus's known 128-processor saturation cliff (where IQOLB's
            # LPRFO traffic saturates the address bus and the hardware
            # queue's advantage inverts — see ROADMAP's PR 3 note).
            assert tts[i] > delayed[i] * 1.2
            if not (fabric == "bus" and n == 128):
                assert delayed[i] > iqolb[i] * 1.2
            # Every software queue lock escapes the TTS storm.
            for sw in queues:
                assert sw[i] < tts[i]

        # At small scale the hardware queue beats every software queue:
        # the hand-off is one line transfer with no software protocol
        # around it.
        for i, n in enumerate(sizes):
            if n <= 32:
                for sw in queues:
                    assert iqolb[i] < sw[i]
        # The crossover: software-queue hand-off cost is nearly flat in
        # machine size (the next holder already spins on its own word),
        # while IQOLB's grows with the fabric — at 128 processors every
        # software queue undercuts the hardware queue on both fabrics.
        for sw in queues:
            assert sw[-1] < iqolb[-1]

        # The swqueue class is a class: the modern locks track MCS
        # within a small factor at every machine size — the queue
        # discipline (FIFO vs. palindromic vs. bounded barging) does
        # not change the per-hand-off cost regime.
        for sw in (recip, fissile):
            for i, _n in enumerate(sizes):
                assert sw[i] < mcs[i] * 3
                assert sw[i] > mcs[i] / 3

        # Contention tolerance at scale: at 128 processors the modern
        # locks' hand-off cost stays below the *delayed* storm cost —
        # software queues beat bounded centralized spinning.
        assert recip[-1] < delayed[-1]
        assert fissile[-1] < delayed[-1]

    # On the bus the software queues are *flat*: one line ping-pongs
    # between two fixed nodes per hand-off, independent of machine
    # size.  (On the directory, mesh distance grows the cost ~2x from
    # 16p to 128p — still an order flatter than any spinning lock.)
    for name in ("mcs", "reciprocating", "fissile"):
        cycles = results[f"bus/{name}"]
        assert max(cycles) < min(cycles) * 1.2

"""Ablation A2 — sensitivity to the deferral time-out (paper §3.2/§3.3).

The time-out bounds how long a response may be delayed.  Too short and
the line is yanked away before the SC/release (forcing extra traffic);
long enough and it never fires (the paper's expectation: "time-outs will
indeed be infrequent").  Sweep the bound on a contended lock whose
critical section is ~200 cycles.
"""

from conftest import once, publish
from repro.harness.config import SystemConfig
from repro.harness.experiment import run_workload
from repro.harness.tables import render_table
from repro.workloads.micro import CollocatedCriticalSection

TIMEOUTS = [50, 200, 1_000, 5_000, 20_000]


def measure(n_processors: int = 16):
    out = {}
    for timeout in TIMEOUTS:
        config = SystemConfig(
            n_processors=n_processors, policy="iqolb", timeout_cycles=timeout
        )
        workload = CollocatedCriticalSection(
            lock_kind="tts", acquires_per_proc=20, think_cycles=80
        )
        out[timeout] = run_workload(workload, config, primitive="iqolb")
    return out


def test_timeout_ablation(benchmark):
    results = once(benchmark, measure)
    rows = [
        (
            timeout,
            r.cycles,
            r.bus_transactions,
            r.stat("timeouts"),
            r.stat("handoff_timeout"),
            r.stat("handoff_release"),
        )
        for timeout, r in results.items()
    ]
    publish(
        "ablation_timeout",
        render_table(
            ["timeout", "cycles", "bus txns", "timer fires",
             "timeout handoffs", "release handoffs"],
            rows,
            title="A2: deferral time-out sensitivity (IQOLB, contended lock)",
        ),
    )

    shortest = results[TIMEOUTS[0]]
    longest = results[TIMEOUTS[-1]]

    # A too-short bound fires constantly; a generous one never does.
    assert shortest.stat("timeouts") > 0
    assert longest.stat("timeouts") == 0
    # And firing early costs real performance and traffic.
    assert longest.cycles < shortest.cycles
    assert longest.bus_transactions <= shortest.bus_transactions
    # Once the bound comfortably covers the critical section, further
    # increases change nothing (the timer is dead weight).
    assert abs(results[5_000].cycles - results[20_000].cycles) <= max(
        results[20_000].cycles // 50, 200
    )

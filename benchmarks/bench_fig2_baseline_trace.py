"""Figure 2 — the traditional LL/SC sequence.

Replays the figure's scenario (two processors, shared copies, racing
upgrades) and asserts its structure: shared read responses, exclusive
requests, and an invalidate that forces the loser to retry.
"""

from conftest import once, publish
from repro.harness.traces import figure2_scenario


def test_fig2_baseline_sequence(benchmark):
    result = once(benchmark, figure2_scenario, 4)
    publish(
        "fig2_trace",
        result.render(limit=60) + "\n\nsummary: " + repr(result.summary),
    )
    s = result.summary

    # Atomicity held: every increment landed.
    assert s["final_value"] == s["expected"]
    # Two network transactions per contended RMW: reads for the shared
    # copies plus an upgrade per successful SC.
    assert s["bus_upgrades"] >= s["expected"] - 1
    assert s["bus_gets"] >= 2
    # The invalidate -> force retry of the figure: SCs failed.
    assert s["sc_failures"] > 0
    # The baseline never defers anything.
    assert s["deferrals"] == 0

    # The recorded stream shows a failed SC after a successful one (the
    # forced retry) on the contended line.
    outcomes = [
        e.info.get("success")
        for e in result.recorder.filtered(result.target_line, kinds=["sc"])
    ]
    assert False in outcomes and True in outcomes

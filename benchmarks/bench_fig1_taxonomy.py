"""Figure 1 — the method taxonomy, quantified.

The paper's Figure 1 is a chart of methods with their pros and cons.
This bench turns each frame's +/- claims into measurements on a
contended Fetch&Inc (the RMW case) and a contended lock (the lock case),
and asserts them:

* Baseline: at least one processor always succeeds, but ~2 network
  transactions per RMW update under sharing.
* Aggressive baseline: ~1 transaction per RMW, but SC failures appear
  under contention (the livelock exposure).
* Delayed response: builds a queue — deferrals observed, no SC failures.
* IQOLB: distinguishes Fetch&Phi from lock acquire/release — tear-offs
  and release-store hand-offs on the lock workload only.
"""

import dataclasses

from conftest import once, publish, publish_metrics
from repro.harness.config import SystemConfig
from repro.harness.experiment import PRIMITIVES, run_workload
from repro.harness.tables import render_table
from repro.workloads.micro import ContendedCounter, NullCriticalSection

POLICY_PRIMS = ["aggressive", "adaptive", "delayed", "delayed+retention",
                "iqolb", "iqolb+retention", "iqolb+gen", "qolb"]


@dataclasses.dataclass
class Row:
    primitive: str
    rmw_cycles: int
    rmw_txns_per_update: float
    rmw_sc_failures: int
    lock_cycles: int
    lock_txns_per_acquire: float
    tearoffs: int
    release_handoffs: int


def measure(
    primitive: str,
    n_processors: int = 16,
    increments: int = 30,
    acquires: int = 20,
):
    """Returns the figure row plus the raw (rmw, lock) RunResults."""
    policy, lock_kind = PRIMITIVES[primitive]
    config = SystemConfig(n_processors=n_processors, policy=policy)

    counter = ContendedCounter(increments_per_proc=increments, think_cycles=40)
    rmw = run_workload(counter, config, primitive=primitive)
    updates = n_processors * increments

    lock = NullCriticalSection(
        lock_kind=lock_kind, acquires_per_proc=acquires, think_cycles=80
    )
    lock_run = run_workload(lock, config, primitive=primitive)
    total_acquires = n_processors * acquires

    row = Row(
        primitive=primitive,
        rmw_cycles=rmw.cycles,
        rmw_txns_per_update=rmw.bus_transactions / updates,
        rmw_sc_failures=rmw.stat("sc_fail"),
        lock_cycles=lock_run.cycles,
        lock_txns_per_acquire=lock_run.bus_transactions / total_acquires,
        tearoffs=lock_run.stat("tearoffs_sent"),
        release_handoffs=lock_run.stat("handoff_release"),
    )
    return row, [rmw, lock_run]


def run_all(n_processors: int = 16, increments: int = 30, acquires: int = 20):
    """(primitive -> Row, grid of every raw RunResult keyed for export)."""
    rows = {}
    grid = {}
    for prim in ["tts"] + POLICY_PRIMS:
        row, results = measure(prim, n_processors, increments, acquires)
        rows[prim] = row
        grid[(prim, "rmw")] = results[0]
        grid[(prim, "lock")] = results[1]
    return rows, grid


def test_fig1_taxonomy(benchmark, smoke):
    if smoke:
        rows, grid = once(benchmark, run_all, 4, 10, 8)
    else:
        rows, grid = once(benchmark, run_all)
    publish_metrics("fig1_taxonomy", grid)
    n_procs = 4 if smoke else 16
    table = render_table(
        ["method", "RMW cyc", "txns/RMW", "SC fails",
         "lock cyc", "txns/acq", "tearoffs", "rel-handoffs"],
        [
            (
                r.primitive,
                r.rmw_cycles,
                f"{r.rmw_txns_per_update:.2f}",
                r.rmw_sc_failures,
                r.lock_cycles,
                f"{r.lock_txns_per_acquire:.2f}",
                r.tearoffs,
                r.release_handoffs,
            )
            for r in rows.values()
        ],
        title=f"Figure 1 taxonomy, quantified ({n_procs} processors)",
    )
    publish("fig1_taxonomy", table)

    if smoke:
        # End-to-end protocol sanity only; the calibrated claims below
        # hold at paper scale, not on a 4-processor smoke machine.
        assert rows["delayed"].rmw_sc_failures == 0
        assert rows["iqolb"].rmw_sc_failures == 0
        assert rows["delayed"].tearoffs == 0
        return

    base, aggr = rows["tts"], rows["aggressive"]
    delayed, iqolb = rows["delayed"], rows["iqolb"]
    adaptive = rows["adaptive"]

    # Conservative hybrid (paper §3.1): matches aggressive's single
    # transaction per RMW when speculation pays; no livelock by design
    # (a failure de-arms it), so the run completed (we are here).
    assert adaptive.rmw_txns_per_update < base.rmw_txns_per_update

    # Baseline: needs ~2 transactions per contended RMW update...
    assert base.rmw_txns_per_update > 1.5
    # ...but everyone completed (the harness would have hung otherwise).

    # Aggressive: single transaction per RMW update.
    assert aggr.rmw_txns_per_update < 1.3
    # Livelock exposure: contended SCs fail under aggressive but never
    # under the deferral schemes.
    assert delayed.rmw_sc_failures == 0
    assert iqolb.rmw_sc_failures == 0

    # Delayed response beats both baselines on the RMW workload.
    assert delayed.rmw_cycles < base.rmw_cycles
    assert delayed.rmw_cycles <= aggr.rmw_cycles * 1.05

    # IQOLB distinguishes locks: tear-offs and release hand-offs appear
    # on the lock workload; the delayed scheme never produces them.
    assert iqolb.tearoffs > 0
    assert iqolb.release_handoffs > 0
    assert delayed.tearoffs == 0
    assert delayed.release_handoffs == 0

    # And IQOLB beats delayed response on locks (the point of §3.3).
    assert iqolb.lock_cycles < delayed.lock_cycles
    # QOLB-class transaction economy.  The workload's critical section
    # touches a token in a *separate* line (2 transfers per entry), so
    # the lock line itself contributes ~1 transaction per acquire —
    # versus the baseline's invalidation storm (tens per acquire).
    assert iqolb.lock_txns_per_acquire < 5.0
    assert rows["qolb"].lock_txns_per_acquire < 4.0
    assert iqolb.lock_txns_per_acquire < base.lock_txns_per_acquire / 4

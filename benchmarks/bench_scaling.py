"""Ablation A4 — primitive scaling, 2 to 32 processors.

The motivation experiment behind the whole line of work: the cost of one
lock hand-off as contention grows.  TTS degrades super-linearly
(invalidation storms); the hardware-queue schemes stay nearly flat (one
line transfer per hand-off, paper §2).
"""

from conftest import once, publish

from repro.harness.config import SystemConfig
from repro.harness.experiment import PRIMITIVES, run_workload
from repro.harness.tables import render_table
from repro.workloads.micro import NullCriticalSection

SIZES = [2, 4, 8, 16, 32]
PRIMS = ["tts", "delayed", "iqolb", "qolb"]


def measure():
    out = {}
    for primitive in PRIMS:
        policy, lock_kind = PRIMITIVES[primitive]
        per_size = []
        for size in SIZES:
            config = SystemConfig(n_processors=size, policy=policy)
            workload = NullCriticalSection(
                lock_kind=lock_kind, acquires_per_proc=15, think_cycles=60
            )
            result = run_workload(workload, config, primitive=primitive)
            per_size.append(result.cycles / (size * 15))
        out[primitive] = per_size
    return out


def test_scaling(benchmark):
    results = once(benchmark, measure)
    rows = [
        [prim] + [f"{c:.0f}" for c in cycles]
        for prim, cycles in results.items()
    ]
    publish(
        "scaling",
        render_table(
            ["primitive"] + [f"{s}p" for s in SIZES],
            rows,
            title="A4: cycles per lock hand-off vs. machine size",
        ),
    )

    tts, iqolb, qolb = results["tts"], results["iqolb"], results["qolb"]
    # TTS hand-off cost explodes with contention...
    assert tts[-1] > tts[0] * 4
    # ...while the queue-based schemes stay nearly flat.
    assert iqolb[-1] < iqolb[0] * 3
    assert qolb[-1] < qolb[0] * 3
    # At 32 processors the gap is the paper's headline: multiple x.
    assert tts[-1] / iqolb[-1] > 3
    # IQOLB tracks QOLB at every machine size.
    for iq, q in zip(iqolb, qolb):
        assert iq / q < 1.35

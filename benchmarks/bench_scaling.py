"""Ablation A4 — primitive scaling, 2 to 32 processors.

The motivation experiment behind the whole line of work: the cost of one
lock hand-off as contention grows.  TTS degrades super-linearly
(invalidation storms); the hardware-queue schemes stay nearly flat (one
line transfer per hand-off, paper §2).
"""

import functools

from conftest import once, publish
from repro.harness.sweep import sweep
from repro.harness.tables import render_table
from repro.workloads.micro import NullCriticalSection

SIZES = [2, 4, 8, 16, 32]
PRIMS = ["tts", "delayed", "iqolb", "qolb"]
ACQUIRES = 15

factory = functools.partial(
    NullCriticalSection, acquires_per_proc=ACQUIRES, think_cycles=60
)


def measure(sizes, n_jobs=1, cache=None):
    grid = sweep(factory, PRIMS, sizes, n_jobs=n_jobs, cache=cache)
    return {
        prim: [grid.cell(prim, size).cycles / (size * ACQUIRES) for size in sizes]
        for prim in PRIMS
    }


def test_scaling(benchmark, smoke, jobs, result_cache):
    sizes = SIZES[:3] if smoke else SIZES
    results = once(benchmark, measure, sizes, n_jobs=jobs, cache=result_cache)
    rows = [
        [prim] + [f"{c:.0f}" for c in cycles]
        for prim, cycles in results.items()
    ]
    publish(
        "scaling",
        render_table(
            ["primitive"] + [f"{s}p" for s in sizes],
            rows,
            title="A4: cycles per lock hand-off vs. machine size",
        ),
    )
    if smoke:
        assert all(all(c > 0 for c in cycles) for cycles in results.values())
        return

    tts, iqolb, qolb = results["tts"], results["iqolb"], results["qolb"]
    # TTS hand-off cost explodes with contention...
    assert tts[-1] > tts[0] * 4
    # ...while the queue-based schemes stay nearly flat.
    assert iqolb[-1] < iqolb[0] * 3
    assert qolb[-1] < qolb[0] * 3
    # At 32 processors the gap is the paper's headline: multiple x.
    assert tts[-1] / iqolb[-1] > 3
    # IQOLB tracks QOLB at every machine size.
    for iq, q in zip(iqolb, qolb):
        assert iq / q < 1.35

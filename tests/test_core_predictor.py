"""Unit tests for the lock predictor and held-lock table (paper §3.4)."""

from hypothesis import given, strategies as st

from repro.core.predictor import HeldLockTable, LockPredictor
from repro.mem.address import AddressMap


class TestLockPredictor:
    def test_unknown_pc_is_not_a_lock(self):
        assert not LockPredictor().predict_lock(0x400)

    def test_training(self):
        predictor = LockPredictor()
        predictor.train_lock(0x400)
        assert predictor.predict_lock(0x400)
        assert not predictor.predict_lock(0x404)

    def test_capacity_eviction(self):
        predictor = LockPredictor(capacity=2)
        predictor.train_lock(1)
        predictor.train_lock(2)
        predictor.train_lock(3)  # evicts pc=1 (LRU)
        assert not predictor.predict_lock(1)
        assert predictor.predict_lock(2)
        assert predictor.predict_lock(3)

    def test_pathological_disable(self):
        predictor = LockPredictor(min_samples=4, disable_threshold=0.6)
        predictor.train_lock(0x400)  # 1 correct
        for _ in range(3):
            predictor.record_misprediction(0x400)
        # 1 correct / 4 samples = 0.25 < 0.6 -> disabled
        assert not predictor.predict_lock(0x400)
        assert predictor.stats()["disabled"] == 1

    def test_accurate_entries_stay_enabled(self):
        predictor = LockPredictor(min_samples=4, disable_threshold=0.6)
        predictor.train_lock(0x400)
        for _ in range(10):
            predictor.record_correct(0x400)
        predictor.record_misprediction(0x400)
        assert predictor.predict_lock(0x400)

    def test_misprediction_of_unknown_pc_is_noop(self):
        predictor = LockPredictor()
        predictor.record_misprediction(0x999)  # must not raise
        assert predictor.stats()["entries"] == 0

    def test_stats(self):
        predictor = LockPredictor()
        predictor.train_lock(1)
        stats = predictor.stats()
        assert stats == {"entries": 1, "lock_entries": 1, "disabled": 0}


def make_table(capacity=4):
    return HeldLockTable(AddressMap(64), capacity=capacity)


class TestHeldLockTable:
    def test_insert_and_release(self):
        table = make_table()
        table.insert(0x100, pc=7, now=0)
        entry = table.release(0x100)
        assert entry is not None and entry.pc == 7
        assert table.release(0x100) is None

    def test_release_other_word_misses(self):
        """Writes to collocated words must not look like releases."""
        table = make_table()
        table.insert(0x100, pc=7, now=0)
        assert table.release(0x104) is None  # same line, different word
        assert table.release(0x100) is not None

    def test_contains_line(self):
        table = make_table()
        table.insert(0x104, pc=7, now=0)
        assert table.contains_line(0x100)
        assert not table.contains_line(0x140)
        table.release(0x104)
        assert not table.contains_line(0x100)

    def test_two_locks_one_line(self):
        table = make_table()
        table.insert(0x100, pc=1, now=0)
        table.insert(0x104, pc=2, now=1)
        table.release(0x100)
        assert table.contains_line(0x100)  # 0x104 still held
        table.release(0x104)
        assert not table.contains_line(0x100)

    def test_capacity_discards_oldest(self):
        table = make_table(capacity=2)
        table.insert(0x100, pc=1, now=0)
        table.insert(0x140, pc=2, now=1)
        discarded = table.insert(0x180, pc=3, now=2)
        assert discarded is not None and discarded.addr == 0x100
        assert table.release(0x100) is None
        assert len(table) == 2

    def test_reinsert_same_addr_replaces(self):
        table = make_table()
        table.insert(0x100, pc=1, now=0)
        table.insert(0x100, pc=2, now=5)
        assert len(table) == 1
        assert table.release(0x100).pc == 2

    def test_lookup_line(self):
        table = make_table()
        assert table.lookup_line(0x100) is None
        table.insert(0x108, pc=9, now=0)
        entry = table.lookup_line(0x100)
        assert entry is not None and entry.pc == 9

    def test_timed_out_flag_defaults_false(self):
        table = make_table()
        table.insert(0x100, pc=1, now=0)
        assert table.lookup_line(0x100).timed_out is False

    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=40))
    def test_line_count_invariant(self, word_indices):
        """contains_line always agrees with the set of held entries."""
        table = make_table(capacity=8)
        amap = AddressMap(64)
        for i, w in enumerate(word_indices):
            addr = w * 4
            if i % 3 == 2:
                table.release(addr)
            else:
                table.insert(addr, pc=i, now=i)
            held_lines = {
                amap.line_addr(e.addr) for e in table._by_addr.values()
            }
            for line in held_lines:
                assert table.contains_line(line)
            for line in {amap.line_addr(w * 4) for w in word_indices}:
                if line not in held_lines:
                    assert not table.contains_line(line)

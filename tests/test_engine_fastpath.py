"""Fast-engine equivalence suite.

The calendar-queue fast path (``engine="fast"``) must be *bit-identical*
to the reference min-heap (``engine="reference"``): same event order,
same final cycle counts, same counters, same tie-break candidate sets,
same checker fingerprints.  This suite holds the two engines to that
contract three ways:

* **queue level** — Hypothesis drives :class:`CalendarEventQueue` and
  :class:`EventQueue` through mirrored operation sequences and compares
  every observable (pop order, peeks, candidates, signatures, lengths,
  high-water marks);
* **system level** — random concurrent programs run to completion on
  both fabrics under each engine; cycles, the full counter snapshot and
  the kernel self-metrics must match, as must the tied-head candidate
  sets seen by a recording tie-break hook;
* **checker level** — a smoke exploration cell produces the same
  distinct-state fingerprint set under either engine.
"""

from hypothesis import HealthCheck, given, settings, strategies as st
import pytest

from conftest import small_config
from repro import System
from repro.check.explore import Budget, RunSpec, explore
from repro.cpu.ops import LL, SC, Compute, Read, Swap, Write
from repro.engine.event import (
    CalendarEventQueue,
    EventQueue,
    callback_label,
)
from repro.engine.simulator import ENGINES, Simulator

prop_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.function_scoped_fixture,
    ],
)


# ----------------------------------------------------------------------
# Queue-level equivalence
# ----------------------------------------------------------------------
def _cb_a():  # distinct callbacks so labels distinguish events
    pass


def _cb_b():
    pass


def _cb_c():
    pass


CALLBACKS = [_cb_a, _cb_b, _cb_c]


def _key(event):
    """An engine-independent identity for one event."""
    return (event.time, event.priority, event.seq, callback_label(event.callback))


_op = st.one_of(
    st.tuples(
        st.just("push"),
        st.integers(min_value=0, max_value=4),  # delay from last pop
        st.integers(min_value=0, max_value=2),  # priority
        st.integers(min_value=0, max_value=2),  # callback index
    ),
    st.tuples(st.just("pop")),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=63)),
    st.tuples(st.just("peek")),
    st.tuples(st.just("candidates")),
)


class TestQueueEquivalence:
    @prop_settings
    @given(
        ops=st.lists(_op, min_size=1, max_size=60),
        use_priorities=st.booleans(),
    )
    def test_mirrored_operations_agree(self, ops, use_priorities):
        """Both queues, fed the same operations, expose identical state."""
        ref = EventQueue()
        fast = CalendarEventQueue()
        pushed = []  # parallel (ref_event, fast_event) pairs
        now = 0
        for op in ops:
            if op[0] == "push":
                _, delay, priority, cb = op
                if not use_priorities:
                    priority = 0
                callback = CALLBACKS[cb]
                a = ref.push(now + delay, callback, (), priority)
                b = fast.push(now + delay, callback, (), priority)
                assert _key(a) == _key(b)
                pushed.append((a, b))
            elif op[0] == "pop":
                a, b = ref.pop(), fast.pop()
                assert (a is None) == (b is None)
                if a is not None:
                    assert _key(a) == _key(b)
                    now = a.time
                    # Fired events may not be cancelled (kernel contract:
                    # cancellation is for *pending* events only).
                    pushed = [pair for pair in pushed if pair[0] is not a]
            elif op[0] == "cancel" and pushed:
                a, b = pushed[op[1] % len(pushed)]
                ref.cancel(a)
                fast.cancel(b)
            elif op[0] == "peek":
                assert ref.peek_time() == fast.peek_time()
            elif op[0] == "candidates":
                assert [_key(e) for e in ref.candidates()] == [
                    _key(e) for e in fast.candidates()
                ]
            assert len(ref) == len(fast)
            assert bool(ref) == bool(fast)
            assert ref.high_water == fast.high_water
            assert ref.signature(now) == fast.signature(now)
        # Drain whatever is left: the full firing order must agree.
        while True:
            a, b = ref.pop(), fast.pop()
            assert (a is None) == (b is None)
            if a is None:
                break
            assert _key(a) == _key(b)

    def test_demote_head_on_earlier_push(self):
        """Peeking promotes a bucket; a push at an earlier time must win."""
        q = CalendarEventQueue()
        q.push(5, _cb_a)
        assert q.peek_time() == 5  # promotes the t=5 bucket
        q.push(3, _cb_b)
        assert q.peek_time() == 3
        assert q.pop().time == 3
        assert q.pop().time == 5
        assert q.pop() is None

    def test_dirty_head_bucket_resorts_tail(self):
        """A low-priority push landing mid-drain is sorted into place."""
        q = CalendarEventQueue()
        q.push(1, _cb_a, (), 0)
        q.push(1, _cb_b, (), 2)
        first = q.pop()
        assert first.callback is _cb_a
        # The head bucket is now mid-drain; push priority 1 behind the
        # remaining priority-2 event — it must still fire first.
        q.push(1, _cb_c, (), 1)
        assert q.pop().callback is _cb_c
        assert q.pop().callback is _cb_b

    def test_priority_orders_within_bucket(self):
        ref, fast = EventQueue(), CalendarEventQueue()
        for queue in (ref, fast):
            queue.push(7, _cb_a, (), 1)
            queue.push(7, _cb_b, (), 0)
            queue.push(7, _cb_c, (), 1)
        order_ref = [_key(ref.pop()) for _ in range(3)]
        order_fast = [_key(fast.pop()) for _ in range(3)]
        assert order_ref == order_fast
        assert [k[3] for k in order_fast] == [
            callback_label(_cb_b),
            callback_label(_cb_a),
            callback_label(_cb_c),
        ]

    def test_cancelled_tail_deletes_bucket(self):
        q = CalendarEventQueue()
        a = q.push(2, _cb_a)
        b = q.push(2, _cb_b)
        q.cancel(a)
        q.cancel(b)
        assert len(q) == 0
        assert q.pop() is None
        assert q.peek_time() is None
        q.push(4, _cb_c)
        assert q.pop().time == 4

    def test_extract_matches_reference(self):
        ref, fast = EventQueue(), CalendarEventQueue()
        pairs = [
            (ref.push(3, cb), fast.push(3, cb)) for cb in CALLBACKS
        ]
        # Extract the middle candidate from both, then drain.
        ref.extract(pairs[1][0])
        fast.extract(pairs[1][1])
        assert [_key(e) for e in ref.candidates()] == [
            _key(e) for e in fast.candidates()
        ]
        assert _key(ref.pop()) == _key(fast.pop())
        assert _key(ref.pop()) == _key(fast.pop())
        assert ref.pop() is None and fast.pop() is None


# ----------------------------------------------------------------------
# System-level equivalence
# ----------------------------------------------------------------------
def _build_pair(n, policy, interconnect, scripts, lines_per):
    """Two identical systems differing only in the engine."""
    systems = []
    for engine in ENGINES:
        system = System(
            small_config(n, policy, interconnect=interconnect, engine=engine)
        )
        lines = [system.layout.alloc_line() for _ in range(lines_per)]

        def worker(tid, script, lines=lines):
            def program():
                for i, (kind, line_idx, arg) in enumerate(script):
                    addr = lines[line_idx % len(lines)]
                    if kind == "read":
                        yield Read(addr)
                    elif kind == "write":
                        yield Write(addr, tid * 1000 + i)
                    elif kind == "swap":
                        yield Swap(addr, tid * 1000 + 500 + i)
                    elif kind == "rmw":
                        while True:
                            value = yield LL(addr, pc=0x99)
                            ok = yield SC(addr, value + 1, pc=0x99)
                            if ok:
                                break
                            yield Compute(3)
                    else:
                        yield Compute(arg)
            return program()

        for node in range(n):
            system.load_program(node, worker(node, scripts[node]))
        systems.append(system)
    return systems


_script_op = st.tuples(
    st.sampled_from(["read", "write", "rmw", "swap", "compute"]),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=1, max_value=40),
)


class TestSystemEquivalence:
    @prop_settings
    @given(data=st.data())
    def test_random_programs_bit_identical(self, interconnect, data):
        """Cycles, counters and kernel self-metrics match per engine."""
        n = data.draw(st.integers(min_value=2, max_value=3), label="threads")
        policy = data.draw(
            st.sampled_from(["baseline", "delayed", "iqolb"]), label="policy"
        )
        scripts = [
            data.draw(
                st.lists(_script_op, min_size=1, max_size=10),
                label=f"script{t}",
            )
            for t in range(n)
        ]
        fast_sys, ref_sys = _build_pair(n, policy, interconnect, scripts, 3)
        fast_cycles = fast_sys.run()
        ref_cycles = ref_sys.run()
        assert fast_cycles == ref_cycles
        assert fast_sys.stats.snapshot() == ref_sys.stats.snapshot()
        assert fast_sys.sim.events_fired == ref_sys.sim.events_fired
        assert fast_sys.sim.queue_high_water == ref_sys.sim.queue_high_water

    @prop_settings
    @given(data=st.data())
    def test_tied_head_candidates_identical(self, interconnect, data):
        """A recording tie-break hook sees the same candidate sets.

        With a tie-breaker installed the fast engine takes the generic
        loop but still runs on the calendar queue — this is exactly the
        checker's configuration, so candidate parity here means the
        explorer enumerates the same interleavings on either engine.
        """
        n = data.draw(st.integers(min_value=2, max_value=3), label="threads")
        scripts = [
            data.draw(
                st.lists(_script_op, min_size=1, max_size=6),
                label=f"script{t}",
            )
            for t in range(n)
        ]
        fast_sys, ref_sys = _build_pair(n, "iqolb", interconnect, scripts, 2)
        traces = []
        for system in (fast_sys, ref_sys):
            seen = []

            def tie_breaker(ties, seen=seen):
                seen.append(tuple(_key(e) for e in ties))
                return 0  # lowest seq == the default firing order

            system.sim.tie_breaker = tie_breaker
            cycles = system.run()
            traces.append((cycles, seen))
        assert traces[0] == traces[1]


# ----------------------------------------------------------------------
# Checker-level equivalence
# ----------------------------------------------------------------------
class TestCheckerEquivalence:
    def test_smoke_cell_same_distinct_states(self):
        """One exploration cell fingerprints identically per engine."""
        reports = []
        for engine in ENGINES:
            spec = RunSpec(
                scenario="lock",
                primitive="iqolb",
                interconnect="bus",
                n_processors=2,
                acquires_per_proc=1,
                engine=engine,
            )
            reports.append(
                explore(spec, Budget(max_schedules=12, reduction="none"))
            )
        fast, ref = reports
        assert fast.schedules_run == ref.schedules_run
        assert fast.statuses == ref.statuses
        assert fast.state_fingerprints == ref.state_fingerprints
        assert fast.distinct_states == ref.distinct_states
        assert not fast.violations and not ref.violations


# ----------------------------------------------------------------------
# Plumbing
# ----------------------------------------------------------------------
class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Simulator(engine="turbo")

    def test_config_selects_queue_class(self):
        fast = System(small_config(2, engine="fast"))
        ref = System(small_config(2, engine="reference"))
        assert isinstance(fast.sim._queue, CalendarEventQueue)
        assert isinstance(ref.sim._queue, EventQueue)
        assert fast.sim.engine == "fast" and ref.sim.engine == "reference"

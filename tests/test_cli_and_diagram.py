"""Tests for the CLI front door and the sequence-diagram renderer."""

import pytest

from repro.cli import build_parser, main
from repro.harness.diagram import render_sequence_diagram
from repro.harness.traces import TraceRecorder, figure3_scenario


class TestDiagram:
    def test_renders_columns(self):
        recorder = TraceRecorder()
        recorder.controller_hook("ll", 10, 0, 0x100, {"value": 1})
        recorder.controller_hook("defer", 20, 1, 0x100, {"requester": 0})
        text = render_sequence_diagram(recorder, 0x100, 2)
        lines = text.splitlines()
        assert lines[0].strip().startswith("time")
        assert "P0" in lines[0] and "P1" in lines[0]
        assert "LL=1" in text
        assert "defer(P0)" in text

    def test_filters_other_lines(self):
        recorder = TraceRecorder()
        recorder.controller_hook("ll", 10, 0, 0x100, {"value": 1})
        recorder.controller_hook("ll", 11, 0, 0x200, {"value": 2})
        text = render_sequence_diagram(recorder, 0x100, 1)
        assert "LL=1" in text
        assert "LL=2" not in text

    def test_collapses_spin_runs(self):
        recorder = TraceRecorder()
        for t in range(5):
            recorder.controller_hook(
                "ll", 10 + t, 0, 0x100, {"value": 1}
            )
        text = render_sequence_diagram(recorder, 0x100, 1)
        assert "x5" in text
        assert text.count("LL=1") == 1

    def test_no_collapse_option(self):
        recorder = TraceRecorder()
        for t in range(3):
            recorder.controller_hook("ll", 10 + t, 0, 0x100, {"value": 1})
        text = render_sequence_diagram(
            recorder, 0x100, 1, collapse_spins=False
        )
        assert text.count("LL=1") == 3

    def test_sc_outcome_labels(self):
        recorder = TraceRecorder()
        recorder.controller_hook("sc", 1, 0, 0x100, {"success": True, "pc": 0})
        recorder.controller_hook("sc", 2, 0, 0x100, {"success": False, "pc": 0})
        text = render_sequence_diagram(recorder, 0x100, 1)
        assert "SC ok" in text and "SC FAIL" in text

    def test_unknown_kind_falls_back(self):
        recorder = TraceRecorder()
        recorder.controller_hook("mystery", 1, 0, 0x100, {})
        text = render_sequence_diagram(recorder, 0x100, 1)
        assert "mystery" in text

    def test_real_scenario_renders(self):
        result = figure3_scenario(rmw_per_proc=2)
        text = render_sequence_diagram(result.recorder, result.target_line, 3)
        assert "->LPRFO" in text
        assert "=>P" in text  # a hand-off arrow

    def test_limit(self):
        recorder = TraceRecorder()
        for t in range(10):
            recorder.controller_hook("store", t, 0, 0x100, {"value": t, "pc": 0})
        text = render_sequence_diagram(recorder, 0x100, 1, limit=4)
        assert len(text.splitlines()) == 2 + 4


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["table3", "-p", "8", "raytrace"])
        assert args.processors == 8
        assert args.apps == ["raytrace"]

    def test_policies_command(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "iqolb" in out and "qolb" in out

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        assert "sequential consistency" in capsys.readouterr().out

    def test_table2_command(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "raytrace" in out and "hot%" in out

    def test_figure_command(self, capsys):
        assert main(["figure", "3"]) == 0
        out = capsys.readouterr().out
        assert "->LPRFO" in out
        assert "sc_failures: 0" in out

    def test_run_command(self, capsys):
        assert main(["run", "raytrace", "--primitive", "iqolb", "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out

    def test_fairness_command(self, capsys):
        assert main(["fairness", "--primitive", "iqolb", "-p", "4"]) == 0
        out = capsys.readouterr().out
        assert "Jain idx" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

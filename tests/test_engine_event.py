"""Unit tests for the event queue."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.event import Event, EventQueue


def drain(queue):
    out = []
    while True:
        event = queue.pop()
        if event is None:
            break
        out.append(event)
    return out


class TestOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(30, lambda: None)
        queue.push(10, lambda: None)
        queue.push(20, lambda: None)
        assert [e.time for e in drain(queue)] == [10, 20, 30]

    def test_same_time_pops_in_push_order(self):
        queue = EventQueue()
        order = []
        for i in range(5):
            queue.push(7, order.append, (i,))
        for event in drain(queue):
            event.callback(*event.args)
        assert order == [0, 1, 2, 3, 4]

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        queue.push(5, lambda: None, priority=2)
        queue.push(5, lambda: None, priority=0)
        queue.push(5, lambda: None, priority=1)
        assert [e.priority for e in drain(queue)] == [0, 1, 2]

    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=50))
    def test_pop_order_is_sorted_by_time(self, times):
        queue = EventQueue()
        for t in times:
            queue.push(t, lambda: None)
        popped = [e.time for e in drain(queue)]
        assert popped == sorted(times)

    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=40))
    def test_equal_times_preserve_insertion_order(self, times):
        queue = EventQueue()
        for i, t in enumerate(times):
            queue.push(t, lambda: None, (i,))
        popped = drain(queue)
        # Stable: among equal times, seq (== insertion index) ascends.
        for a, b in zip(popped, popped[1:]):
            if a.time == b.time:
                assert a.seq < b.seq


class TestCancellation:
    def test_cancelled_event_is_skipped(self):
        queue = EventQueue()
        keep = queue.push(1, lambda: None)
        gone = queue.push(2, lambda: None)
        queue.cancel(gone)
        events = drain(queue)
        assert events == [keep]

    def test_cancel_updates_length(self):
        queue = EventQueue()
        event = queue.push(1, lambda: None)
        assert len(queue) == 1
        queue.cancel(event)
        assert len(queue) == 0
        assert not queue

    def test_double_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(1, lambda: None)
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 0

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1, lambda: None)
        queue.push(5, lambda: None)
        queue.cancel(first)
        assert queue.peek_time() == 5

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None


class TestEvent:
    def test_event_comparison(self):
        a = Event(1, 0, 0, lambda: None, ())
        b = Event(2, 0, 1, lambda: None, ())
        assert a < b

    def test_cancel_flag(self):
        event = Event(1, 0, 0, lambda: None, ())
        assert not event.cancelled
        event.cancel()
        assert event.cancelled


class TestCandidatesAndExtract:
    def test_candidates_are_the_tied_head_set(self):
        queue = EventQueue()
        a = queue.push(3, lambda: None)
        b = queue.push(3, lambda: None)
        queue.push(3, lambda: None, priority=1)  # lower priority: not tied
        queue.push(9, lambda: None)
        ties = queue.candidates()
        assert ties == [a, b]

    def test_candidates_skip_cancelled(self):
        queue = EventQueue()
        a = queue.push(2, lambda: None)
        b = queue.push(2, lambda: None)
        queue.cancel(a)
        assert queue.candidates() == [b]

    def test_candidates_empty_queue(self):
        assert EventQueue().candidates() == []

    def test_extract_removes_chosen_event(self):
        queue = EventQueue()
        a = queue.push(1, lambda: None)
        b = queue.push(1, lambda: None)
        chosen = queue.extract(b)
        assert chosen is b
        assert len(queue) == 1
        assert queue.pop() is a

    def test_extract_dead_event_rejected(self):
        queue = EventQueue()
        event = queue.push(1, lambda: None)
        queue.cancel(event)
        with pytest.raises(ValueError):
            queue.extract(event)


class TestSignatureAndSummary:
    def test_signature_is_relative_to_now(self):
        def shape(base):
            queue = EventQueue()
            queue.push(base + 2, sorted)
            queue.push(base + 5, sorted, args=(1,))
            return queue.signature(now=base)

        assert shape(0) == shape(1000)

    def test_signature_ignores_cancelled(self):
        queue = EventQueue()
        queue.push(1, sorted)
        dead = queue.push(2, sorted)
        queue.cancel(dead)
        other = EventQueue()
        other.push(1, sorted)
        assert queue.signature(0) == other.signature(0)

    def test_summarize_names_callbacks(self):
        queue = EventQueue()
        queue.push(4, sorted, args=("abcdef",))
        text = queue.summarize()
        assert "1 pending event(s)" in text
        assert "t=4" in text
        assert "sorted" in text

    def test_summarize_clips_long_listings(self):
        queue = EventQueue()
        for t in range(12):
            queue.push(t, sorted)
        text = queue.summarize(limit=8)
        assert "... and 4 more" in text

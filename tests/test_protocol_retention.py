"""Integration tests for the queue-retention variants (paper §3.2/3.3).

With retention, a regular RFO hitting a deferring owner becomes a *loan*:
the line travels to the writer with a marker forcing its return, and the
distributed queue survives intact.
"""

from conftest import build_system, run_programs
from repro.cpu.ops import Compute, Read, Write
from repro.sync import TTSLock


def contended_lock_run(policy, n=4, iters=8, timeout=None, cs_compute=0):
    overrides = {}
    if timeout is not None:
        overrides["timeout_cycles"] = timeout
    system = build_system(n, policy, **overrides)
    lock = TTSLock(system.layout.alloc_line())
    token = system.layout.alloc_line()

    def program():
        for _ in range(iters):
            yield from lock.acquire()
            value = yield Read(token)
            if cs_compute:
                yield Compute(cs_compute)
            yield Write(token, value + 1)
            yield from lock.release()
            yield Compute(40)

    run_programs(system, [program() for _ in range(n)])
    assert system.read_word(token) == n * iters
    return system


class TestDelayedRetention:
    def test_loans_replace_breakdowns(self):
        system = contended_lock_run("delayed+retention")
        assert system.total("loans") > 0
        assert system.total("loan_returns") > 0
        assert system.total("squashes") == 0

    def test_no_retention_breaks_down_instead(self):
        system = contended_lock_run("delayed")
        assert system.total("loans") == 0
        assert system.total("squashes") > 0

    def test_retention_reduces_traffic(self):
        without = contended_lock_run("delayed")
        with_retention = contended_lock_run("delayed+retention")
        assert (
            with_retention.stats.value("bus.transactions")
            < without.stats.value("bus.transactions")
        )


class TestIqolbRetention:
    def test_correctness(self):
        contended_lock_run("iqolb+retention")

    def test_loans_on_forced_release_path(self):
        """Force the release store to miss (timeout moved the line) so
        the retention path must lend and recover the line."""
        system = contended_lock_run("iqolb+retention", timeout=250, cs_compute=900)
        # The CS outlives the bound, so lines move away mid-CS; releases
        # then borrow them back.
        assert system.total("timeouts") > 0
        assert system.total("loans") > 0
        assert system.total("loan_returns") > 0

    def test_queue_survives_loans(self):
        system = contended_lock_run("iqolb+retention", timeout=250, cs_compute=900)
        assert system.total("squashes") == 0


class TestLoanMechanics:
    def test_lender_answers_for_loaned_line(self):
        """During a loan, third-party requests retry instead of reading
        stale memory."""
        system = contended_lock_run("iqolb+retention", n=6, timeout=200)
        # Retries may or may not occur depending on timing; what matters
        # is correctness (asserted in the helper) plus loan balance:
        assert system.total("loans") == system.total("loan_returns")

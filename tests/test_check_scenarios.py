"""The widened scenario library: barrier and MCS hand-off cells.

Each scenario must (a) explore violation-free at a smoke budget on both
fabrics, (b) catch its seeded mutation — a checker whose oracle never
fires is indistinguishable from one that cannot — and (c) replay any
counterexample bit-identically from the saved schedule.
"""

import pytest

from repro.check.explore import Budget, RunSpec, explore
from repro.check.report import from_explore_violation, replay
from repro.check.scenarios import (
    MUTATIONS,
    SCENARIOS,
    build_scenario,
    install_mutation,
    mutation_names,
    scenario_names,
)
from repro.cli import main

SMOKE = Budget(max_schedules=30, max_steps=80_000, max_depth=30)

#: per-scenario seeded bug and the budget that exposes it.  The barrier
#: mutations need >= 2 rounds: with a single round every thread reports
#: arrival at program start, before any barrier latency separates the
#: early releaser from the laggard it failed to wait for.
MUTATION_CASES = {
    "barrier_skip_sense_flip": ("barrier", 2, {"progress"}),
    "barrier_early_release": ("barrier", 2, {"barrier-phase"}),
    "mcs_drop_handoff": ("mcs", 2, {"progress"}),
    "recip_drop_terminal_signal": ("reciprocating", 2, {"progress"}),
    # The skipped promotion surfaces as starvation when a waiter parks
    # behind the stale head, or as the dangling outer tail caught by the
    # final verify when every acquire won on the fast path.
    "fissile_skip_anti_collapse": (
        "fissile", 2, {"progress", "workload-verify"},
    ),
}


def _spec(scenario, interconnect, mutation=None, acquires=1):
    kwargs = {}
    if mutation is not None:
        # Seeded-bug cells disable the hand-off timeout and tighten the
        # runaway guard so starvation surfaces quickly as a progress
        # violation rather than a timeout-recovered stall.
        kwargs = dict(timeout_cycles=10_000_000, max_cycles=200_000)
    return RunSpec(
        scenario=scenario,
        primitive="iqolb",
        interconnect=interconnect,
        n_processors=2,
        acquires_per_proc=acquires,
        mutation=mutation,
        **kwargs,
    )


class TestScenariosClean:
    @pytest.mark.parametrize(
        "scenario", ["barrier", "mcs", "reciprocating", "fissile"]
    )
    def test_violation_free_at_smoke_budget(self, scenario, interconnect):
        report = explore(_spec(scenario, interconnect), SMOKE)
        assert report.schedules_run > 1
        assert not report.violations, report.violations
        assert report.statuses.get("finished", 0) == report.schedules_run

    @pytest.mark.parametrize("scenario", ["barrier", "mcs"])
    def test_scenario_specific_oracle_attached(self, scenario):
        built = build_scenario(scenario, "iqolb", "bus", 2, 1, 400, 2_000_000)
        extras = built.workload.extra_oracles(built.system)
        assert extras and extras[0] is built.monitor

    @pytest.mark.parametrize("scenario", ["reciprocating", "fissile"])
    def test_in_sim_monitor_attached(self, scenario):
        # CsMonitor raises in-sim (it is not a stepped oracle), so it
        # rides the BuiltScenario.monitor seat, not extra_oracles.
        built = build_scenario(scenario, "iqolb", "bus", 2, 1, 400, 2_000_000)
        assert built.monitor is built.workload.monitor
        assert built.monitor is not None
        assert built.workload.extra_oracles(built.system) == []


class TestSeededMutations:
    @pytest.mark.parametrize("mutation", sorted(MUTATION_CASES))
    def test_mutation_caught_and_replays(self, mutation):
        scenario, acquires, oracles = MUTATION_CASES[mutation]
        spec = _spec(scenario, "bus", mutation=mutation, acquires=acquires)
        budget = Budget(max_schedules=20, max_steps=150_000, max_depth=30)
        report = explore(spec, budget)
        assert report.violations, f"{mutation} was not caught"
        record = report.violations[0]
        assert record["violation"]["oracle"] in oracles, record

        # Bit-identical replay: same schedule -> same oracle, message,
        # and violation time.
        counterexample = from_explore_violation(spec, record)
        outcome = replay(counterexample)
        assert outcome.violation is not None, "replay lost the violation"
        assert outcome.violation["oracle"] == record["violation"]["oracle"]
        assert outcome.violation["message"] == record["violation"]["message"]
        assert outcome.violation["time"] == record["violation"]["time"]
        assert outcome.cycles == record["cycles"]


class TestRegistries:
    def test_scenario_names_cover_registry(self):
        assert scenario_names() == sorted(SCENARIOS)
        assert {
            "lock", "counter", "barrier", "mcs", "reciprocating", "fissile",
        } <= set(scenario_names())

    def test_mutation_names_cover_registry(self):
        assert mutation_names() == sorted(MUTATIONS)

    def test_unknown_scenario_error_lists_known(self):
        with pytest.raises(ValueError, match="unknown scenario") as excinfo:
            build_scenario("nope", "iqolb", "bus", 2, 1, 400, 2_000_000)
        for name in scenario_names():
            assert name in str(excinfo.value)

    def test_unknown_mutation_error_lists_known(self):
        built = build_scenario("lock", "iqolb", "bus", 2, 1, 400, 2_000_000)
        with pytest.raises(ValueError, match="unknown mutation"):
            install_mutation("nope", built.system, built.workload)

    def test_mutation_requires_matching_scenario(self):
        built = build_scenario("lock", "iqolb", "bus", 2, 1, 400, 2_000_000)
        with pytest.raises(ValueError, match="requires"):
            install_mutation(
                "mcs_drop_handoff", built.system, built.workload
            )

    def test_cli_rejects_unknown_scenario(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", "--scenario", "definitely-not-a-scenario"])
        assert excinfo.value.code != 0
        err = capsys.readouterr().err
        assert "invalid choice" in err

"""Unit tests for the home-node directory protocol.

White-box checks of the directory's bookkeeping (home interleaving,
owner pointer, sharer vector, waiter queue) driven through small
System-level scenarios, plus the counters that distinguish the
directory's resolution paths: 3-hop forwarding, invalidation
collection, deferral, queue breakdown, and writebacks.
"""

from conftest import build_system, run_programs, small_config
from repro import System
from repro.cpu.ops import Compute, Read, Write
from repro.mem.line import State
from repro.sync import TTSLock


def dir_system(n=4, policy="baseline", **overrides):
    return build_system(n, policy, interconnect="directory", **overrides)


def counter(system, name):
    return system.stats.counter(name).value


def entry_for(system, addr):
    return system.bus._entry(system.amap.line_addr(addr))


class TestHomeInterleaving:
    def test_consecutive_lines_spread_across_nodes(self):
        system = dir_system(4)
        lines = [system.layout.alloc_line() for _ in range(8)]
        homes = [system.bus.home(system.amap.line_addr(a)) for a in lines]
        assert homes == [h % 4 for h in range(homes[0], homes[0] + 8)]
        assert set(homes) == {0, 1, 2, 3}


class TestResolutionPaths:
    def test_cold_miss_supplied_by_memory_exclusive(self):
        system = dir_system(2)
        addr = system.layout.alloc_line()
        system.write_word(addr, 99)
        out = []

        def reader():
            out.append((yield Read(addr)))

        run_programs(system, [reader(), Compute(1) and iter(())])
        assert out == [99]
        assert counter(system, "dir.memory_supplies") == 1
        # Exclusive-clean grant: the reader is the owner of record.
        assert entry_for(system, addr).owner == 0

    def test_gets_forwards_to_dirty_owner_three_hop(self):
        system = dir_system(4)
        addr = system.layout.alloc_line()
        out = []

        def writer():
            yield Write(addr, 7)

        def reader():
            yield Compute(400)
            out.append((yield Read(addr)))

        run_programs(system, [writer(), reader(), iter(()), iter(())])
        assert out == [7]  # dirty data came from the owner, not memory
        assert counter(system, "dir.forwards") >= 1
        # M -> O: the writer keeps ownership after supplying shared.
        entry = entry_for(system, addr)
        assert entry.owner == 0
        assert 1 in entry.sharers

    def test_clean_owner_downgrade_clears_owner_pointer(self):
        system = dir_system(4)
        addr = system.layout.alloc_line()

        def reader(delay):
            def program():
                yield Compute(delay)
                yield Read(addr)
            return program()

        # P0 fills exclusive-clean, then P1's GetS downgrades it E -> S.
        run_programs(system, [reader(0), reader(400), iter(()), iter(())])
        entry = entry_for(system, addr)
        assert entry.owner is None
        assert entry.sharers == {0, 1}

    def test_write_invalidates_all_sharers(self):
        system = dir_system(4)
        addr = system.layout.alloc_line()

        def reader(delay):
            def program():
                yield Compute(delay)
                yield Read(addr)
            return program()

        def writer():
            yield Compute(1200)
            yield Write(addr, 5)

        run_programs(system, [reader(0), reader(120), reader(240), writer()])
        assert counter(system, "dir.invalidations") >= 2
        entry = entry_for(system, addr)
        assert entry.owner == 3
        assert entry.sharers == set()
        for node in range(3):
            line = system.controllers[node].hierarchy.peek(
                system.amap.line_addr(addr)
            )
            assert line is None or line.state is State.TEAROFF

    def test_upgrade_grants_permission_without_data(self):
        system = dir_system(2)
        addr = system.layout.alloc_line()

        def sharer():
            yield Read(addr)
            yield Compute(600)

        def upgrader():
            yield Compute(300)
            yield Read(addr)     # join as sharer
            yield Compute(300)
            yield Write(addr, 3)  # S -> M via UPGRADE

        run_programs(system, [sharer(), upgrader()])
        assert counter(system, "dir.Upgrade") >= 1
        assert entry_for(system, addr).owner == 1
        assert system.read_word(addr) == 3


class TestDistributedQueue:
    def test_deferrals_build_waiter_queue_and_drain(self):
        system = dir_system(4, policy="delayed")
        lock = TTSLock(system.layout.alloc_line())
        token = system.layout.alloc_line()

        def worker(tid):
            def program():
                yield Compute(1 + tid * 40)
                yield from lock.acquire()
                value = yield Read(token)
                yield Write(token, value + 1)
                yield Compute(500)  # hold: later requesters must queue
                yield from lock.release()
            return program()

        run_programs(system, [worker(t) for t in range(4)])
        assert system.read_word(token) == 4
        assert counter(system, "dir.deferred") >= 1
        entry = entry_for(system, lock.addr)
        assert entry.waiters == []  # queue fully drained
        assert entry.tail is None

    def test_queue_breakdown_counted_without_retention(self):
        # Contended delayed-policy locking with short holds: regular
        # RFOs (lock releases by non-owners are absent here, but SC
        # upgrades race the queue) eventually break a queue down.
        system = dir_system(4, policy="delayed")
        lock = TTSLock(system.layout.alloc_line())
        token = system.layout.alloc_line()

        def worker(tid):
            def program():
                for _ in range(3):
                    yield from lock.acquire()
                    value = yield Read(token)
                    yield Write(token, value + 1)
                    yield from lock.release()
                    yield Compute(7)
            return program()

        run_programs(system, [worker(t) for t in range(4)])
        assert system.read_word(token) == 12
        # The breakdown machinery exists and the run stays coherent
        # whether or not this timing triggered one.
        assert counter(system, "dir.transactions") > 0


class TestMaintenance:
    def test_eviction_writeback_updates_memory_and_owner(self):
        system = dir_system(
            2,
            l1_size_bytes=2 * 64,
            l1_assoc=1,
            l2_size_bytes=4 * 64,
            l2_assoc=1,
        )
        target = system.layout.alloc_line()
        fillers = [system.layout.alloc_line() for _ in range(12)]

        def thrasher():
            yield Write(target, 41)
            for addr in fillers:
                yield Write(addr, 1)

        run_programs(system, [thrasher(), iter(())])
        assert counter(system, "dir.writebacks") >= 1
        assert system.read_word(target) == 41

    def test_retry_counter_tracks_nacks(self):
        # Heavy same-line contention exercises the NACK/retry path
        # (busy-line parking covers most conflicts; retries need a
        # transfer in flight).  The invariant: whatever was retried
        # still completed, and nothing wedged.
        system = dir_system(4)
        addr = system.layout.alloc_line()

        def worker(tid):
            def program():
                for i in range(6):
                    yield Write(addr, tid * 100 + i)
                    yield Read(addr)
            return program()

        run_programs(system, [worker(t) for t in range(4)])
        assert counter(system, "dir.requests") > 0
        final = system.read_word(addr)
        assert final % 100 == 5  # someone's last write landed

    def test_directory_traces_emitted(self):
        events = []

        def tracer(kind, now, node, line_addr, info):
            events.append(kind)

        config = small_config(2, "baseline", interconnect="directory")
        system = System(config)
        system.bus.tracer = tracer
        addr = system.layout.alloc_line()

        def writer():
            yield Write(addr, 1)

        run_programs(system, [writer(), iter(())])
        assert "dir_lookup" in events

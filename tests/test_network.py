"""Unit tests for the point-to-point mesh fabric.

Topology (XY routing on a near-square mesh), the per-link contention
model (serialization occupancy, directed links, virtual-channel
separation), and the Crossbar-compatible ``send`` surface with its
ownership-listener hooks.
"""

import pytest

from repro.engine.simulator import Simulator
from repro.engine.stats import StatsRegistry
from repro.interconnect.messages import (
    MEMORY_NODE,
    DataKind,
    DataMessage,
    GrantState,
)
from repro.interconnect.network import VC_REQ, VC_RESP, MeshNetwork

HOP = 4
LINE_SER = 16
WORD_SER = 4


def make_net(n_nodes=16):
    sim = Simulator()
    net = MeshNetwork(
        sim,
        StatsRegistry(),
        n_nodes,
        hop_cycles=HOP,
        line_ser_cycles=LINE_SER,
        word_ser_cycles=WORD_SER,
    )
    return sim, net


class TestTopology:
    def test_width_is_near_square(self):
        _, net4 = make_net(4)
        _, net16 = make_net(16)
        _, net12 = make_net(12)
        assert net4.width == 2
        assert net16.width == 4
        assert net12.width == 4  # ceil(sqrt(12))

    def test_coords_row_major(self):
        _, net = make_net(16)
        assert net.coords(0) == (0, 0)
        assert net.coords(3) == (3, 0)
        assert net.coords(4) == (0, 1)
        assert net.coords(15) == (3, 3)

    def test_manhattan_distance(self):
        _, net = make_net(16)
        assert net.distance(0, 0) == 0
        assert net.distance(0, 3) == 3
        assert net.distance(0, 15) == 6
        assert net.distance(5, 10) == 2

    def test_xy_route_goes_x_first(self):
        _, net = make_net(16)
        # 0 = (0,0) -> 10 = (2,2): x to 2, then y to 2.
        assert net._route_nodes(0, 10) == [0, 1, 2, 6, 10]
        # Reverse direction retraces in the other dimension order.
        assert net._route_nodes(10, 0) == [10, 9, 8, 4, 0]


class TestRouteTiming:
    def test_uncontended_latency_scales_with_hops(self):
        sim, net = make_net(16)
        done = []
        t = net.route(0, 3, line=False, vc=VC_REQ, callback=lambda: done.append(1))
        assert t == 3 * (WORD_SER + HOP)
        sim.run(until=lambda: bool(done))
        assert sim.now == t

    def test_local_delivery_costs_one_hop(self):
        _, net = make_net(16)
        t = net.route(5, 5, line=False, vc=VC_REQ, callback=lambda: None)
        assert t == HOP

    def test_line_occupies_link_longer_than_flit(self):
        _, net = make_net(16)
        t_word = net.route(0, 1, line=False, vc=VC_REQ, callback=lambda: None)
        _, fresh = make_net(16)
        t_line = fresh.route(0, 1, line=True, vc=VC_REQ, callback=lambda: None)
        assert t_word == WORD_SER + HOP
        assert t_line == LINE_SER + HOP

    def test_shared_directed_link_serializes(self):
        _, net = make_net(16)
        # Both messages cross link 0->1.
        t1 = net.route(0, 1, line=True, vc=VC_REQ, callback=lambda: None)
        t2 = net.route(0, 2, line=True, vc=VC_REQ, callback=lambda: None)
        assert t1 == LINE_SER + HOP
        # Second waits out the first's serialization on 0->1, then pays
        # its own serialization plus two hops.
        assert t2 == LINE_SER + (LINE_SER + HOP) + (LINE_SER + HOP)

    def test_opposite_directions_do_not_contend(self):
        _, net = make_net(16)
        t1 = net.route(0, 1, line=True, vc=VC_REQ, callback=lambda: None)
        t2 = net.route(1, 0, line=True, vc=VC_REQ, callback=lambda: None)
        assert t1 == t2 == LINE_SER + HOP

    def test_virtual_channels_are_independent(self):
        _, net = make_net(16)
        net.route(0, 1, line=True, vc=VC_REQ, callback=lambda: None)
        # A response on the same physical link is not delayed by the
        # request occupying the request VC.
        t = net.route(0, 1, line=True, vc=VC_RESP, callback=lambda: None)
        assert t == LINE_SER + HOP


class TestSend:
    def test_send_delivers_to_attached_receiver(self):
        sim, net = make_net(4)
        got = []
        net.attach(3, got.append)
        msg = DataMessage(
            DataKind.LINE, 0x100, src=0, dst=3,
            data=[1] * 8, grant=GrantState.SHARED, txn_id=7,
        )
        net.send(msg)
        sim.run(until=lambda: bool(got))
        assert got == [msg]

    def test_send_without_receiver_raises(self):
        _, net = make_net(4)
        msg = DataMessage(DataKind.LINE, 0x100, src=0, dst=2, data=[0] * 8)
        with pytest.raises(KeyError):
            net.send(msg)

    def test_memory_supply_enters_at_origin(self):
        _, net = make_net(16)
        net.attach(0, lambda msg: None)
        msg = DataMessage(
            DataKind.LINE, 0x100, src=MEMORY_NODE, dst=0,
            data=[0] * 8, grant=GrantState.SHARED,
        )
        # Entering at node 15 (the home) costs the full 6-hop route.
        t = net.send(msg, origin=15)
        assert t == 6 * (LINE_SER + HOP)

    def test_exclusive_grant_reports_ownership_at_send(self):
        sim, net = make_net(4)
        net.attach(1, lambda msg: None)
        moves = []
        net.ownership_listener = lambda line, node: moves.append((line, node))
        msg = DataMessage(
            DataKind.LINE, 0x140, src=0, dst=1,
            data=[0] * 8, grant=GrantState.EXCLUSIVE,
        )
        net.send(msg)
        # Committed at send time, before delivery.
        assert moves == [(0x140, 1)]
        assert sim.now == 0

    def test_shared_grant_does_not_move_ownership(self):
        _, net = make_net(4)
        net.attach(1, lambda msg: None)
        moves = []
        net.ownership_listener = lambda line, node: moves.append((line, node))
        net.send(DataMessage(
            DataKind.LINE, 0x140, src=0, dst=1,
            data=[0] * 8, grant=GrantState.SHARED,
        ))
        assert moves == []

    def test_push_reports_ownership_only_at_delivery(self):
        sim, net = make_net(4)
        delivered = []
        net.attach(1, delivered.append)
        moves = []
        net.ownership_listener = lambda line, node: moves.append((line, node))
        net.send(DataMessage(
            DataKind.PUSH, 0x180, src=0, dst=1, data=[0] * 8,
        ))
        assert moves == []  # in flight: the sender still answers
        sim.run(until=lambda: bool(delivered))
        assert moves == [(0x180, 1)]

"""Tests for the experiment runner and the table renderers."""

from repro.harness.config import SystemConfig
from repro.harness.experiment import (
    PRIMITIVES,
    run_app,
    run_workload,
    table3_row,
)
from repro.harness.tables import (
    render_table,
    render_table1,
    render_table2,
    render_table2_parameters,
    render_table3,
)
from repro.workloads.micro import ContendedCounter

FAST_MODEL = {"total_work": 32, "phases": 2, "serial_compute": 500,
              "local_compute": 150}


class TestPrimitives:
    def test_the_papers_three(self):
        assert PRIMITIVES["tts"] == ("baseline", "tts")
        assert PRIMITIVES["qolb"] == ("qolb", "qolb")
        # IQOLB runs the *TTS software* on the IQOLB protocol.
        assert PRIMITIVES["iqolb"] == ("iqolb", "tts")

    def test_run_workload_returns_stats(self):
        config = SystemConfig(n_processors=2, policy="baseline")
        result = run_workload(
            ContendedCounter(increments_per_proc=5), config, primitive="tts"
        )
        assert result.cycles > 0
        assert result.bus_transactions > 0
        assert result.stat("sc_attempts") >= 10

    def test_run_app_small(self):
        result = run_app("raytrace", "iqolb", 4, FAST_MODEL)
        assert result.workload == "raytrace"
        assert result.primitive == "iqolb"
        assert result.n_processors == 4

    def test_table3_row_small(self):
        row = table3_row("raytrace", n_processors=4, model_overrides=FAST_MODEL)
        assert row.benchmark == "raytrace"
        assert row.uniprocessor_cycles > 0
        # contended single lock: queue primitives should not lose
        assert row.qolb_speedup > 0.8
        assert row.iqolb_speedup > 0.8


class TestRenderers:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["x", "y"], ["longer", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}

    def test_render_table_with_title(self):
        text = render_table(["h"], [["v"]], title="T")
        assert text.splitlines()[0] == "T"

    def test_table1_contains_parameters(self):
        text = render_table1()
        for fragment in ("64-KB", "512-KB", "12-cycle", "117", "crossbar",
                         "sequential consistency"):
            assert fragment in text

    def test_table2_lists_all_benchmarks(self):
        text = render_table2()
        for name in ("barnes", "ocean", "radiosity", "raytrace", "water-nsq"):
            assert name in text

    def test_table2_parameters(self):
        text = render_table2_parameters()
        assert "hot%" in text
        assert "barnes" in text

    def test_table3_rendering(self):
        from repro.harness.experiment import Table3Row

        rows = [
            Table3Row("raytrace", 1.5, 11.0, 10.7, 100, 9, 10, 150),
        ]
        text = render_table3(rows)
        assert "TTS w/ LL/SC" in text
        assert "(1.5)" in text
        assert "11.00" in text
        assert "IQOLB" in text

"""Unit tests for statistics collection."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.stats import Counter, Histogram, StatsRegistry, WindowedCounter


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6


class TestHistogram:
    def test_empty(self):
        h = Histogram("h")
        assert h.count == 0
        assert h.mean == 0.0

    def test_moments(self):
        h = Histogram("h")
        for sample in (4, 2, 9):
            h.add(sample)
        assert h.count == 3
        assert h.total == 15
        assert h.min == 2
        assert h.max == 9
        assert h.mean == 5.0

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1))
    def test_moments_match_reference(self, samples):
        h = Histogram("h")
        for s in samples:
            h.add(s)
        assert h.count == len(samples)
        assert h.total == sum(samples)
        assert h.min == min(samples)
        assert h.max == max(samples)

    def test_empty_min_max_are_none(self):
        # Regression: min/max used to start at 0 (a sentinel fought by a
        # count==0 check); they must be None until the first sample.
        h = Histogram("h")
        assert h.min is None
        assert h.max is None
        assert h.p50 is None and h.p99 is None

    def test_first_sample_negative(self):
        # Regression: a run whose only samples are negative (e.g. a clock
        # skew diagnostic) must not report min=0 or max=0.
        h = Histogram("h")
        h.add(-7)
        assert h.min == -7
        assert h.max == -7
        h.add(-3)
        assert (h.min, h.max) == (-7, -3)

    def test_first_sample_zero(self):
        h = Histogram("h")
        h.add(0)
        h.add(5)
        assert h.min == 0
        assert h.max == 5
        assert h.count == 2

    def test_percentiles_exact_on_uniform(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.add(v)
        # Bucketed estimates carry < 2x relative error and are clamped
        # to the observed range.
        assert h.min <= h.p50 <= h.max
        assert h.p50 <= h.p90 <= h.p99 <= h.max
        assert 50 <= h.p50 < 100
        assert h.percentile(1.0) == 100

    def test_percentile_rejects_bad_fraction(self):
        h = Histogram("h")
        h.add(1)
        with pytest.raises(ValueError):
            h.percentile(0.0)
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_single_sample_percentiles(self):
        h = Histogram("h")
        h.add(42)
        assert h.p50 == 42
        assert h.p99 == 42

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1))
    def test_percentiles_bounded_by_range(self, samples):
        h = Histogram("h")
        for s in samples:
            h.add(s)
        for fraction in (0.5, 0.9, 0.99):
            p = h.percentile(fraction)
            assert min(samples) <= p <= max(samples)

    def test_summary_shape(self):
        h = Histogram("h")
        h.add(3)
        h.add(300)
        digest = h.summary()
        assert digest["count"] == 2
        assert digest["min"] == 3 and digest["max"] == 300
        assert set(digest["buckets"]) == {"2", "9"}

    def test_bucket_memory_is_bounded(self):
        h = Histogram("h")
        for v in range(10_000):
            h.add(v)
        # 10k distinct samples collapse into <= 15 log2 buckets.
        assert len(h.bucket_counts()) <= 15


class TestWindowedCounter:
    def test_records_into_windows(self):
        w = WindowedCounter("w", window=100)
        w.record(5)
        w.record(150, 2)
        w.record(199)
        assert w.series() == [(0, 1), (100, 3)]
        assert w.total == 4
        assert w.peak() == 3

    def test_empty(self):
        w = WindowedCounter("w")
        assert w.series() == []
        assert w.total == 0
        assert w.peak() == 0

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            WindowedCounter("w", window=0)

    def test_summary_is_json_shaped(self):
        w = WindowedCounter("w", window=10)
        w.record(3)
        w.record(17)
        assert w.summary() == {
            "window": 10,
            "total": 2,
            "peak": 1,
            "series": [[0, 1], [10, 1]],
        }


class TestRegistry:
    def test_counter_is_memoized(self):
        stats = StatsRegistry()
        assert stats.counter("a.b") is stats.counter("a.b")

    def test_value_of_untouched_counter(self):
        assert StatsRegistry().value("never") == 0

    def test_sum_matching(self):
        stats = StatsRegistry()
        stats.counter("cpu0.sc_fail").inc(2)
        stats.counter("cpu1.sc_fail").inc(3)
        stats.counter("cpu1.sc_ok").inc(7)
        assert stats.sum_matching(".sc_fail") == 5

    def test_snapshot(self):
        stats = StatsRegistry()
        stats.counter("a").inc()
        stats.counter("b").inc(2)
        assert stats.snapshot() == {"a": 1, "b": 2}

    def test_counters_iterates_sorted(self):
        stats = StatsRegistry()
        stats.counter("z").inc()
        stats.counter("a").inc()
        assert [name for name, _ in stats.counters()] == ["a", "z"]

    def test_histogram_registry(self):
        stats = StatsRegistry()
        stats.histogram("lat").add(3)
        stats.histogram("lat").add(5)
        (h,) = list(stats.histograms())
        assert h.count == 2

    def test_windowed_registry_memoizes(self):
        stats = StatsRegistry()
        assert stats.windowed("rate") is stats.windowed("rate")

    def test_histogram_snapshot_includes_windowed(self):
        stats = StatsRegistry()
        stats.histogram("lat").add(7)
        stats.windowed("rate", window=100).record(42)
        snap = stats.histogram_snapshot()
        assert snap["lat"]["count"] == 1
        assert snap["lat"]["p50"] == 7
        assert snap["rate"]["series"] == [[0, 1]]

"""Unit tests for statistics collection."""

from hypothesis import given, strategies as st

from repro.engine.stats import Counter, Histogram, StatsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6


class TestHistogram:
    def test_empty(self):
        h = Histogram("h")
        assert h.count == 0
        assert h.mean == 0.0

    def test_moments(self):
        h = Histogram("h")
        for sample in (4, 2, 9):
            h.add(sample)
        assert h.count == 3
        assert h.total == 15
        assert h.min == 2
        assert h.max == 9
        assert h.mean == 5.0

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1))
    def test_moments_match_reference(self, samples):
        h = Histogram("h")
        for s in samples:
            h.add(s)
        assert h.count == len(samples)
        assert h.total == sum(samples)
        assert h.min == min(samples)
        assert h.max == max(samples)


class TestRegistry:
    def test_counter_is_memoized(self):
        stats = StatsRegistry()
        assert stats.counter("a.b") is stats.counter("a.b")

    def test_value_of_untouched_counter(self):
        assert StatsRegistry().value("never") == 0

    def test_sum_matching(self):
        stats = StatsRegistry()
        stats.counter("cpu0.sc_fail").inc(2)
        stats.counter("cpu1.sc_fail").inc(3)
        stats.counter("cpu1.sc_ok").inc(7)
        assert stats.sum_matching(".sc_fail") == 5

    def test_snapshot(self):
        stats = StatsRegistry()
        stats.counter("a").inc()
        stats.counter("b").inc(2)
        assert stats.snapshot() == {"a": 1, "b": 2}

    def test_counters_iterates_sorted(self):
        stats = StatsRegistry()
        stats.counter("z").inc()
        stats.counter("a").inc()
        assert [name for name, _ in stats.counters()] == ["a", "z"]

    def test_histogram_registry(self):
        stats = StatsRegistry()
        stats.histogram("lat").add(3)
        stats.histogram("lat").add(5)
        (h,) = list(stats.histograms())
        assert h.count == 2

"""Integration tests for the software queue locks (Anderson, CLH).

Both come from the paper's related-work landscape (refs [3], [27]) and
provide the software baseline that the paper's hardware queues improve
on.  Mutual exclusion, FIFO order, and recycling are verified; the
LockSet integration sweeps *every* registered lock kind so a newly
registered primitive is covered the moment it lands in the registry.
"""

import pytest

from conftest import build_system, run_programs
from repro.core.registry import PRIMITIVE_SPECS
from repro.cpu.ops import Compute, Read, Write
from repro.sync.anderson import AndersonLock
from repro.sync.clh import ClhLock
from repro.workloads.base import LOCK_ADAPTERS, LOCK_KINDS, LockSet


class TestAndersonLock:
    @pytest.mark.parametrize("policy", ["baseline", "delayed", "iqolb"])
    def test_mutual_exclusion(self, policy):
        n = 4
        system = build_system(n, policy)
        lock = AndersonLock(
            system.layout.alloc_line(),
            [system.layout.alloc_line() for _ in range(n)],
        )
        lock.initialise(system.write_word)
        token = system.layout.alloc_line()

        def worker():
            for _ in range(10):
                slot = yield from lock.acquire_slot()
                value = yield Read(token)
                yield Compute(3)
                yield Write(token, value + 1)
                yield from lock.release_slot(slot)
                yield Compute(25)

        run_programs(system, [worker() for _ in range(n)])
        assert system.read_word(token) == n * 10

    def test_fifo_grant_order(self):
        system = build_system(3, "baseline")
        lock = AndersonLock(
            system.layout.alloc_line(),
            [system.layout.alloc_line() for _ in range(3)],
        )
        lock.initialise(system.write_word)
        granted = []

        def worker(tid):
            yield Compute(1 + tid * 500)
            slot = yield from lock.acquire_slot()
            granted.append(tid)
            yield Compute(900)
            yield from lock.release_slot(slot)

        run_programs(system, [worker(t) for t in range(3)])
        assert granted == [0, 1, 2]

    def test_slot_wraparound(self):
        """More acquires than slots: indices wrap and stay correct."""
        system = build_system(2, "baseline")
        lock = AndersonLock(
            system.layout.alloc_line(),
            [system.layout.alloc_line() for _ in range(2)],
        )
        lock.initialise(system.write_word)
        token = system.layout.alloc_line()

        def worker():
            for _ in range(9):  # 18 acquires over 2 slots
                slot = yield from lock.acquire_slot()
                value = yield Read(token)
                yield Write(token, value + 1)
                yield from lock.release_slot(slot)
                yield Compute(15)

        run_programs(system, [worker() for _ in range(2)])
        assert system.read_word(token) == 18

    def test_too_few_slots_rejected(self):
        with pytest.raises(ValueError):
            AndersonLock(0x1000, [0x1040])


class TestClhLock:
    @pytest.mark.parametrize("policy", ["baseline", "delayed", "iqolb"])
    def test_mutual_exclusion_with_recycling(self, policy):
        n = 4
        system = build_system(n, policy)
        lock = ClhLock(system.layout.alloc_line(), system.layout.alloc_line())
        lock.initialise(system.write_word)
        token = system.layout.alloc_line()
        nodes = [system.layout.alloc_line() for _ in range(n)]

        def worker(tid):
            node = nodes[tid]
            for _ in range(10):
                held, node = yield from lock.acquire_with(node)
                value = yield Read(token)
                yield Compute(3)
                yield Write(token, value + 1)
                yield from lock.release_with(held)
                yield Compute(25)

        run_programs(system, [worker(t) for t in range(n)])
        assert system.read_word(token) == n * 10

    def test_fifo_grant_order(self):
        system = build_system(3, "baseline")
        lock = ClhLock(system.layout.alloc_line(), system.layout.alloc_line())
        lock.initialise(system.write_word)
        nodes = [system.layout.alloc_line() for _ in range(3)]
        granted = []

        def worker(tid):
            yield Compute(1 + tid * 500)
            held, _node = yield from lock.acquire_with(nodes[tid])
            granted.append(tid)
            yield Compute(900)
            yield from lock.release_with(held)

        run_programs(system, [worker(t) for t in range(3)])
        assert granted == [0, 1, 2]

    def test_node_zero_rejected(self):
        lock = ClhLock(0x1000, 0x1040)
        gen = lock.acquire_with(0)
        with pytest.raises(ValueError):
            next(gen)


class TestViaLockSet:
    def test_every_registered_lock_kind_has_an_adapter(self):
        """Loud-failure coverage guard: registering a primitive whose
        lock kind has no LockSet adapter must fail here, not silently
        shrink the parameter grid below."""
        missing = {
            spec.lock_kind for spec in PRIMITIVE_SPECS.values()
        } - set(LOCK_ADAPTERS)
        assert not missing, (
            f"primitives registered with no LockSet adapter: {missing}"
        )

    @pytest.mark.parametrize("kind", LOCK_KINDS)
    def test_lockset_integration(self, kind):
        system = build_system(3, "baseline")
        lockset = LockSet(kind, system, n_locks=2, n_threads=3)
        tokens = [system.layout.alloc_line() for _ in range(2)]

        def worker(tid):
            for i in range(6):
                idx = i % 2
                yield from lockset.acquire(idx, tid)
                value = yield Read(tokens[idx])
                yield Write(tokens[idx], value + 1)
                yield from lockset.release(idx, tid)
                yield Compute(20)

        run_programs(system, [worker(t) for t in range(3)])
        assert sum(system.read_word(t) for t in tokens) == 18

"""Tests for the sweep utility and the run report."""

import pytest

from repro.harness.config import SystemConfig
from repro.harness.experiment import run_workload
from repro.harness.report import render_report, report_rows
from repro.harness.sweep import sweep, sweep_config
from repro.workloads.micro import NullCriticalSection


def null_cs_factory(lock_kind):
    return NullCriticalSection(
        lock_kind=lock_kind, acquires_per_proc=5, think_cycles=40
    )


class TestSweep:
    def test_grid_shape(self):
        result = sweep(null_cs_factory, ["tts", "iqolb"], [2, 4])
        assert result.rows == ["tts", "iqolb"]
        assert result.cols == [2, 4]
        assert len(result.grid) == 4
        assert result.cell("tts", 2).cycles > 0

    def test_metric_grid(self):
        result = sweep(null_cs_factory, ["iqolb"], [2, 4])
        (row,) = result.metric_grid(lambda r: r.cycles)
        assert len(row) == 2
        assert all(isinstance(v, int) for v in row)

    def test_render(self):
        result = sweep(null_cs_factory, ["iqolb"], [2])
        text = result.render(title="T")
        assert "T" in text and "iqolb" in text and "2" in text

    def test_config_overrides_apply(self):
        slow = sweep(
            null_cs_factory, ["iqolb"], [4],
            config_overrides={"xbar_line_cycles": 200},
        )
        fast = sweep(
            null_cs_factory, ["iqolb"], [4],
            config_overrides={"xbar_line_cycles": 20},
        )
        assert slow.cell("iqolb", 4).cycles > fast.cell("iqolb", 4).cycles

    def test_sweep_config_axis(self):
        result = sweep_config(
            null_cs_factory, "iqolb", "xbar_line_cycles", [20, 80],
            n_processors=4,
        )
        assert result.cols == [20, 80]
        assert (
            result.cell("iqolb", 80).cycles > result.cell("iqolb", 20).cycles
        )

    def test_cell_unknown_key_is_descriptive(self):
        result = sweep(null_cs_factory, ["iqolb"], [2])
        with pytest.raises(KeyError, match="valid primitive values"):
            result.cell("mcs", 2)
        with pytest.raises(KeyError, match="valid procs values"):
            result.cell("iqolb", 64)
        message = str(pytest.raises(KeyError, result.cell, "mcs", 64).value)
        assert "iqolb" in message and "2" in message


class TestReport:
    def _result(self, primitive="iqolb"):
        from repro.harness.experiment import PRIMITIVES

        policy, lock_kind = PRIMITIVES[primitive]
        config = SystemConfig(n_processors=4, policy=policy)
        return run_workload(
            NullCriticalSection(lock_kind=lock_kind, acquires_per_proc=6),
            config,
            primitive=primitive,
        )

    def test_rows_skip_zero_metrics(self):
        result = self._result("tts")
        rows = report_rows(result)
        labels = [label for _, label, _ in rows]
        assert "total transactions" in labels
        assert "data pushes (gen. IQOLB)" not in labels  # zero for tts

    def test_iqolb_report_shows_speculation(self):
        text = render_report(self._result("iqolb"))
        assert "tear-offs sent" in text
        assert "at release store (lock)" in text
        assert "cycles per hand-off" in text

    def test_report_header(self):
        text = render_report(self._result())
        assert "null-cs on iqolb, 4 processors" in text

    def test_derived_metrics_present(self):
        text = render_report(self._result("tts"))
        assert "SC failure rate" in text
        assert "cache hit rate" in text

"""Integration tests for basic MOESI coherence (no speculation).

Exercises plain loads and stores through the full stack — processor,
controller, bus, crossbar, memory — and checks states, data movement and
writebacks.
"""

from conftest import build_system, run_programs
from repro.cpu.ops import Compute, Read, Write
from repro.mem.line import State


class TestSingleProcessor:
    def test_read_miss_fills_exclusive(self):
        system = build_system(1)
        addr = system.layout.alloc_line()
        system.write_word(addr, 7)
        seen = []

        def program():
            seen.append((yield Read(addr)))

        run_programs(system, [program()])
        assert seen == [7]
        assert system.controllers[0].hierarchy.state_of(addr) is State.EXCLUSIVE

    def test_write_miss_fills_modified(self):
        system = build_system(1)
        addr = system.layout.alloc_line()

        def program():
            yield Write(addr, 3)

        run_programs(system, [program()])
        assert system.controllers[0].hierarchy.state_of(addr) is State.MODIFIED
        assert system.read_word(addr) == 3

    def test_write_hit_on_exclusive_is_silent(self):
        system = build_system(1)
        addr = system.layout.alloc_line()

        def program():
            yield Read(addr)   # E fill
            yield Write(addr, 1)  # silent E->M

        run_programs(system, [program()])
        # Only the initial GetS hit the bus.
        assert system.stats.value("bus.transactions") == 1

    def test_second_read_is_a_cache_hit(self):
        system = build_system(1)
        addr = system.layout.alloc_line()

        def program():
            yield Read(addr)
            yield Read(addr)

        run_programs(system, [program()])
        assert system.stats.value("cache0.l1_hits") >= 1
        assert system.stats.value("bus.GetS") == 1


class TestTwoProcessorSharing:
    def test_read_sharing_downgrades_owner(self):
        system = build_system(2)
        addr = system.layout.alloc_line()

        def writer():
            yield Write(addr, 42)
            yield Compute(500)

        def reader():
            yield Compute(200)
            value = yield Read(addr)
            assert value == 42

        run_programs(system, [writer(), reader()])
        # Writer supplied and kept a dirty OWNED copy; reader is SHARED.
        assert system.controllers[0].hierarchy.state_of(addr) is State.OWNED
        assert system.controllers[1].hierarchy.state_of(addr) is State.SHARED

    def test_write_invalidates_sharers(self):
        system = build_system(2)
        addr = system.layout.alloc_line()

        def reader():
            yield Read(addr)
            yield Compute(600)

        def writer():
            yield Compute(200)
            yield Write(addr, 9)

        run_programs(system, [reader(), writer()])
        assert system.controllers[0].hierarchy.state_of(addr) is State.INVALID
        assert system.controllers[1].hierarchy.state_of(addr) is State.MODIFIED

    def test_dirty_data_travels_cache_to_cache(self):
        system = build_system(2)
        addr = system.layout.alloc_line()
        seen = []

        def writer():
            yield Write(addr, 1234)

        def reader():
            yield Compute(400)
            seen.append((yield Read(addr)))

        run_programs(system, [writer(), reader()])
        assert seen == [1234]
        # Memory was never updated (the owner supplied): dirty sharing.
        assert system.memory.read_word(addr) == 0

    def test_write_after_shared_uses_upgrade(self):
        system = build_system(2)
        addr = system.layout.alloc_line()

        def toucher():
            yield Read(addr)
            yield Compute(600)

        def upgrader():
            yield Compute(200)
            yield Read(addr)     # now SHARED in both
            yield Write(addr, 5)  # upgrade, not a full GetX

        run_programs(system, [toucher(), upgrader()])
        assert system.stats.value("bus.Upgrade") >= 1

    def test_sequential_counter_correct(self):
        system = build_system(2)
        addr = system.layout.alloc_line()

        def bump(times, stagger):
            def program():
                yield Compute(stagger)
                for _ in range(times):
                    value = yield Read(addr)
                    yield Write(addr, value + 1)
                    yield Compute(400)  # long gap: effectively no overlap
            return program()

        run_programs(system, [bump(5, 0), bump(5, 200)])
        assert system.read_word(addr) == 10


class TestEvictionsAndWritebacks:
    def test_dirty_eviction_writes_back(self):
        # Tiny L2 to force capacity evictions.
        system = build_system(
            1,
            l1_size_bytes=2 * 64,
            l1_assoc=1,
            l2_size_bytes=4 * 64,
            l2_assoc=1,
        )
        lines = [system.layout.alloc_line() for _ in range(12)]

        def program():
            for i, addr in enumerate(lines):
                yield Write(addr, i + 1)

        run_programs(system, [program()])
        assert system.stats.value("ctrl0.writebacks") > 0
        # Every value is recoverable (from cache or memory).
        for i, addr in enumerate(lines):
            assert system.read_word(addr) == i + 1

    def test_eviction_then_reload(self):
        system = build_system(
            1,
            l1_size_bytes=2 * 64,
            l1_assoc=1,
            l2_size_bytes=4 * 64,
            l2_assoc=1,
        )
        lines = [system.layout.alloc_line() for _ in range(10)]
        seen = []

        def program():
            for i, addr in enumerate(lines):
                yield Write(addr, i + 1)
            for i, addr in enumerate(lines):
                seen.append((yield Read(addr)))

        run_programs(system, [program()])
        assert seen == [i + 1 for i in range(10)]


class TestFalseSharing:
    def test_distinct_words_same_line_stay_coherent(self):
        system = build_system(2)
        base = system.layout.alloc_line()
        a, b = base, base + 4

        def worker(addr, stagger):
            def program():
                yield Compute(stagger)
                for i in range(6):
                    yield Write(addr, i + 1)
                    yield Compute(150)
            return program()

        run_programs(system, [worker(a, 0), worker(b, 70)])
        assert system.read_word(a) == 6
        assert system.read_word(b) == 6

"""Tests for the parallel runner and the content-addressed result cache."""

import functools
import json

from repro.harness.cache import ResultCache, stable_hash
from repro.harness.config import SystemConfig
from repro.harness.experiment import PRIMITIVES, table3_with_stats
from repro.harness.runner import CellSpec, FactorySpec, run_cells
from repro.harness.sweep import sweep
from repro.workloads.micro import NullCriticalSection

#: Picklable factory: partial of a module-level class, lock_kind positional.
fast_factory = functools.partial(
    NullCriticalSection, acquires_per_proc=4, think_cycles=30
)

#: Shrunk raytrace model: total_work must divide n_procs x phases.
FAST_MODEL = {"total_work": 64, "local_compute": 200, "serial_compute": 500}


def make_spec(primitive="iqolb", n=2, verify=True, factory=fast_factory):
    policy, lock_kind = PRIMITIVES[primitive]
    return CellSpec(
        key=(primitive, n),
        primitive=primitive,
        config=SystemConfig(n_processors=n, policy=policy),
        workload=FactorySpec(factory, lock_kind),
        verify=verify,
    )


class TestRunner:
    def test_parallel_equals_serial_cell_for_cell(self):
        serial = sweep(fast_factory, ["tts", "iqolb"], [2, 4], n_jobs=1)
        parallel = sweep(fast_factory, ["tts", "iqolb"], [2, 4], n_jobs=2)
        assert serial.grid.keys() == parallel.grid.keys()
        for key in serial.grid:
            assert serial.grid[key] == parallel.grid[key], key
        assert parallel.runner_stats.executed == 4
        assert parallel.runner_stats.cache_hits == 0

    def test_unpicklable_factory_falls_back_to_serial(self):
        lambda_sweep = sweep(
            lambda lk: NullCriticalSection(lk, acquires_per_proc=3),
            ["tts"],
            [2],
            n_jobs=4,
        )
        assert lambda_sweep.cell("tts", 2).cycles > 0

    def test_wall_time_recorded_but_not_compared(self):
        grid, _ = run_cells([make_spec()])
        result = grid[("iqolb", 2)]
        assert result.wall_time_s > 0
        grid2, _ = run_cells([make_spec()])
        assert grid2[("iqolb", 2)] == result

    def test_table3_parallel_matches_serial(self):
        serial, _ = table3_with_stats(
            4, ["raytrace"], n_jobs=1, model_overrides=FAST_MODEL
        )
        parallel, stats = table3_with_stats(
            4, ["raytrace"], n_jobs=2, model_overrides=FAST_MODEL
        )
        assert stats.total == 4 and stats.executed == 4
        assert serial == parallel

    def test_empty_batch(self):
        grid, stats = run_cells([])
        assert grid == {} and stats.total == 0


class TestCache:
    def test_hit_returns_identical_result(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = sweep(fast_factory, ["tts", "iqolb"], [2], cache=cache)
        assert first.runner_stats.executed == 2
        assert first.runner_stats.cache_hits == 0

        again = sweep(
            fast_factory, ["tts", "iqolb"], [2], cache=ResultCache(tmp_path)
        )
        assert again.runner_stats.executed == 0
        assert again.runner_stats.cache_hits == 2
        for key in first.grid:
            hit, miss = again.grid[key], first.grid[key]
            assert hit == miss
            assert hit.stats == miss.stats
            assert hit.wall_time_s == miss.wall_time_s

    def test_key_changes_with_config_field(self):
        cache = ResultCache()
        base = make_spec()
        slow = make_spec()
        slow.config = slow.config.with_(xbar_line_cycles=200)
        assert cache.key(base.describe()) != cache.key(slow.describe())

    def test_key_changes_with_workload_params(self):
        cache = ResultCache()
        other_factory = functools.partial(
            NullCriticalSection, acquires_per_proc=9, think_cycles=30
        )
        assert cache.key(make_spec().describe()) != cache.key(
            make_spec(factory=other_factory).describe()
        )

    def test_key_changes_with_primitive_and_verify(self):
        cache = ResultCache()
        assert cache.key(make_spec("tts").describe()) != cache.key(
            make_spec("iqolb").describe()
        )
        assert cache.key(make_spec(verify=True).describe()) != cache.key(
            make_spec(verify=False).describe()
        )

    def test_key_changes_with_package_version(self, tmp_path):
        description = make_spec().describe()
        v1 = ResultCache(tmp_path, version="1.0.0")
        v2 = ResultCache(tmp_path, version="2.0.0")
        assert v1.key(description) != v2.key(description)

    def test_corrupted_entries_discarded_not_crashed(self, tmp_path):
        cache = ResultCache(tmp_path)
        sweep(fast_factory, ["tts"], [2], cache=cache)
        (entry,) = tmp_path.glob("*/*.json")

        for garbage in ["", "{not json", json.dumps({"schema": 999})]:
            entry.write_text(garbage)
            fresh = ResultCache(tmp_path)
            rerun = sweep(fast_factory, ["tts"], [2], cache=fresh)
            assert rerun.runner_stats.executed == 1
            assert rerun.runner_stats.cache_hits == 0
            assert rerun.cell("tts", 2).cycles > 0

    def test_get_on_missing_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.misses == 1 and cache.hits == 0

    def test_stable_hash_is_stable(self):
        payload = {"config": SystemConfig(n_processors=4), "x": [1, 2.5, None]}
        assert stable_hash(payload) == stable_hash(payload)
        assert stable_hash(payload) != stable_hash({"x": 1})


class TestTable3Cached:
    def test_second_invocation_runs_zero_simulations(self, tmp_path):
        cache = ResultCache(tmp_path)
        rows, stats = table3_with_stats(
            4, ["raytrace"], cache=cache, model_overrides=FAST_MODEL
        )
        assert stats.executed == 4 and stats.cache_hits == 0

        rows2, stats2 = table3_with_stats(
            4,
            ["raytrace"],
            cache=ResultCache(tmp_path),
            model_overrides=FAST_MODEL,
        )
        assert stats2.executed == 0 and stats2.cache_hits == 4
        assert rows2 == rows

    def test_model_overrides_change_the_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        table3_with_stats(4, ["raytrace"], cache=cache, model_overrides=FAST_MODEL)
        smaller = dict(FAST_MODEL, total_work=32)
        _, stats = table3_with_stats(
            4, ["raytrace"], cache=cache, model_overrides=smaller
        )
        assert stats.executed == 4 and stats.cache_hits == 0

"""Unit tests for address arithmetic."""

from hypothesis import given, strategies as st
import pytest

from repro.mem.address import WORD_BYTES, AddressMap


class TestConstruction:
    def test_default_line_size(self):
        amap = AddressMap()
        assert amap.line_bytes == 64
        assert amap.words_per_line == 16

    @pytest.mark.parametrize("bad", [0, -64, 48, 100])
    def test_rejects_non_power_of_two(self, bad):
        with pytest.raises(ValueError):
            AddressMap(bad)

    def test_rejects_line_smaller_than_word(self):
        with pytest.raises(ValueError):
            AddressMap(2)


class TestArithmetic:
    def test_line_addr(self):
        amap = AddressMap(64)
        assert amap.line_addr(0) == 0
        assert amap.line_addr(63) == 0
        assert amap.line_addr(64) == 64
        assert amap.line_addr(130) == 128

    def test_word_index(self):
        amap = AddressMap(64)
        assert amap.word_index(0) == 0
        assert amap.word_index(4) == 1
        assert amap.word_index(60) == 15
        assert amap.word_index(64) == 0

    def test_word_addr_inverse(self):
        amap = AddressMap(64)
        assert amap.word_addr(128, 3) == 140

    def test_same_line(self):
        amap = AddressMap(64)
        assert amap.same_line(0, 63)
        assert not amap.same_line(63, 64)

    @given(st.integers(min_value=0, max_value=2**40))
    def test_line_addr_is_aligned_and_covers(self, addr):
        amap = AddressMap(64)
        line = amap.line_addr(addr)
        assert line % 64 == 0
        assert line <= addr < line + 64

    @given(st.integers(min_value=0, max_value=2**40))
    def test_word_roundtrip(self, addr):
        amap = AddressMap(64)
        aligned = (addr // WORD_BYTES) * WORD_BYTES
        line = amap.line_addr(aligned)
        index = amap.word_index(aligned)
        assert amap.word_addr(line, index) == aligned

    @given(
        st.integers(min_value=0, max_value=2**30),
        st.sampled_from([32, 64, 128, 256]),
    )
    def test_invariants_across_line_sizes(self, addr, line_bytes):
        amap = AddressMap(line_bytes)
        assert 0 <= amap.word_index(addr) < amap.words_per_line
        assert amap.line_addr(amap.line_addr(addr)) == amap.line_addr(addr)

"""Partial-order reduction: equivalence against the exhaustive oracle.

The reductions (sleep sets, DPOR backtrack seeding) are only admissible
if they visit exactly the states the exhaustive ``none`` mode visits.
These tests pin that down on configurations small enough to *exhaust*
the schedule tree — frontier empty, so budget cuts cannot confound the
set comparison — and check the independence relation's own algebra with
Hypothesis.
"""

import pytest
from hypothesis import given, strategies as st

from conftest import prop_settings
from repro.check.explore import (
    REDUCTIONS,
    Budget,
    RunSpec,
    explore,
    independent,
)

#: a budget generous enough that every small cell below exhausts its
#: frontier — required for the fingerprint-set comparisons to be exact
EXHAUST = dict(max_schedules=4000, max_steps=80_000, max_depth=16)


def _exhaustive(spec: RunSpec, reduction: str):
    report = explore(spec, Budget(reduction=reduction, **EXHAUST))
    assert report.frontier_left == 0, (
        f"{spec.label()}/{reduction} did not exhaust its frontier "
        f"({report.frontier_left} left) — comparison would be meaningless"
    )
    assert not report.violations, report.violations
    return report


class TestReductionEquivalence:
    @pytest.mark.parametrize("scenario", ["counter", "lock"])
    def test_reductions_visit_the_same_states(self, scenario, interconnect):
        """sleep/dpor reach exactly the fingerprint set none reaches."""
        spec = RunSpec(
            scenario=scenario,
            primitive="iqolb",
            interconnect=interconnect,
            n_processors=2,
            acquires_per_proc=1,
        )
        reports = {red: _exhaustive(spec, red) for red in REDUCTIONS}
        base = reports["none"].state_fingerprints
        assert base, "oracle explored no states"
        for red in ("sleep", "dpor"):
            assert reports[red].state_fingerprints == base, (
                f"{red} lost or invented states vs none"
            )
            # A reduction may never need *more* schedules than the
            # exhaustive oracle for the same state set.
            assert (
                reports[red].schedules_run <= reports["none"].schedules_run
            )

    def test_dpor_actually_prunes(self):
        """On a scenario with disjoint per-node lines the dpor rule must
        fire — a reduction that never reduces is vacuous."""
        spec = RunSpec(
            scenario="mcs",
            primitive="iqolb",
            interconnect="bus",
            n_processors=2,
            acquires_per_proc=1,
        )
        none = _exhaustive(spec, "none")
        dpor = _exhaustive(spec, "dpor")
        assert dpor.pruned_dpor > 0
        assert dpor.schedules_run < none.schedules_run
        assert dpor.state_fingerprints == none.state_fingerprints

    def test_report_records_reduction_mode(self):
        spec = RunSpec(
            scenario="counter",
            primitive="iqolb",
            interconnect="bus",
            n_processors=2,
            acquires_per_proc=1,
        )
        assert _exhaustive(spec, "sleep").reduction == "sleep"

    def test_unknown_reduction_rejected(self):
        with pytest.raises(ValueError, match="unknown reduction"):
            Budget(reduction="full-por")


class TestMutationUnderReduction:
    """A reduction must not prune away the interleavings that expose a
    seeded bug: the self-test violation fires under every mode."""

    @pytest.mark.parametrize("reduction", REDUCTIONS)
    def test_seeded_mutation_caught(self, reduction):
        spec = RunSpec(
            scenario="lock",
            primitive="iqolb",
            interconnect="bus",
            n_processors=3,
            acquires_per_proc=2,
            mutation="skip_release_handoff",
            timeout_cycles=10_000_000,
            max_cycles=200_000,
        )
        budget = Budget(
            max_schedules=10,
            max_steps=150_000,
            max_depth=30,
            reduction=reduction,
        )
        report = explore(spec, budget)
        assert report.violations, (
            f"reduction={reduction} missed the seeded hand-off bug"
        )


# -- the independence relation's algebra, property-tested ---------------

_keys = st.tuples(
    st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
    st.frozensets(st.integers(min_value=0, max_value=5), max_size=3),
    st.sampled_from(["cpu_request", "_start_miss", "_advance", "_resolve"]),
)


class TestIndependenceRelation:
    @prop_settings
    @given(a=_keys, b=_keys)
    def test_symmetric(self, a, b):
        assert independent(a, b) == independent(b, a)

    @prop_settings
    @given(a=_keys)
    def test_irreflexive(self, a):
        """An event never commutes with itself (same node)."""
        assert not independent(a, a)

    @prop_settings
    @given(a=_keys, b=_keys)
    def test_conservative_cases_conflict(self, a, b):
        """Shared-component events (no node), unknown footprints, same
        node, and overlapping lines must all be treated as conflicts."""
        if (
            a[0] is None
            or b[0] is None
            or a[0] == b[0]
            or not a[1]
            or not b[1]
            or (a[1] & b[1])
        ):
            assert not independent(a, b)
        else:
            assert independent(a, b)

    @prop_settings
    @given(
        scenario=st.sampled_from(["counter", "lock", "mcs", "barrier"]),
        fabric=st.sampled_from(["bus", "directory"]),
        reduction=st.sampled_from(["sleep", "dpor"]),
    )
    def test_declared_independent_events_commute(
        self, scenario, fabric, reduction
    ):
        """The end-to-end commutation check: every reordering the
        reduction declines to execute (because its candidate commutes
        with the event fired, or sleeps) must lead only to states some
        executed schedule also reaches — exhaustive fingerprint-set
        equality against the oracle *is* executing both orders of every
        declared-independent pair and comparing the outcomes."""
        spec = RunSpec(
            scenario=scenario,
            primitive="iqolb",
            interconnect=fabric,
            n_processors=2,
            acquires_per_proc=1,
        )
        oracle = _exhaustive(spec, "none")
        reduced = _exhaustive(spec, reduction)
        assert reduced.state_fingerprints == oracle.state_fingerprints

"""Integration tests for LL/SC architectural semantics (paper §2).

The invariant: an SC succeeds only if no other processor successfully
wrote the linked location between the LL and the SC.  These tests drive
carefully staggered interleavings on every protocol policy — the
mechanisms may change *when* data moves, never the LL/SC meaning.
"""

from conftest import any_policy, build_system, run_programs
from repro.cpu.ops import LL, SC, Compute, Read, Swap, Write


class TestBasics:
    def test_ll_then_sc_uncontended_succeeds(self, any_policy):
        system = build_system(1, any_policy)
        addr = system.layout.alloc_line()
        results = []

        def program():
            value = yield LL(addr, pc=1)
            ok = yield SC(addr, value + 1, pc=1)
            results.append(ok)

        run_programs(system, [program()])
        assert results == [True]
        assert system.read_word(addr) == 1

    def test_sc_without_ll_fails(self, any_policy):
        system = build_system(1, any_policy)
        addr = system.layout.alloc_line()
        results = []

        def program():
            yield Read(addr)
            ok = yield SC(addr, 5, pc=1)
            results.append(ok)

        run_programs(system, [program()])
        assert results == [False]
        assert system.read_word(addr) == 0

    def test_sc_to_wrong_address_fails(self, any_policy):
        system = build_system(1, any_policy)
        a = system.layout.alloc_line()
        b = system.layout.alloc_line()
        results = []

        def program():
            yield LL(a, pc=1)
            ok = yield SC(b, 5, pc=1)
            results.append(ok)

        run_programs(system, [program()])
        assert results == [False]

    def test_sc_consumes_link(self, any_policy):
        system = build_system(1, any_policy)
        addr = system.layout.alloc_line()
        results = []

        def program():
            yield LL(addr, pc=1)
            results.append((yield SC(addr, 1, pc=1)))
            results.append((yield SC(addr, 2, pc=1)))  # link gone

        run_programs(system, [program()])
        assert results == [True, False]


class TestInterventions:
    def test_remote_store_between_ll_and_sc_fails_sc(self, any_policy):
        system = build_system(2, any_policy)
        addr = system.layout.alloc_line()
        results = []

        def linked():
            value = yield LL(addr, pc=1)
            yield Compute(800)  # wide window for the intruder
            ok = yield SC(addr, value + 1, pc=1)
            results.append(ok)

        def intruder():
            yield Compute(250)
            yield Write(addr, 77)

        run_programs(system, [linked(), intruder()])
        assert results == [False]
        assert system.read_word(addr) == 77

    def test_remote_swap_between_ll_and_sc_fails_sc(self, any_policy):
        system = build_system(2, any_policy)
        addr = system.layout.alloc_line()
        results = []

        def linked():
            value = yield LL(addr, pc=1)
            yield Compute(800)
            results.append((yield SC(addr, value + 1, pc=1)))

        def intruder():
            yield Compute(250)
            yield Swap(addr, 55)

        run_programs(system, [linked(), intruder()])
        assert results == [False]
        assert system.read_word(addr) == 55

    def test_remote_read_does_not_break_link(self, any_policy):
        system = build_system(2, any_policy)
        addr = system.layout.alloc_line()
        results = []

        def linked():
            value = yield LL(addr, pc=1)
            yield Compute(800)
            results.append((yield SC(addr, value + 1, pc=1)))

        def reader():
            yield Compute(250)
            yield Read(addr)

        run_programs(system, [linked(), reader()])
        # A read must never fail the SC (paper §2: only writes do).  Note
        # under IQOLB the read may be answered with a tear-off; either
        # way the SC survives.
        assert results == [True]
        assert system.read_word(addr) == 1

    def test_contended_rmw_total_is_exact(self, any_policy):
        system = build_system(4, any_policy)
        addr = system.layout.alloc_line()

        def rmw_loop(iters):
            def program():
                for _ in range(iters):
                    while True:
                        value = yield LL(addr, pc=3)
                        ok = yield SC(addr, value + 1, pc=3)
                        if ok:
                            break
                        yield Compute(7)
                    yield Compute(23)
            return program()

        run_programs(system, [rmw_loop(15) for _ in range(4)])
        assert system.read_word(addr) == 60


class TestSwap:
    def test_swap_returns_old_and_stores_new(self, any_policy):
        system = build_system(1, any_policy)
        addr = system.layout.alloc_line()
        system.write_word(addr, 11)
        results = []

        def program():
            results.append((yield Swap(addr, 22)))

        run_programs(system, [program()])
        assert results == [11]
        assert system.read_word(addr) == 22

    def test_concurrent_swaps_linearize(self, any_policy):
        system = build_system(4, any_policy)
        addr = system.layout.alloc_line()
        system.write_word(addr, 1000)
        grabbed = []

        def program(tid):
            for i in range(5):
                old = yield Swap(addr, tid * 100 + i)
                grabbed.append(old)
                yield Compute(31)

        run_programs(system, [program(t) for t in range(4)])
        final = system.read_word(addr)
        # Every value deposited is either grabbed exactly once or is the
        # final value: a chain, as swaps linearize.
        assert len(grabbed) == 20
        assert len(set(grabbed)) == 20
        assert final not in grabbed

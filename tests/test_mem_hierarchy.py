"""Unit tests for the two-level cache hierarchy."""

from repro.engine.stats import StatsRegistry
from repro.mem.cache import CacheArray
from repro.mem.hierarchy import NodeCacheHierarchy
from repro.mem.line import CacheLine, State


def make_hierarchy(l1_sets=2, l1_assoc=2, l2_sets=4, l2_assoc=2):
    stats = StatsRegistry()
    l1 = CacheArray(l1_sets, l1_assoc, 64)
    l2 = CacheArray(l2_sets, l2_assoc, 64)
    return NodeCacheHierarchy(0, l1, l2, 1, 6, stats), stats


def line_at(addr, state=State.EXCLUSIVE):
    return CacheLine(addr, state, [0] * 16)


class TestLookupTiming:
    def test_miss_latency_is_probe_path(self):
        hierarchy, _ = make_hierarchy()
        line, latency = hierarchy.lookup(0x100)
        assert line is None
        assert latency == 7  # L1 probe + L2 probe

    def test_l1_hit_after_install(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.install(line_at(0x100))
        line, latency = hierarchy.lookup(0x100)
        assert line is not None
        assert latency == 1

    def test_l2_hit_refills_l1(self):
        hierarchy, stats = make_hierarchy()
        hierarchy.install(line_at(0x100))
        hierarchy.l1.remove(0x100)  # silent L1 eviction
        line, latency = hierarchy.lookup(0x100)
        assert latency == 7
        # refilled: second access is an L1 hit
        _, latency2 = hierarchy.lookup(0x100)
        assert latency2 == 1

    def test_hit_counters(self):
        hierarchy, stats = make_hierarchy()
        hierarchy.install(line_at(0x100))
        hierarchy.lookup(0x100)
        hierarchy.lookup(0x999000)
        assert stats.value("cache0.l1_hits") == 1
        assert stats.value("cache0.misses") == 1


class TestSharedLineObjects:
    def test_l1_and_l2_share_objects(self):
        hierarchy, _ = make_hierarchy()
        line = line_at(0x100)
        hierarchy.install(line)
        assert hierarchy.l1.lookup(0x100, touch=False) is line
        assert hierarchy.l2.lookup(0x100, touch=False) is line

    def test_state_change_visible_everywhere(self):
        hierarchy, _ = make_hierarchy()
        line = line_at(0x100)
        hierarchy.install(line)
        line.state = State.MODIFIED
        assert hierarchy.l1.lookup(0x100, touch=False).state is State.MODIFIED


class TestInclusion:
    def test_l2_eviction_drops_l1_copy(self):
        hierarchy, _ = make_hierarchy(l2_sets=1, l2_assoc=2)
        a, b, c = 0x000, 0x040, 0x080
        hierarchy.install(line_at(a))
        hierarchy.install(line_at(b))
        (victim,) = hierarchy.install(line_at(c))
        assert hierarchy.l1.lookup(victim.addr, touch=False) is None
        assert hierarchy.l2.lookup(victim.addr, touch=False) is None

    def test_overflowed_set_drains_multiple_victims(self):
        hierarchy, _ = make_hierarchy(l2_sets=1, l2_assoc=2)
        pinned_lines = []
        for addr in (0x000, 0x040):
            line = line_at(addr)
            line.pinned = True
            pinned_lines.append(line)
            hierarchy.install(line)
        hierarchy.install(line_at(0x080))  # forced overflow (3 resident)
        for line in pinned_lines:
            line.pinned = False
        victims = hierarchy.install(line_at(0x0C0))
        assert len(victims) == 2  # drained back to capacity
        assert hierarchy.l2.resident_count() == 2

    def test_drop_removes_both_levels(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.install(line_at(0x100))
        hierarchy.drop(0x100)
        assert hierarchy.peek(0x100) is None
        assert hierarchy.l1.lookup(0x100, touch=False) is None

    def test_pinned_set_force_installs(self):
        hierarchy, stats = make_hierarchy(l2_sets=1, l2_assoc=2)
        for addr in (0x000, 0x040):
            line = line_at(addr)
            line.pinned = True
            hierarchy.install(line)
        victims = hierarchy.install(line_at(0x080))
        assert victims == []  # nothing evictable; overflowed instead
        assert stats.value("cache0.pinned_overflows") == 1
        assert hierarchy.peek(0x080) is not None


class TestPeek:
    def test_peek_finds_valid_lines(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.install(line_at(0x100))
        assert hierarchy.peek(0x100) is not None

    def test_peek_ignores_missing(self):
        hierarchy, _ = make_hierarchy()
        assert hierarchy.peek(0x100) is None

    def test_state_of(self):
        hierarchy, _ = make_hierarchy()
        assert hierarchy.state_of(0x100) is State.INVALID
        hierarchy.install(line_at(0x100, State.OWNED))
        assert hierarchy.state_of(0x100) is State.OWNED

"""Property-based system tests: coherence and atomicity invariants.

Hypothesis generates random concurrent programs (stores, loads, atomic
RMWs, random timing) over a small set of contended lines and checks,
for every protocol policy on both coherence fabrics (bus and
directory), the invariants that must hold regardless of interleaving:

* **atomicity** — LL/SC increments across all threads sum exactly;
* **coherence** — after quiescence, every line has at most one owner,
  and all shared copies agree with the owner's data;
* **store visibility** — the final coherent value of a word written by
  exactly one thread is that thread's last write.
"""

from hypothesis import HealthCheck, given, settings, strategies as st
import pytest

from conftest import small_config
from repro import System
from repro.cpu.ops import LL, SC, Compute, Read, Swap, Write
from repro.mem.line import State

POLICIES = [
    "baseline",
    "aggressive",
    "delayed",
    "delayed+retention",
    "iqolb",
    "iqolb+retention",
    "qolb",
]

prop_settings = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        # the interconnect fixture is a constant string per test id
        HealthCheck.function_scoped_fixture,
    ],
)


def quiesce_check(system, lines):
    """SWMR + data-value invariants at end of run."""
    for line_addr in lines:
        owners = []
        sharers = []
        for controller in system.controllers:
            line = controller.hierarchy.peek(line_addr)
            if line is None or line.state is State.TEAROFF:
                continue
            if line.is_owner:
                owners.append((controller.node_id, line))
            elif line.state is State.SHARED:
                sharers.append((controller.node_id, line))
        assert len(owners) <= 1, f"two owners for {line_addr:#x}: {owners}"
        if owners:
            owner_line = owners[0][1]
            reference = owner_line.data
            # M/E exclude any other copies entirely.
            if owner_line.state in (State.MODIFIED, State.EXCLUSIVE):
                assert not sharers, (
                    f"{owner_line.state} owner plus sharers on {line_addr:#x}"
                )
        else:
            reference = system.memory.read_line(line_addr)
        for node, line in sharers:
            assert line.data == reference, (
                f"P{node} shared copy of {line_addr:#x} diverges"
            )


@pytest.mark.parametrize("policy", POLICIES)
class TestAtomicIncrements:
    @prop_settings
    @given(
        data=st.data(),
    )
    def test_increment_sum_exact(self, policy, interconnect, data):
        n = data.draw(st.integers(min_value=2, max_value=4), label="threads")
        iters = data.draw(st.integers(min_value=1, max_value=8), label="iters")
        thinks = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=120),
                min_size=n,
                max_size=n,
            ),
            label="thinks",
        )
        system = System(small_config(n, policy, interconnect=interconnect))
        counter = system.layout.alloc_line()

        def worker(think):
            def program():
                for _ in range(iters):
                    while True:
                        value = yield LL(counter, pc=0x77)
                        ok = yield SC(counter, value + 1, pc=0x77)
                        if ok:
                            break
                        yield Compute(3)
                    yield Compute(think)
            return program()

        for node in range(n):
            system.load_program(node, worker(thinks[node]))
        system.run()
        assert system.read_word(counter) == n * iters
        quiesce_check(system, [system.amap.line_addr(counter)])


@pytest.mark.parametrize("policy", POLICIES)
class TestRandomPrograms:
    @prop_settings
    @given(data=st.data())
    def test_coherence_invariants_hold(self, policy, interconnect, data):
        n = data.draw(st.integers(min_value=2, max_value=3), label="threads")
        n_lines = 3
        system = System(small_config(n, policy, interconnect=interconnect))
        lines = [system.layout.alloc_line() for _ in range(n_lines)]
        last_writer_value = {}

        op_strategy = st.tuples(
            st.sampled_from(["read", "write", "rmw", "swap", "compute"]),
            st.integers(min_value=0, max_value=n_lines - 1),
            st.integers(min_value=1, max_value=60),
        )
        scripts = [
            data.draw(st.lists(op_strategy, min_size=1, max_size=12),
                      label=f"script{t}")
            for t in range(n)
        ]

        def worker(tid, script):
            def program():
                for i, (kind, line_idx, arg) in enumerate(script):
                    addr = lines[line_idx]
                    if kind == "read":
                        yield Read(addr)
                    elif kind == "write":
                        yield Write(addr, tid * 1000 + i)
                    elif kind == "swap":
                        yield Swap(addr, tid * 1000 + 500 + i)
                    elif kind == "rmw":
                        while True:
                            value = yield LL(addr, pc=0x88)
                            ok = yield SC(addr, value + 1, pc=0x88)
                            if ok:
                                break
                            yield Compute(3)
                    else:
                        yield Compute(arg)
            return program()

        for node in range(n):
            system.load_program(node, worker(node, scripts[node]))
        system.run()
        quiesce_check(system, lines)

    @prop_settings
    @given(data=st.data())
    def test_single_writer_final_value(self, policy, interconnect, data):
        """A word written by one thread only ends at its last write."""
        n = data.draw(st.integers(min_value=2, max_value=3), label="threads")
        writes = data.draw(
            st.lists(st.integers(min_value=1, max_value=999),
                     min_size=1, max_size=8),
            label="writes",
        )
        system = System(small_config(n, policy, interconnect=interconnect))
        target = system.layout.alloc_line()

        def writer():
            for value in writes:
                yield Write(target, value)
                yield Compute(11)

        def reader():
            for _ in range(6):
                yield Read(target)
                yield Compute(17)

        system.load_program(0, writer())
        for node in range(1, n):
            system.load_program(node, reader())
        system.run()
        assert system.read_word(target) == writes[-1]

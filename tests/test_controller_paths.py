"""Targeted tests for cache-controller corner paths.

These drive specific controller code paths either through crafted
programs or by injecting crossbar messages directly — the situations
that only arise under racing timings in full runs.
"""

from conftest import build_system, run_programs
from repro.cpu.ops import LL, SC, Compute, Read, Write
from repro.interconnect.messages import DataKind, DataMessage, GrantState
from repro.mem.line import State


class TestStaleResponses:
    def test_stale_line_fill_dropped(self):
        """A LINE answer for a superseded transaction must not install."""
        system = build_system(2, "baseline")
        controller = system.controllers[0]
        addr = system.layout.alloc_line()

        def program():
            yield Write(addr, 7)  # become M owner

        run_programs(system, [program(), iter([])])
        assert controller.hierarchy.state_of(addr) is State.MODIFIED

        # Inject a stale memory response claiming to answer txn 999999.
        stale = DataMessage(
            DataKind.LINE, addr, src=-1, dst=0,
            data=[0] * 16, grant=GrantState.EXCLUSIVE, txn_id=999_999,
        )
        controller.on_data(stale)
        line = controller.hierarchy.peek(addr)
        assert line.read_word(0) == 7  # untouched
        assert system.stats.value("ctrl0.stale_fills_dropped") == 1

    def test_stale_tearoff_dropped_without_mshr(self):
        """An orphan tear-off (no queue position) must not install."""
        system = build_system(2, "iqolb")
        controller = system.controllers[0]
        addr = system.layout.alloc_line()
        orphan = DataMessage(
            DataKind.TEAROFF, addr, src=1, dst=0, data=[1] * 16, txn_id=5,
        )
        controller.on_data(orphan)
        assert controller.hierarchy.peek(addr) is None
        assert system.stats.value("ctrl0.stale_tearoffs_dropped") == 1

    def test_tearoff_for_owner_dropped(self):
        """A tear-off racing a hand-off we already received is ignored."""
        system = build_system(2, "iqolb")
        controller = system.controllers[0]
        addr = system.layout.alloc_line()

        def program():
            yield Write(addr, 9)

        run_programs(system, [program(), iter([])])
        tearoff = DataMessage(
            DataKind.TEAROFF, addr, src=1, dst=0, data=[0] * 16, txn_id=7,
        )
        controller.on_data(tearoff)
        line = controller.hierarchy.peek(addr)
        assert line.state is State.MODIFIED
        assert line.read_word(0) == 9

    def test_chain_transfer_to_owner_dropped(self):
        system = build_system(2, "iqolb")
        controller = system.controllers[0]
        addr = system.layout.alloc_line()

        def program():
            yield Write(addr, 5)

        run_programs(system, [program(), iter([])])
        chain = DataMessage(
            DataKind.LINE, addr, src=1, dst=0,
            data=[0] * 16, grant=GrantState.EXCLUSIVE, txn_id=None,
        )
        controller.on_data(chain)
        assert controller.hierarchy.peek(addr).read_word(0) == 5


class TestUpgradeRaces:
    def test_raced_store_replays_with_getx(self):
        """A plain store whose UPGRADE loses the race must still land."""
        system = build_system(3, "baseline")
        addr = system.layout.alloc_line()
        order = []

        def sharer(value, stagger):
            def program():
                yield Read(addr)           # S copy
                yield Compute(stagger)
                yield Write(addr, value)   # UPGRADE; someone loses
                order.append(value)
            return program()

        def reader():
            yield Read(addr)

        run_programs(system, [sharer(1, 200), sharer(2, 200), reader()])
        # Both stores completed (no lost writes); the final value is one
        # of them.
        assert sorted(order) == [1, 2]
        assert system.read_word(addr) in (1, 2)

    def test_raced_sc_fails_cleanly(self):
        system = build_system(2, "baseline")
        addr = system.layout.alloc_line()
        outcomes = []

        def contender(stagger):
            def program():
                yield Read(addr)  # both S
                yield Compute(stagger)
                value = yield LL(addr, pc=1)
                yield Compute(50)
                outcomes.append((yield SC(addr, value + 1, pc=1)))
            return program()

        run_programs(system, [contender(100), contender(100)])
        # At least one succeeded; failures were clean (no corruption).
        assert True in outcomes
        assert system.read_word(addr) == outcomes.count(True)


class TestLoanReturnEdge:
    def test_dissolved_loan_token_handled(self):
        """A data-less LOAN_RETURN clears lender bookkeeping (defensive
        path; the current protocol never emits one)."""
        system = build_system(2, "iqolb+retention")
        controller = system.controllers[0]
        addr = system.layout.alloc_line()
        controller.on_loan[addr] = 1
        controller.successor[addr] = 1
        token = DataMessage(DataKind.LOAN_RETURN, addr, src=1, dst=0, data=None)
        controller.on_data(token)
        assert addr not in controller.on_loan
        assert addr not in controller.successor
        assert system.stats.value("ctrl0.loans_dissolved") == 1


class TestPushEdges:
    def test_push_to_existing_owner_is_acked_and_dropped(self):
        system = build_system(2, "iqolb+gen")
        controller = system.controllers[0]
        addr = system.layout.alloc_line()

        def program():
            yield Write(addr, 3)

        run_programs(system, [program(), iter([])])
        push = DataMessage(
            DataKind.PUSH, addr, src=1, dst=0,
            data=[0] * 16, grant=GrantState.EXCLUSIVE,
        )
        controller.on_data(push)
        system.sim.run()  # let the ack fly
        assert controller.hierarchy.peek(addr).read_word(0) == 3
        assert system.stats.value("ctrl0.pushes_received") == 1

    def test_push_ack_clears_forwarded(self):
        system = build_system(2, "iqolb+gen")
        controller = system.controllers[0]
        controller.forwarded[0x4000] = 1
        ack = DataMessage(DataKind.PUSH_ACK, 0x4000, src=1, dst=0)
        controller.on_data(ack)
        assert controller.forwarded == {}


class TestLinkFlagEdges:
    def test_ll_to_new_address_moves_link(self):
        system = build_system(1, "baseline")
        controller = system.controllers[0]
        a = system.layout.alloc_line()
        b = system.layout.alloc_line()
        outcomes = []

        def program():
            yield LL(a, pc=1)
            yield LL(b, pc=1)          # link moves to b
            outcomes.append((yield SC(a, 1, pc=1)))  # must fail
            yield LL(b, pc=1)
            outcomes.append((yield SC(b, 1, pc=1)))  # succeeds

        run_programs(system, [program()])
        assert outcomes == [False, True]

    def test_eviction_of_linked_line_fails_sc(self):
        system = build_system(
            1, "baseline",
            l1_size_bytes=2 * 64, l1_assoc=1,
            l2_size_bytes=2 * 64, l2_assoc=1,
        )
        target = system.layout.alloc_line()
        fillers = [system.layout.alloc_line() for _ in range(4)]
        outcomes = []

        def program():
            yield LL(target, pc=1)
            for addr in fillers:  # force the linked line out
                yield Read(addr)
            outcomes.append((yield SC(target, 1, pc=1)))

        run_programs(system, [program()])
        # The linked line was evicted; the SC cannot be guaranteed and
        # fails (architecturally allowed and expected).
        assert outcomes == [False]


class TestCoherentReadback:
    def test_read_word_prefers_owner_copy(self):
        system = build_system(2, "baseline")
        addr = system.layout.alloc_line()

        def writer():
            yield Write(addr, 77)

        run_programs(system, [writer(), iter([])])
        assert system.memory.read_word(addr) == 0
        assert system.read_word(addr) == 77

    def test_read_word_falls_back_to_memory(self):
        system = build_system(1, "baseline")
        addr = system.layout.alloc_line()
        system.write_word(addr, 13)
        system.load_program(0, iter([]))
        system.run()
        assert system.read_word(addr) == 13

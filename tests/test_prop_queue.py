"""Property-based tests for the distributed queue.

The paper's §3.2 ordering claim — "the line will be passed in a writable
state from one processor to the next, in precisely the order in which
the original requests occurred" — plus liveness under random timing and
under cache pressure (eviction hand-offs).
"""

from hypothesis import given, strategies as st

from conftest import prop_settings, small_config
from repro import System
from repro.cpu.ops import LL, SC, Compute, Read, Write
from repro.sync import TTSLock


class TestQueueOrdering:
    @prop_settings
    @given(
        staggers=st.lists(
            st.integers(min_value=0, max_value=400), min_size=3, max_size=5
        )
    )
    def test_delayed_grants_follow_request_order(self, staggers, interconnect):
        """With well-separated arrivals, Fetch&Inc grants under the
        delayed-response scheme follow LPRFO request order."""
        n = len(staggers)
        # Separate the arrivals enough that fabric order == stagger order.
        arrivals = [1 + s + i * 450 for i, s in enumerate(sorted(staggers))]
        system = System(small_config(n, "delayed", interconnect=interconnect))
        addr = system.layout.alloc_line()
        grants = []

        def worker(tid, arrive):
            def program():
                yield Compute(arrive)
                while True:
                    value = yield LL(addr, pc=1)
                    yield Compute(900)  # hold long enough to queue all
                    ok = yield SC(addr, value + 1, pc=1)
                    if ok:
                        break
                grants.append(tid)
            return program()

        for tid in range(n):
            system.load_program(tid, worker(tid, arrivals[tid]))
        system.run()
        assert system.read_word(addr) == n
        assert grants == list(range(n))  # request order == grant order

    @prop_settings
    @given(
        think=st.integers(min_value=0, max_value=150),
        iters=st.integers(min_value=2, max_value=6),
    )
    def test_iqolb_lock_progress_random_timing(self, think, iters, interconnect):
        """Random think times: every thread always finishes, mutual
        exclusion always holds."""
        n = 4
        system = System(small_config(n, "iqolb", interconnect=interconnect))
        lock = TTSLock(system.layout.alloc_line())
        token = system.layout.alloc_line()

        def worker(tid):
            def program():
                yield Compute(1 + tid * 13)
                for _ in range(iters):
                    yield from lock.acquire()
                    value = yield Read(token)
                    yield Write(token, value + 1)
                    yield from lock.release()
                    yield Compute(think)
            return program()

        for tid in range(n):
            system.load_program(tid, worker(tid))
        system.run()
        assert system.read_word(token) == n * iters


class TestQueueUnderCachePressure:
    @prop_settings
    @given(
        policy=st.sampled_from(["delayed", "iqolb", "iqolb+retention", "qolb"]),
        filler_lines=st.integers(min_value=4, max_value=10),
    )
    def test_tiny_caches_force_evictions_yet_progress(
        self, policy, filler_lines, interconnect
    ):
        """Eviction hand-offs (eviction == time-out, §3.3) keep the
        queue live even when lock lines get squeezed out."""
        n = 3
        system = System(
            small_config(
                n,
                policy,
                l1_size_bytes=2 * 64,
                l1_assoc=1,
                l2_size_bytes=4 * 64,
                l2_assoc=1,
                interconnect=interconnect,
            )
        )
        from repro.sync import QolbLock

        lock_cls = QolbLock if policy == "qolb" else TTSLock
        lock = lock_cls(system.layout.alloc_line())
        token = system.layout.alloc_line()
        fillers = [system.layout.alloc_line() for _ in range(filler_lines)]

        def worker(tid):
            def program():
                for i in range(4):
                    yield from lock.acquire()
                    value = yield Read(token)
                    yield Write(token, value + 1)
                    # Cache-thrash inside the critical section.
                    for addr in fillers:
                        yield Write(addr, tid * 100 + i)
                    yield from lock.release()
                    yield Compute(40)
            return program()

        for tid in range(n):
            system.load_program(tid, worker(tid))
        system.run()
        assert system.read_word(token) == n * 4

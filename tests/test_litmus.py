"""Sequential-consistency litmus tests (paper Table 1: SC model).

The simulated processor is in-order with blocking memory operations and
the coherence fabric — the snooping bus or the home-node directory —
serializes writes to each line globally, so the classic litmus outcomes
that SC forbids must never appear — under *any* protocol policy, either
interconnect, and any timing.  Each litmus runs across a grid of
relative timings to probe different interleavings (the simulator is
deterministic, so the sweep stands in for repetition).
"""

import pytest

from conftest import build_system, run_programs
from repro.core.registry import policy_names
from repro.cpu.ops import Compute, Read, Write

#: every registered protocol policy — a policy added to the registry is
#: automatically litmus-tested, with no hand-maintained list to forget
POLICIES = policy_names()
STAGGERS = [0, 3, 17, 64, 151, 402]


@pytest.mark.parametrize("policy", POLICIES)
class TestStoreBuffering:
    """SB: both threads store then load the other's flag.

    SC forbids (r0, r1) == (0, 0): some store is globally first and the
    other thread's load must see it.
    """

    @pytest.mark.parametrize("stagger", STAGGERS)
    def test_sb_forbidden_outcome(self, policy, stagger, interconnect):
        system = build_system(2, policy, interconnect=interconnect)
        x = system.layout.alloc_line()
        y = system.layout.alloc_line()
        results = {}

        def thread0():
            yield Write(x, 1)
            results["r0"] = yield Read(y)

        def thread1():
            yield Compute(stagger)
            yield Write(y, 1)
            results["r1"] = yield Read(x)

        run_programs(system, [thread0(), thread1()])
        assert (results["r0"], results["r1"]) != (0, 0)


@pytest.mark.parametrize("policy", POLICIES)
class TestMessagePassing:
    """MP: producer writes data then flag; consumer polls flag then reads
    data.  SC forbids seeing the flag without the data."""

    @pytest.mark.parametrize("stagger", STAGGERS)
    def test_mp_data_visible_with_flag(self, policy, stagger, interconnect):
        system = build_system(2, policy, interconnect=interconnect)
        data = system.layout.alloc_line()
        flag = system.layout.alloc_line()
        seen = {}

        def producer():
            yield Compute(stagger)
            yield Write(data, 42)
            yield Write(flag, 1)

        def consumer():
            while True:
                ready = yield Read(flag)
                if ready:
                    break
                yield Compute(9)
            seen["data"] = yield Read(data)

        run_programs(system, [producer(), consumer()])
        assert seen["data"] == 42


@pytest.mark.parametrize("policy", POLICIES)
class TestLoadBuffering:
    """LB: each thread loads the other's variable then stores its own.

    SC forbids (1, 1): a cycle where both loads see the other's later
    store."""

    @pytest.mark.parametrize("stagger", STAGGERS[:4])
    def test_lb_forbidden_outcome(self, policy, stagger, interconnect):
        system = build_system(2, policy, interconnect=interconnect)
        x = system.layout.alloc_line()
        y = system.layout.alloc_line()
        results = {}

        def thread0():
            results["r0"] = yield Read(x)
            yield Write(y, 1)

        def thread1():
            yield Compute(stagger)
            results["r1"] = yield Read(y)
            yield Write(x, 1)

        run_programs(system, [thread0(), thread1()])
        assert (results["r0"], results["r1"]) != (1, 1)


@pytest.mark.parametrize("policy", POLICIES)
class TestCoherenceOrder:
    """CoRR: two reads of one location by the same thread never observe
    values moving backwards against the write order."""

    @pytest.mark.parametrize("stagger", STAGGERS[:4])
    def test_reads_never_go_backwards(self, policy, stagger, interconnect):
        system = build_system(2, policy, interconnect=interconnect)
        x = system.layout.alloc_line()
        observations = []

        def writer():
            for value in range(1, 8):
                yield Write(x, value)
                yield Compute(37)

        def reader():
            yield Compute(stagger)
            for _ in range(12):
                observations.append((yield Read(x)))
                yield Compute(23)

        run_programs(system, [writer(), reader()])
        assert observations == sorted(observations)


@pytest.mark.parametrize("policy", POLICIES)
class TestIriw:
    """IRIW: two writers to distinct locations, two readers reading them
    in opposite orders.  SC forbids the readers disagreeing about the
    write order: (r1,r2,r3,r4) == (1,0,1,0)."""

    @pytest.mark.parametrize("stagger", [0, 11, 53])
    def test_iriw_forbidden_outcome(self, policy, stagger, interconnect):
        system = build_system(4, policy, interconnect=interconnect)
        x = system.layout.alloc_line()
        y = system.layout.alloc_line()
        out = {}

        def writer(addr, delay):
            def program():
                yield Compute(delay)
                yield Write(addr, 1)
            return program()

        def reader(first, second, key, delay):
            def program():
                yield Compute(delay)
                out[key + "a"] = yield Read(first)
                out[key + "b"] = yield Read(second)
            return program()

        run_programs(
            system,
            [
                writer(x, 0),
                writer(y, stagger),
                reader(x, y, "r0", stagger // 2),
                reader(y, x, "r1", stagger // 3),
            ],
        )
        forbidden = (
            out["r0a"] == 1
            and out["r0b"] == 0
            and out["r1a"] == 1
            and out["r1b"] == 0
        )
        assert not forbidden

"""Unit tests for the set-associative cache array."""

from hypothesis import given, settings, strategies as st
import pytest

from repro.mem.cache import CacheArray
from repro.mem.line import CacheLine, State


def line_at(addr, state=State.SHARED):
    return CacheLine(addr, state, [0] * 16)


class TestConstruction:
    def test_from_size(self):
        array = CacheArray.from_size(64 * 1024, 2, 64)
        assert array.n_sets == 512
        assert array.assoc == 2

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheArray(3, 2, 64)

    def test_rejects_bad_assoc(self):
        with pytest.raises(ValueError):
            CacheArray(4, 0, 64)


class TestLookupInsert:
    def test_miss_returns_none(self):
        array = CacheArray(4, 2, 64)
        assert array.lookup(0x100) is None

    def test_insert_then_hit(self):
        array = CacheArray(4, 2, 64)
        line = line_at(0x100)
        array.insert(line)
        assert array.lookup(0x100) is line

    def test_insert_replaces_same_address(self):
        array = CacheArray(4, 2, 64)
        array.insert(line_at(0x100))
        newer = line_at(0x100, State.MODIFIED)
        array.insert(newer)
        assert array.lookup(0x100) is newer
        assert array.resident_count() == 1

    def test_full_set_insert_raises(self):
        array = CacheArray(1, 2, 64)
        array.insert(line_at(0x000))
        array.insert(line_at(0x040))
        with pytest.raises(RuntimeError):
            array.insert(line_at(0x080))

    def test_force_insert_overflows(self):
        array = CacheArray(1, 2, 64)
        array.insert(line_at(0x000))
        array.insert(line_at(0x040))
        array.insert(line_at(0x080), force=True)
        assert array.resident_count() == 3

    def test_remove(self):
        array = CacheArray(4, 2, 64)
        array.insert(line_at(0x100))
        removed = array.remove(0x100)
        assert removed is not None
        assert array.lookup(0x100) is None
        assert array.remove(0x100) is None


class TestVictims:
    def test_needs_eviction(self):
        array = CacheArray(1, 2, 64)
        array.insert(line_at(0x000))
        assert not array.needs_eviction(0x040)
        array.insert(line_at(0x040))
        assert array.needs_eviction(0x080)
        assert not array.needs_eviction(0x000)  # already resident

    def test_lru_victim(self):
        array = CacheArray(1, 2, 64)
        array.insert(line_at(0x000))
        array.insert(line_at(0x040))
        array.lookup(0x000)  # touch -> 0x040 becomes LRU
        victim = array.select_victim(0x080)
        assert victim.addr == 0x040

    def test_pinned_lines_never_victims(self):
        array = CacheArray(1, 2, 64)
        pinned = line_at(0x000)
        pinned.pinned = True
        array.insert(pinned)
        other = line_at(0x040)
        array.insert(other)
        assert array.select_victim(0x080) is other

    def test_all_pinned_returns_none(self):
        array = CacheArray(1, 2, 64)
        for addr in (0x000, 0x040):
            line = line_at(addr)
            line.pinned = True
            array.insert(line)
        assert array.select_victim(0x080) is None

    def test_untouched_lookup_does_not_promote(self):
        array = CacheArray(1, 2, 64)
        array.insert(line_at(0x000))
        array.insert(line_at(0x040))
        array.lookup(0x000, touch=False)
        victim = array.select_victim(0x080)
        assert victim.addr == 0x000  # still LRU despite the peek


class TestLruModel:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=60))
    def test_matches_reference_lru(self, accesses):
        """Single-set array behaves exactly like a textbook LRU list."""
        assoc = 4
        array = CacheArray(1, assoc, 64)
        model = []  # most recent last
        for index in accesses:
            addr = index * 64
            hit = array.lookup(addr) is not None
            assert hit == (addr in model)
            if hit:
                model.remove(addr)
            else:
                if len(model) >= assoc:
                    victim = array.select_victim(addr)
                    assert victim.addr == model[0]
                    array.remove(victim.addr)
                    model.pop(0)
                array.insert(line_at(addr))
            model.append(addr)
            assert array.resident_count() == len(model)

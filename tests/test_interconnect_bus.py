"""Unit tests for the snooping address bus, using stub clients."""

import pytest

from repro.engine.simulator import Simulator
from repro.engine.stats import StatsRegistry
from repro.interconnect.bus import AddressBus, BusClient
from repro.interconnect.crossbar import Crossbar
from repro.interconnect.messages import (
    BusOp,
    BusTransaction,
    SnoopReply,
)
from repro.mem.address import AddressMap
from repro.mem.mainmemory import MainMemory


class StubClient(BusClient):
    """A scriptable bus client for protocol-free bus testing."""

    def __init__(self):
        self.snoops = []
        self.posts = []
        self.issues = []
        self.reply = SnoopReply()

    def snoop(self, txn):
        self.snoops.append(txn)
        return self.reply

    def post_snoop(self, txn, supplied, deferred):
        self.posts.append((txn, supplied, deferred))

    def on_own_issue(self, txn, supplier, shared, deferred):
        self.issues.append((txn, supplier, shared, deferred))


def make_bus(n_clients=3, **kwargs):
    sim = Simulator()
    stats = StatsRegistry()
    amap = AddressMap(64)
    memory = MainMemory(amap)
    xbar = Crossbar(sim, stats)
    deliveries = []
    bus = AddressBus(sim, stats, memory, xbar, **kwargs)
    clients = [StubClient() for _ in range(n_clients)]
    for node, client in enumerate(clients):
        bus.attach(node, client)
        xbar.attach(node, lambda msg, node=node: deliveries.append((node, msg)))
    return sim, bus, clients, memory, deliveries


class TestBroadcastOrder:
    def test_requester_not_snooped(self):
        sim, bus, clients, _, _ = make_bus()
        bus.request(BusTransaction(BusOp.GETS, 0x100, 1))
        sim.run()
        assert not clients[1].snoops
        assert len(clients[0].snoops) == 1
        assert len(clients[2].snoops) == 1

    def test_fifo_issue_order_distinct_lines(self):
        sim, bus, clients, _, _ = make_bus()
        a = BusTransaction(BusOp.GETS, 0x100, 0)
        b = BusTransaction(BusOp.GETS, 0x200, 0)
        bus.request(a)
        bus.request(b)
        sim.run()
        assert a.issue_time < b.issue_time

    def test_requester_notified(self):
        sim, bus, clients, _, _ = make_bus()
        txn = BusTransaction(BusOp.GETS, 0x100, 0)
        bus.request(txn)
        sim.run()
        assert clients[0].issues[0][0] is txn


class TestMemorySupply:
    def test_memory_supplies_when_no_owner(self):
        sim, bus, clients, memory, deliveries = make_bus()
        memory.write_word(0x100, 55)
        bus.request(BusTransaction(BusOp.GETS, 0x100, 0))
        sim.run()
        (node, msg), = deliveries
        assert node == 0
        assert msg.data[0] == 55
        assert msg.grant.value == "E"  # nobody shared -> exclusive grant

    def test_shared_grant_when_snooper_shares(self):
        sim, bus, clients, _, deliveries = make_bus()
        clients[1].reply = SnoopReply(shared=True)
        bus.request(BusTransaction(BusOp.GETS, 0x100, 0))
        sim.run()
        assert deliveries[0][1].grant.value == "S"

    def test_supplier_claim_suppresses_memory(self):
        sim, bus, clients, _, deliveries = make_bus()
        clients[1].reply = SnoopReply(supply=True)
        bus.request(BusTransaction(BusOp.GETS, 0x100, 0))
        sim.run()
        assert deliveries == []  # the stub "supplies" nothing itself

    def test_defer_suppresses_memory(self):
        sim, bus, clients, _, deliveries = make_bus()
        clients[2].reply = SnoopReply(defer=True)
        txn = BusTransaction(BusOp.LPRFO, 0x100, 0)
        bus.request(txn)
        sim.run()
        assert deliveries == []
        assert clients[0].issues[0][3] is True  # deferred flag

    def test_two_suppliers_is_an_error(self):
        sim, bus, clients, _, _ = make_bus()
        clients[1].reply = SnoopReply(supply=True)
        clients[2].reply = SnoopReply(supply=True)
        bus.request(BusTransaction(BusOp.GETS, 0x100, 0))
        with pytest.raises(RuntimeError):
            sim.run()


class TestLineBlocking:
    def test_same_line_requests_serialize(self):
        sim, bus, clients, _, deliveries = make_bus()
        a = BusTransaction(BusOp.GETS, 0x100, 0)
        b = BusTransaction(BusOp.GETS, 0x100, 1)
        bus.request(a)
        bus.request(b)
        sim.run()
        # b must wait until a's fill completes; a's requester never calls
        # transaction_complete here, so b never issues.
        assert a.issue_time is not None
        assert b.issue_time is None
        bus.transaction_complete(a)
        sim.run()
        assert b.issue_time is not None

    def test_deferred_response_unblocks_line(self):
        sim, bus, clients, _, _ = make_bus()
        clients[2].reply = SnoopReply(defer=True)
        a = BusTransaction(BusOp.LPRFO, 0x100, 0)
        b = BusTransaction(BusOp.LPRFO, 0x100, 1)
        bus.request(a)
        bus.request(b)
        sim.run()
        # The deferral released the block: b broadcast without waiting
        # for a's (delayed) data — this is how the queue forms.
        assert b.issue_time is not None

    def test_writeback_ignores_blocking(self):
        sim, bus, clients, _, _ = make_bus()
        a = BusTransaction(BusOp.GETS, 0x100, 0)
        wb = BusTransaction(BusOp.WRITEBACK, 0x100, 1)
        wb.data = [7] * 16
        bus.request(a)
        bus.request(wb)
        sim.run()
        assert wb.issue_time is not None


class TestCancellation:
    def test_cancelled_before_issue_is_dropped(self):
        sim, bus, clients, _, _ = make_bus()
        blocker = BusTransaction(BusOp.GETS, 0x100, 0)
        parked = BusTransaction(BusOp.GETS, 0x100, 1)
        bus.request(blocker)
        bus.request(parked)
        sim.run()
        parked.cancelled = True
        bus.transaction_complete(blocker)
        sim.run()
        assert parked.issue_time is None

    def test_cancelled_in_flight_never_snooped(self):
        sim, bus, clients, _, deliveries = make_bus(addr_latency=12)
        txn = BusTransaction(BusOp.UPGRADE, 0x100, 0)
        bus.request(txn)
        # cancel after issue but before resolve
        sim.schedule(5, lambda: setattr(txn, "cancelled", True))
        sim.run()
        assert clients[1].snoops == []
        assert bus.stats.value("bus.cancelled_in_flight") == 1


class TestRetry:
    def test_retry_reissues(self):
        sim, bus, clients, _, _ = make_bus()
        replies = iter([SnoopReply(retry=True), SnoopReply()])
        original_snoop = clients[1].snoop

        def scripted(txn):
            clients[1].snoops.append(txn)
            return next(replies)

        clients[1].snoop = scripted
        txn = BusTransaction(BusOp.GETX, 0x100, 0)
        bus.request(txn)
        sim.run()
        assert txn.retries == 1
        assert len(clients[1].snoops) == 2  # snooped twice

    def test_supply_wins_over_retry(self):
        sim, bus, clients, _, _ = make_bus()
        clients[1].reply = SnoopReply(supply=True)
        clients[2].reply = SnoopReply(retry=True)
        txn = BusTransaction(BusOp.GETX, 0x100, 0)
        bus.request(txn)
        sim.run()
        assert txn.retries == 0
        assert clients[0].issues[0][1] == 1  # supplier node

    def test_post_snoop_runs_for_rfos(self):
        sim, bus, clients, _, _ = make_bus()
        clients[1].reply = SnoopReply(supply=True)
        bus.request(BusTransaction(BusOp.GETX, 0x100, 0))
        bus.request(BusTransaction(BusOp.GETS, 0x200, 0))
        sim.run()
        kinds = [t.op for t, _, _ in clients[2].posts]
        assert BusOp.GETX in kinds
        assert BusOp.GETS not in kinds  # second phase only for RFOs


class TestWriteback:
    def test_writeback_updates_memory(self):
        sim, bus, clients, memory, _ = make_bus()
        txn = BusTransaction(BusOp.WRITEBACK, 0x100, 0)
        txn.data = [9] * 16
        bus.request(txn)
        sim.run()
        assert memory.read_word(0x100) == 9

    def test_writeback_without_data_is_an_error(self):
        sim, bus, clients, _, _ = make_bus()
        bus.request(BusTransaction(BusOp.WRITEBACK, 0x100, 0))
        with pytest.raises(RuntimeError):
            sim.run()


class TestOutstandingLimit:
    def test_limit_stalls_issue(self):
        sim, bus, clients, _, _ = make_bus(max_outstanding=1)
        a = BusTransaction(BusOp.GETS, 0x100, 0)
        b = BusTransaction(BusOp.GETS, 0x200, 1)
        bus.request(a)
        bus.request(b)
        sim.run()
        assert a.issue_time is not None
        assert b.issue_time is None
        bus.transaction_complete(a)
        sim.run()
        assert b.issue_time is not None

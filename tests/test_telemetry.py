"""Tests for the unified telemetry subsystem.

Covers the tracer hook contracts (time-ordered, complete, deterministic
event streams from the controller and bus surfaces), the sinks (ring
buffer, JSONL, Chrome trace), run manifests, metrics export, and the
mini JSON-Schema validator that CI uses on emitted artifacts.
"""

import json
import pathlib

import pytest

from repro.cpu.ops import LL, SC, Compute, Read, Write
from repro.harness.config import SystemConfig
from repro.harness.experiment import run_app, run_workload
from repro.harness.system import System
from repro.harness.traces import figure4_scenario
from repro.sync.tts import TTSLock
from repro.telemetry import (
    ChromeTraceSink,
    JsonlSink,
    RingBufferSink,
    RunManifest,
    SchemaError,
    TelemetryEvent,
    TraceDispatcher,
    category_of,
    metrics_payload,
    replay,
    stable_hash,
    summary_payload,
    validate,
    validate_file,
    write_metrics,
    write_metrics_archive,
)
from repro.workloads.splash import make_app

SCHEMA_DIR = pathlib.Path(__file__).parent / "schemas"


def _contended_system(n_processors=4, increments=6):
    """A small contended-lock workload on IQOLB with telemetry attached."""
    dispatcher = TraceDispatcher()
    ring = dispatcher.attach(RingBufferSink())
    system = System(SystemConfig(n_processors=n_processors, policy="iqolb"))
    system.attach_telemetry(dispatcher)
    lock = TTSLock(system.layout.alloc_line())
    counter = system.layout.alloc_line()

    def worker():
        for _ in range(increments):
            yield from lock.acquire()
            value = yield Read(counter)
            yield Compute(20)
            yield Write(counter, value + 1)
            yield from lock.release()
            yield Compute(10)

    for node in range(n_processors):
        system.load_program(node, worker())
    system.run()
    return system, dispatcher, ring


class TestEventModel:
    def test_categories(self):
        assert category_of("ll") == "llsc"
        assert category_of("defer") == "deferral"
        assert category_of("tearoff") == "tearoff"
        assert category_of("handoff") == "handoff"
        assert category_of("release") == "lock"
        assert category_of("predict") == "predictor"
        assert category_of("bus:GetX") == "bus"
        assert category_of("fill") == "coherence"

    def test_event_derives_category(self):
        event = TelemetryEvent(time=5, node=1, kind="sc", line_addr=64, info={})
        assert event.category == "llsc"

    def test_json_shape(self):
        event = TelemetryEvent(10, 2, "defer", 128, {"requester": 3})
        obj = event.to_json_obj()
        assert obj == {
            "ts": 10,
            "node": 2,
            "kind": "defer",
            "cat": "deferral",
            "line": 128,
            "info": {"requester": 3},
        }
        json.dumps(obj)  # must be JSON-encodable


class TestHookContracts:
    """Satellite: the controller/bus instrumentation surface contracts."""

    def test_stream_is_time_ordered(self):
        _, _, ring = _contended_system()
        times = [event.time for event in ring.events]
        assert times == sorted(times)
        assert len(times) > 0

    def test_every_bus_transaction_is_observed(self):
        system, _, ring = _contended_system()
        observed = sum(1 for e in ring.events if e.category == "bus")
        assert observed == system.stats.value("bus.transactions")

    def test_bus_events_carry_resolution(self):
        _, _, ring = _contended_system()
        bus_events = [e for e in ring.events if e.category == "bus"]
        for event in bus_events:
            assert {"txn_id", "supplier", "shared", "deferred"} <= set(
                event.info
            )

    def test_deterministic_across_same_seed_runs(self):
        _, _, ring_a = _contended_system()
        _, _, ring_b = _contended_system()
        a = [(e.time, e.node, e.kind, e.line_addr) for e in ring_a.events]
        b = [(e.time, e.node, e.kind, e.line_addr) for e in ring_b.events]
        assert a == b

    def test_iqolb_stream_contains_protocol_events(self):
        _, _, ring = _contended_system()
        kinds = {event.kind for event in ring.events}
        assert "defer" in kinds
        assert "handoff" in kinds
        assert "predict" in kinds

    def test_dispatcher_counts_events(self):
        _, dispatcher, ring = _contended_system()
        assert dispatcher.events_dispatched == len(ring.events)

    def test_detached_sink_stops_receiving(self):
        dispatcher = TraceDispatcher()
        ring = dispatcher.attach(RingBufferSink())
        dispatcher.controller_hook("ll", 1, 0, 64, {})
        dispatcher.detach(ring)
        dispatcher.controller_hook("sc", 2, 0, 64, {})
        assert [e.kind for e in ring.events] == ["ll"]


class TestRingBufferSink:
    def test_bounded(self):
        ring = RingBufferSink(capacity=3)
        for t in range(5):
            ring.emit(TelemetryEvent(t, 0, "ll", 64, {}))
        assert len(ring) == 3
        assert ring.dropped == 2
        assert [e.time for e in ring.events] == [2, 3, 4]


class TestJsonlSink(object):
    def test_writes_schema_valid_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit(TelemetryEvent(1, 0, "defer", 64, {"requester": 1}))
        sink.emit(TelemetryEvent(2, 1, "bus:GetS", 64, {"txn_id": 0}))
        sink.close()
        records = validate_file(path, SCHEMA_DIR / "trace_jsonl.schema.json")
        assert records == 2
        assert sink.events_written == 2


class TestChromeTraceSink:
    def _trace_fig4(self, tmp_path):
        path = tmp_path / "fig4.trace.json"
        sink = ChromeTraceSink(path)
        result = figure4_scenario(3, 3, sinks=[sink])
        sink.close()
        return path, result

    def test_document_is_schema_valid(self, tmp_path):
        path, _ = self._trace_fig4(tmp_path)
        validate_file(path, SCHEMA_DIR / "chrome_trace.schema.json")

    def test_per_node_tracks_with_protocol_events(self, tmp_path):
        path, _ = self._trace_fig4(tmp_path)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        track_names = {
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        }
        assert {"P0", "P1", "P2", "bus"} <= track_names
        kinds = {e["name"] for e in events}
        assert {"tearoff", "handoff", "defer"} <= kinds

    def test_deferral_windows_become_slices(self, tmp_path):
        path, _ = self._trace_fig4(tmp_path)
        doc = json.loads(path.read_text())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices, "expected at least one deferral slice"
        for event in slices:
            assert event["dur"] >= 1
            assert event["args"]["resolved_by"] in (
                "handoff",
                "timeout",
                "queue_breakdown",
            )

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "t.json"
        sink = ChromeTraceSink(path)
        sink.emit(TelemetryEvent(1, 0, "ll", 64, {}))
        sink.close()
        first = path.read_text()
        sink.close()
        assert path.read_text() == first

    def test_replay_from_recorder(self, tmp_path):
        result = figure4_scenario(3, 2)
        sink = replay(
            result.recorder.events, ChromeTraceSink(tmp_path / "replay.json")
        )
        doc = json.loads((tmp_path / "replay.json").read_text())
        assert len(doc["traceEvents"]) > len(result.recorder.events)
        assert sink is not None


class TestRunManifest:
    def test_run_workload_populates_manifest(self):
        result = run_app("barnes", "iqolb", 4)
        manifest = result.manifest
        assert manifest is not None
        assert manifest.cache_hit is False
        assert manifest.events_fired > 0
        assert manifest.queue_high_water > 0
        assert manifest.wall_time_s > 0
        assert manifest.events_per_host_s > 0
        assert len(manifest.config_hash) == 64
        assert manifest.host.get("python")

    def test_config_hash_tracks_config(self):
        a = run_app("barnes", "iqolb", 2).manifest
        b = run_app("barnes", "iqolb", 4).manifest
        assert a.config_hash != b.config_hash

    def test_seed_extracted_from_app_model(self):
        app = make_app("barnes", lock_kind="tts")
        config = SystemConfig(n_processors=2, policy="iqolb")
        result = run_workload(app, config, primitive="iqolb", verify=False)
        assert result.manifest.seed == app.model.seed

    def test_round_trip(self):
        manifest = RunManifest.collect(
            config={"x": 1}, version="1.1.0", seed=7, wall_time_s=0.5,
            events_fired=100, queue_high_water=8,
        )
        again = RunManifest.from_dict(manifest.to_dict())
        assert again == manifest
        assert RunManifest.from_dict(None) is None

    def test_from_dict_ignores_unknown_keys(self):
        data = RunManifest.collect({}, "1.0").to_dict()
        data["future_field"] = "ignored"
        assert RunManifest.from_dict(data) is not None

    def test_stable_hash_is_order_insensitive(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})


class TestMetricsExport:
    def test_payload_from_results(self, tmp_path):
        results = [run_app("barnes", "iqolb", 2)]
        path = tmp_path / "metrics.json"
        payload = write_metrics(path, results)
        assert payload["schema"] == "repro-metrics/1"
        validate_file(path, SCHEMA_DIR / "metrics.schema.json")
        (cell,) = payload["cells"]
        assert cell["manifest"]["events_fired"] > 0
        assert cell["counters"]["bus.transactions"] > 0

    def test_payload_includes_handoff_percentiles(self):
        result = run_app("barnes", "iqolb", 8)
        payload = metrics_payload([result])
        digest = payload["cells"][0]["histograms"]["handoff.defer_cycles"]
        assert digest["count"] > 0
        assert digest["p50"] is not None
        assert digest["p50"] <= digest["p90"] <= digest["p99"]

    def test_archive_writes_summary_plus_gz(self, tmp_path):
        import gzip
        import json

        results = [run_app("barnes", "iqolb", 2)]
        base = tmp_path / "BENCH_x.json"
        full = write_metrics_archive(base, results)

        gz = tmp_path / "BENCH_x.json.gz"
        summary_path = tmp_path / "BENCH_x.summary.json"
        # The gzip round-trips the full payload and validates as a
        # plain metrics document (validate_file is gz-transparent).
        assert json.loads(gzip.decompress(gz.read_bytes())) == json.loads(
            json.dumps(full)
        )
        validate_file(gz, SCHEMA_DIR / "metrics.schema.json")
        validate_file(summary_path, SCHEMA_DIR / "metrics_summary.schema.json")

        summary = json.loads(summary_path.read_text())
        (cell,) = summary["cells"]
        assert cell["cycles"] == full["cells"][0]["cycles"]
        assert cell["config_hash"] == full["cells"][0]["manifest"]["config_hash"]
        assert "counters" not in cell and "histograms" not in cell

        # Identical content must produce a byte-identical archive
        # (mtime pinned), so regeneration never dirties the tree.
        first = gz.read_bytes()
        write_metrics_archive(base, results)
        assert gz.read_bytes() == first

    def test_summary_payload_counts_bodies(self):
        result = run_app("barnes", "iqolb", 2)
        full = metrics_payload([result])
        summary = summary_payload(full)
        assert summary["schema"] == "repro-metrics-summary/1"
        cell = summary["cells"][0]
        assert cell["n_counters"] == len(full["cells"][0]["counters"])
        assert cell["n_histograms"] == len(full["cells"][0]["histograms"])
        # Throughput provenance survives the digest: the perf-smoke CI
        # gate compares events/host-second straight from the summary.
        manifest = full["cells"][0]["manifest"]
        assert cell["events_fired"] == manifest["events_fired"]
        assert cell["events_per_host_s"] == manifest["events_per_host_s"]


class TestSchemaValidator:
    def test_type_and_required(self):
        schema = {
            "type": "object",
            "required": ["a"],
            "properties": {"a": {"type": "integer"}},
        }
        validate({"a": 1}, schema)
        with pytest.raises(SchemaError):
            validate({}, schema)
        with pytest.raises(SchemaError):
            validate({"a": "no"}, schema)

    def test_bool_is_not_an_integer(self):
        with pytest.raises(SchemaError):
            validate(True, {"type": "integer"})

    def test_enum_const_minimum(self):
        with pytest.raises(SchemaError):
            validate("x", {"enum": ["a", "b"]})
        with pytest.raises(SchemaError):
            validate(2, {"const": 1})
        with pytest.raises(SchemaError):
            validate(-1, {"type": "integer", "minimum": 0})

    def test_additional_properties_false(self):
        schema = {
            "type": "object",
            "properties": {"a": {}},
            "additionalProperties": False,
        }
        validate({"a": 1}, schema)
        with pytest.raises(SchemaError):
            validate({"b": 1}, schema)

    def test_local_ref(self):
        schema = {
            "type": "array",
            "items": {"$ref": "#/$defs/item"},
            "$defs": {"item": {"type": "integer"}},
        }
        validate([1, 2], schema)
        with pytest.raises(SchemaError):
            validate(["x"], schema)

    def test_jsonl_file_rejects_bad_record(self, tmp_path):
        schema_path = tmp_path / "s.json"
        schema_path.write_text(json.dumps({"type": "object"}))
        data = tmp_path / "d.jsonl"
        data.write_text('{"ok": 1}\n[]\n')
        with pytest.raises(SchemaError):
            validate_file(data, schema_path)

    def test_jsonl_file_rejects_empty(self, tmp_path):
        schema_path = tmp_path / "s.json"
        schema_path.write_text(json.dumps({"type": "object"}))
        data = tmp_path / "d.jsonl"
        data.write_text("")
        with pytest.raises(SchemaError):
            validate_file(data, schema_path)


class TestOverhead:
    def test_untraced_run_attaches_no_hooks(self):
        system = System(SystemConfig(n_processors=2))
        assert all(c.tracer is None for c in system.controllers)
        assert system.bus.observer is None

    def test_attach_then_detach(self):
        system = System(SystemConfig(n_processors=2))
        dispatcher = TraceDispatcher()
        dispatcher.attach(RingBufferSink())
        system.attach_telemetry(dispatcher)
        assert system.bus.observer is not None
        system.attach_telemetry(None)
        assert system.bus.observer is None
        assert all(c.tracer is None for c in system.controllers)

    def test_sinkless_dispatcher_is_preresolved_noop(self):
        # With no sinks attached the emitters' hooks stay None — dispatch
        # is pre-resolved away, not checked per event — and snap live the
        # moment a sink attaches (and back when it detaches).
        system = System(SystemConfig(n_processors=2))
        dispatcher = TraceDispatcher()
        system.attach_telemetry(dispatcher)
        assert system.bus.observer is None
        assert all(c.tracer is None for c in system.controllers)
        sink = dispatcher.attach(RingBufferSink())
        assert system.bus.observer is not None
        assert all(c.tracer is not None for c in system.controllers)
        dispatcher.detach(sink)
        assert system.bus.observer is None
        assert all(c.tracer is None for c in system.controllers)

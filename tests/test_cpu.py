"""Unit tests for the ISA ops, threads and the in-order processor."""

import pytest

from repro.cpu.ops import LL, SC, Compute, DeQOLB, EnQOLB, Fence, Read, Swap, Write
from repro.cpu.processor import Processor
from repro.cpu.thread import SimThread
from repro.engine.simulator import Simulator
from repro.engine.stats import StatsRegistry


class TestOps:
    def test_kinds(self):
        assert Read(0).kind == "read"
        assert Write(0, 1).kind == "write"
        assert LL(0).kind == "ll"
        assert SC(0, 1).kind == "sc"
        assert Swap(0, 1).kind == "swap"
        assert EnQOLB(0).kind == "enqolb"
        assert DeQOLB(0).kind == "deqolb"
        assert Compute(5).kind == "compute"
        assert Fence().kind == "fence"

    def test_memory_flag(self):
        assert Read(0).is_memory
        assert not Compute(1).is_memory
        assert not Fence().is_memory

    def test_compute_cycles(self):
        assert Compute(9).cycles == 9
        with pytest.raises(ValueError):
            Compute(-1)

    def test_pc_defaults_zero(self):
        assert LL(0x40).pc == 0
        assert LL(0x40, pc=7).pc == 7


class TestSimThread:
    def test_advance_drives_generator(self):
        def program():
            value = yield Read(0x40)
            assert value == 99
            yield Write(0x40, value + 1)

        thread = SimThread(0, program())
        op1 = thread.advance(None)
        assert op1.kind == "read"
        op2 = thread.advance(99)
        assert op2.kind == "write" and op2.value == 100
        assert thread.advance(None) is None
        assert thread.done
        assert thread.ops_executed == 2


class StubController:
    """Completes every memory op after a fixed delay with a canned value."""

    def __init__(self, sim, latency=3, value=42):
        self.sim = sim
        self.latency = latency
        self.value = value
        self.ops = []

    def cpu_request(self, op, done):
        self.ops.append((self.sim.now, op))
        self.sim.schedule(self.latency, done, self.value)


def make_processor(latency=3):
    sim = Simulator()
    stats = StatsRegistry()
    cpu = Processor(0, sim, stats, issue_overhead=1)
    cpu.controller = StubController(sim, latency=latency)
    return sim, cpu


class TestProcessor:
    def test_compute_advances_time(self):
        sim, cpu = make_processor()

        def program():
            yield Compute(10)
            yield Compute(5)

        cpu.bind(SimThread(0, program()))
        cpu.start()
        sim.run()
        # 2 ops x (1 issue overhead) + 15 compute cycles
        assert sim.now == 17

    def test_memory_ops_round_trip_values(self):
        sim, cpu = make_processor()
        seen = []

        def program():
            value = yield Read(0x40)
            seen.append(value)

        cpu.bind(SimThread(0, program()))
        cpu.start()
        sim.run()
        assert seen == [42]

    def test_fence_costs_only_issue(self):
        sim, cpu = make_processor()

        def program():
            yield Fence()

        cpu.bind(SimThread(0, program()))
        cpu.start()
        sim.run()
        assert sim.now == 1

    def test_done_callback(self):
        sim, cpu = make_processor()
        finished = []
        cpu.on_thread_done = finished.append

        def program():
            yield Compute(1)

        thread = SimThread(7, program())
        cpu.bind(thread)
        cpu.start()
        sim.run()
        assert finished == [thread]
        assert thread.finish_time == sim.now

    def test_in_order_blocking(self):
        sim, cpu = make_processor(latency=10)

        def program():
            yield Read(0x40)
            yield Read(0x80)

        cpu.bind(SimThread(0, program()))
        cpu.start()
        sim.run()
        times = [t for t, _ in cpu.controller.ops]
        assert times[1] - times[0] >= 10  # second op waits for the first

    def test_start_without_thread_raises(self):
        sim, cpu = make_processor()
        with pytest.raises(RuntimeError):
            cpu.start()

"""Cross-primitive lock conformance suite.

Registry-parameterized: every primitive in
:data:`repro.core.registry.PRIMITIVE_SPECS` is swept over both
coherence fabrics, so registering a primitive (the qcore compositions,
reciprocating, fissile, or anything later) buys it this contract
automatically:

* **mutual exclusion** — an in-process :class:`CsMonitor` raises the
  instant two threads overlap in the critical section, and a token word
  catches lost updates at the end;
* **release hand-off** — back-to-back acquire/release pairs with zero
  think time hand the lock off exactly once per release (entry count ==
  release count, no duplicate or lost wake-up);
* **FIFO where claimed** — primitives whose spec claims FIFO grant in
  arrival order under well-separated arrivals; non-FIFO primitives
  (reciprocating's palindromic admission, fissile's bounded barging)
  are exempt by their spec, not by a hand-kept list;
* **starvation freedom under bounded schedules** — Hypothesis drives
  randomized think times and staggered arrivals; every thread must
  finish its fixed quota of acquires (the suite's pinned profile keeps
  the example budget small enough for CI).
"""

import pytest
from hypothesis import given, strategies as st

from conftest import build_system, prop_settings, run_programs
from repro.check.oracles import CsMonitor
from repro.core.registry import PRIMITIVE_SPECS
from repro.cpu.ops import Compute, Read, Write
from repro.workloads.base import LOCK_ADAPTERS, LockSet

PRIMITIVE_NAMES = list(PRIMITIVE_SPECS)

FIFO_PRIMITIVES = [
    name for name, spec in PRIMITIVE_SPECS.items() if spec.fifo
]


def test_registry_covers_every_lock_kind():
    """Loud coverage guard: a primitive registered with a lock kind the
    workloads cannot build must fail here, not vanish from the sweep."""
    missing = {
        spec.lock_kind for spec in PRIMITIVE_SPECS.values()
    } - set(LOCK_ADAPTERS)
    assert not missing, (
        f"registered primitives with no LockSet adapter: {missing}"
    )


def _contended_run(
    primitive,
    interconnect,
    n_threads,
    acquires,
    think_cycles,
    staggers=None,
):
    """Run ``n_threads`` contending on one lock; returns the monitor and
    the final token value (expected ``n_threads * acquires``)."""
    spec = PRIMITIVE_SPECS[primitive]
    system = build_system(
        n_threads, spec.policy, interconnect=interconnect
    )
    lockset = LockSet(spec.lock_kind, system, 1, n_threads)
    token = system.layout.alloc_line()
    monitor = CsMonitor()

    def worker(tid):
        if staggers is not None:
            yield Compute(staggers[tid])
        for _ in range(acquires):
            yield from lockset.acquire(0, tid)
            monitor.enter(tid)
            value = yield Read(token)
            yield Write(token, value + 1)
            monitor.exit(tid)
            yield from lockset.release(0, tid)
            yield Compute(think_cycles)

    run_programs(system, [worker(t) for t in range(n_threads)])
    return monitor, system.read_word(token)


@pytest.mark.parametrize("primitive", PRIMITIVE_NAMES)
class TestConformance:
    def test_mutual_exclusion(self, primitive, interconnect):
        n, acquires = 4, 3
        monitor, token = _contended_run(
            primitive, interconnect, n, acquires, think_cycles=25
        )
        assert token == n * acquires
        assert monitor.entries == n * acquires
        assert not monitor.inside

    def test_release_handoff_exactly_once(self, primitive, interconnect):
        """Zero think time: every release immediately feeds the next
        waiter; a dropped or doubled hand-off shows up as a hung run,
        a short entry count, or a monitor overlap."""
        n, acquires = 3, 4
        monitor, token = _contended_run(
            primitive, interconnect, n, acquires, think_cycles=0
        )
        assert token == n * acquires
        assert monitor.entries == n * acquires


@pytest.mark.parametrize("primitive", FIFO_PRIMITIVES)
def test_fifo_grant_order_where_claimed(primitive, interconnect):
    """Primitives whose spec claims FIFO must grant in arrival order
    when arrivals are separated far beyond any fabric reordering."""
    spec = PRIMITIVE_SPECS[primitive]
    n = 3
    system = build_system(n, spec.policy, interconnect=interconnect)
    lockset = LockSet(spec.lock_kind, system, 1, n)
    granted = []

    def worker(tid):
        yield Compute(1 + tid * 600)
        yield from lockset.acquire(0, tid)
        granted.append(tid)
        yield Compute(2200)  # hold long enough that all others queue
        yield from lockset.release(0, tid)

    run_programs(system, [worker(t) for t in range(n)])
    assert granted == list(range(n)), (
        f"{primitive} claims FIFO but granted {granted}"
    )


@pytest.mark.parametrize("primitive", PRIMITIVE_NAMES)
class TestStarvationFreedom:
    @prop_settings
    @given(
        think=st.integers(min_value=0, max_value=120),
        staggers=st.lists(
            st.integers(min_value=0, max_value=300),
            min_size=3,
            max_size=3,
        ),
    )
    def test_bounded_schedules_all_threads_finish(
        self, primitive, interconnect, think, staggers
    ):
        """Under randomized bounded schedules every thread completes its
        quota — a starved waiter would stall the run at ``max_cycles``
        and fail the token count."""
        n, acquires = 3, 2
        monitor, token = _contended_run(
            primitive,
            interconnect,
            n,
            acquires,
            think_cycles=think,
            staggers=staggers,
        )
        assert token == n * acquires
        assert monitor.entries == n * acquires

"""Unit tests for the simulation kernel."""

import pytest

from repro.engine.simulator import SimulationError, Simulator


class TestScheduling:
    def test_schedule_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, "a")
        sim.schedule(5, fired.append, "b")
        sim.run()
        assert fired == ["b", "a"]
        assert sim.now == 10

    def test_zero_delay_fires_same_cycle(self):
        sim = Simulator()
        fired = []
        sim.schedule(0, fired.append, 1)
        sim.run()
        assert fired == [1]
        assert sim.now == 0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        sim.schedule_at(42, lambda: None)
        sim.run()
        assert sim.now == 42

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(7, inner)

        def inner():
            fired.append(("inner", sim.now))

        sim.schedule(3, outer)
        sim.run()
        assert fired == [("outer", 3), ("inner", 10)]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(5, fired.append, 1)
        sim.cancel(event)
        sim.run()
        assert fired == []


class TestRun:
    def test_until_stops_early(self):
        sim = Simulator()
        fired = []
        for t in (1, 2, 3, 4):
            sim.schedule(t, fired.append, t)
        sim.run(until=lambda: len(fired) >= 2)
        assert fired == [1, 2]
        assert sim.pending_events == 2

    def test_max_cycles_guard(self):
        sim = Simulator(max_cycles=100)

        def reschedule():
            sim.schedule(10, reschedule)

        sim.schedule(10, reschedule)
        with pytest.raises(SimulationError):
            sim.run()

    def test_step(self):
        sim = Simulator()
        fired = []
        sim.schedule(1, fired.append, "x")
        assert sim.step() is True
        assert fired == ["x"]
        assert sim.step() is False

    def test_events_fired_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule(t, lambda: None)
        sim.run()
        assert sim.events_fired == 5

    def test_determinism(self):
        def build_and_run():
            sim = Simulator()
            trace = []
            for t in (3, 1, 1, 2):
                sim.schedule(t, lambda t=t: trace.append((sim.now, t)))
            sim.run()
            return trace

        assert build_and_run() == build_and_run()


class TestTieBreaker:
    def test_tie_breaker_permutes_same_cycle_order(self):
        sim = Simulator()
        fired = []
        for tag in ("a", "b", "c"):
            sim.schedule(5, fired.append, tag)
        sim.tie_breaker = lambda ties: len(ties) - 1  # always last
        sim.run()
        assert sorted(fired) == ["a", "b", "c"]
        assert fired == ["c", "b", "a"]

    def test_tie_breaker_not_consulted_without_ties(self):
        sim = Simulator()
        calls = []
        sim.tie_breaker = lambda ties: calls.append(len(ties)) or 0
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        sim.run()
        assert calls == []  # singletons pop normally

    def test_default_choice_matches_no_hook(self):
        def run(hook):
            sim = Simulator()
            fired = []
            for t, tag in ((3, "x"), (3, "y"), (7, "z")):
                sim.schedule(t, fired.append, tag)
            if hook:
                sim.tie_breaker = lambda ties: 0
            sim.run()
            return fired

        assert run(hook=False) == run(hook=True)

    def test_on_step_fires_per_event(self):
        sim = Simulator()
        steps = []
        sim.on_step = lambda: steps.append(sim.now)
        for t in (1, 4, 9):
            sim.schedule(t, lambda: None)
        sim.run()
        assert steps == [1, 4, 9]


class TestRunawayDiagnostics:
    def _runaway(self, sim):
        def reschedule():
            sim.schedule(10, reschedule)

        sim.schedule(10, reschedule)
        with pytest.raises(SimulationError) as excinfo:
            sim.run()
        return str(excinfo.value)

    def test_error_includes_queue_summary(self):
        message = self._runaway(Simulator(max_cycles=100))
        assert "pending event(s)" in message
        assert "reschedule" in message  # the stuck callback, by name

    def test_diagnostic_providers_appended(self):
        sim = Simulator(max_cycles=100)
        sim.diagnostic_providers.append(lambda: "P0: wedged on 0x40")
        message = self._runaway(sim)
        assert "P0: wedged on 0x40" in message

    def test_failing_provider_does_not_mask_error(self):
        sim = Simulator(max_cycles=100)

        def broken():
            raise RuntimeError("boom")

        sim.diagnostic_providers.append(broken)
        message = self._runaway(sim)
        assert "max_cycles=100" in message
        assert "diagnostic provider failed" in message

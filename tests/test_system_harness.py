"""Tests for the system builder, config and memory layout."""

import pytest

from repro import System, SystemConfig
from repro.cpu.ops import Read, Write
from repro.harness.config import table1_rows
from repro.harness.layout import MemoryLayout
from repro.mem.address import AddressMap


class TestSystemConfig:
    def test_defaults_match_table1(self):
        config = SystemConfig()
        assert config.n_processors == 32
        assert config.line_bytes == 64
        assert config.bus_max_outstanding == 117

    def test_with_override(self):
        config = SystemConfig().with_(n_processors=4, policy="iqolb")
        assert config.n_processors == 4
        assert config.policy == "iqolb"
        assert SystemConfig().n_processors == 32  # original untouched

    def test_policy_kwargs_only_for_deferral_schemes(self):
        assert SystemConfig(policy="baseline", timeout_cycles=99).policy_kwargs() == {}
        assert SystemConfig(policy="iqolb", timeout_cycles=99).policy_kwargs() == {
            "timeout_cycles": 99
        }

    def test_table1_rows_reflect_config(self):
        rows = table1_rows(SystemConfig(l2_size_bytes=1024 * 1024))
        text = " ".join(str(cell) for row in rows for cell in row)
        assert "1024-KB" in text


class TestSystemBuilder:
    def test_builds_requested_processor_count(self):
        system = System(SystemConfig(n_processors=5))
        assert len(system.processors) == 5
        assert len(system.controllers) == 5

    def test_each_controller_gets_own_policy(self):
        system = System(SystemConfig(n_processors=3, policy="iqolb"))
        policies = {id(c.policy) for c in system.controllers}
        assert len(policies) == 3

    def test_run_without_programs_raises(self):
        system = System(SystemConfig(n_processors=1))
        with pytest.raises(RuntimeError):
            system.run()

    def test_double_load_rejected(self):
        system = System(SystemConfig(n_processors=1))
        system.load_program(0, iter([]))
        with pytest.raises(ValueError):
            system.load_program(0, iter([]))

    def test_partial_load_runs_loaded_only(self):
        system = System(SystemConfig(n_processors=4))
        addr = system.layout.alloc_line()

        def program():
            yield Write(addr, 1)

        system.load_program(2, program())
        system.run()
        assert system.read_word(addr) == 1

    def test_read_word_sees_dirty_cache_data(self):
        system = System(SystemConfig(n_processors=1))
        addr = system.layout.alloc_line()

        def program():
            yield Write(addr, 123)

        system.load_program(0, program())
        system.run()
        assert system.memory.read_word(addr) == 0  # still dirty in cache
        assert system.read_word(addr) == 123

    def test_write_word_initialises_memory(self):
        system = System(SystemConfig(n_processors=1))
        addr = system.layout.alloc_line()
        system.write_word(addr, 7)
        seen = []

        def program():
            seen.append((yield Read(addr)))

        system.load_program(0, program())
        system.run()
        assert seen == [7]

    def test_totals_aggregate_across_nodes(self):
        system = System(SystemConfig(n_processors=2))
        a = system.layout.alloc_line()
        b = system.layout.alloc_line()

        def program(addr):
            yield Read(addr)

        system.load_program(0, program(a))
        system.load_program(1, program(b))
        system.run()
        assert system.total("misses") == 2


class TestMemoryLayout:
    def make(self):
        return MemoryLayout(AddressMap(64), base=0x10000)

    def test_alloc_word_packs(self):
        layout = self.make()
        a = layout.alloc_word()
        b = layout.alloc_word()
        assert b == a + 4

    def test_alloc_line_is_aligned_and_exclusive(self):
        layout = self.make()
        layout.alloc_word()
        line = layout.alloc_line()
        assert line % 64 == 0
        next_one = layout.alloc_line()
        assert next_one == line + 64

    def test_words_in_line_share_a_line(self):
        layout = self.make()
        words = layout.alloc_words_in_line(4)
        amap = AddressMap(64)
        assert len({amap.line_addr(w) for w in words}) == 1

    def test_words_in_line_capacity_check(self):
        layout = self.make()
        with pytest.raises(ValueError):
            layout.alloc_words_in_line(17)

    def test_alloc_lines_do_not_false_share(self):
        layout = self.make()
        amap = AddressMap(64)
        addrs = layout.alloc_lines(5)
        assert len({amap.line_addr(a) for a in addrs}) == 5

    def test_alloc_array_dense(self):
        layout = self.make()
        arr = layout.alloc_array(6)
        assert [b - a for a, b in zip(arr, arr[1:])] == [4] * 5

    def test_unaligned_base_rejected(self):
        with pytest.raises(ValueError):
            MemoryLayout(AddressMap(64), base=0x10004)

"""Tests for the fairness measurement module."""

import pytest

from repro.harness.fairness import (
    Acquisition,
    count_fifo_inversions,
    jain_index,
    measure_lock_fairness,
)


class TestMetrics:
    def test_fifo_order_has_no_inversions(self):
        acqs = [
            Acquisition(0, arrival=0, grant=10),
            Acquisition(1, arrival=5, grant=20),
            Acquisition(2, arrival=8, grant=30),
        ]
        assert count_fifo_inversions(acqs) == 0

    def test_inversion_counted(self):
        acqs = [
            Acquisition(0, arrival=0, grant=30),   # waited longest, granted last
            Acquisition(1, arrival=5, grant=10),   # overtook 0
            Acquisition(2, arrival=8, grant=20),   # overtook 0
        ]
        assert count_fifo_inversions(acqs) == 2

    def test_jain_index_perfectly_fair(self):
        assert jain_index({0: 100, 1: 100, 2: 100}) == pytest.approx(1.0)

    def test_jain_index_unfair(self):
        skewed = jain_index({0: 1000, 1: 1, 2: 1, 3: 1})
        assert skewed < 0.5

    def test_jain_index_handles_zero_waits(self):
        assert 0 < jain_index({0: 0, 1: 0}) <= 1.0

    def test_acquisition_wait(self):
        assert Acquisition(0, arrival=3, grant=17).wait == 14


class TestMeasurement:
    def test_queue_primitive_is_fifo(self):
        report = measure_lock_fairness("qolb", n_processors=4,
                                       acquires_per_proc=8)
        assert report.acquisitions == 32
        assert report.fifo_inversions == 0
        assert report.jain_index > 0.95

    def test_tts_disperses_waits(self):
        tts = measure_lock_fairness("tts", n_processors=4, acquires_per_proc=8)
        qolb = measure_lock_fairness("qolb", n_processors=4, acquires_per_proc=8)
        assert tts.max_wait > qolb.max_wait

    def test_mutual_exclusion_enforced(self):
        # the helper raises if the run corrupted the token
        report = measure_lock_fairness("iqolb", n_processors=3,
                                       acquires_per_proc=5)
        assert report.acquisitions == 15

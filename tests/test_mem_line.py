"""Unit tests for cache-line state predicates."""

import pytest

from repro.mem.line import (
    DIRTY_STATES,
    OWNER_STATES,
    READABLE_STATES,
    WRITABLE_STATES,
    CacheLine,
    State,
)


def make(state):
    return CacheLine(0x100, state, [0] * 16)


class TestStateSets:
    def test_writable_states(self):
        assert WRITABLE_STATES == {State.EXCLUSIVE, State.MODIFIED}

    def test_owner_states(self):
        assert OWNER_STATES == {State.EXCLUSIVE, State.MODIFIED, State.OWNED}

    def test_dirty_states(self):
        assert DIRTY_STATES == {State.MODIFIED, State.OWNED}

    def test_tearoff_is_readable_not_owner(self):
        assert State.TEAROFF in READABLE_STATES
        assert State.TEAROFF not in OWNER_STATES
        assert State.TEAROFF not in WRITABLE_STATES


class TestPredicates:
    @pytest.mark.parametrize("state", list(State))
    def test_valid_iff_not_invalid(self, state):
        assert make(state).valid == (state is not State.INVALID)

    def test_modified_line(self):
        line = make(State.MODIFIED)
        assert line.writable and line.readable and line.is_owner and line.dirty

    def test_shared_line(self):
        line = make(State.SHARED)
        assert line.readable
        assert not line.writable and not line.is_owner and not line.dirty

    def test_owned_line(self):
        line = make(State.OWNED)
        assert line.readable and line.is_owner and line.dirty
        assert not line.writable

    def test_exclusive_line_is_clean(self):
        line = make(State.EXCLUSIVE)
        assert line.writable and line.is_owner
        assert not line.dirty


class TestData:
    def test_read_write_words(self):
        line = make(State.MODIFIED)
        line.write_word(3, 99)
        assert line.read_word(3) == 99
        assert line.read_word(0) == 0

    def test_pinned_defaults_false(self):
        assert make(State.MODIFIED).pinned is False


class TestPredicateSetAgreement:
    """The fast identity-chain predicates must match the canonical sets."""

    def test_predicates_match_canonical_sets(self):
        for state in State:
            line = make(state)
            assert line.valid is (state is not State.INVALID)
            assert line.writable is (state in WRITABLE_STATES)
            assert line.readable is (state in READABLE_STATES)
            assert line.is_owner is (state in OWNER_STATES)
            assert line.dirty is (state in DIRTY_STATES)

"""Tests for the trace recorder and the figure scenarios."""

from repro.harness.traces import (
    TraceRecorder,
    figure2_scenario,
    figure3_scenario,
    figure4_scenario,
)


class TestTraceRecorder:
    def test_controller_hook_records(self):
        recorder = TraceRecorder()
        recorder.controller_hook("ll", 10, 2, 0x100, {"value": 1})
        (event,) = recorder.events
        assert event.kind == "ll"
        assert event.node == 2
        assert event.info == {"value": 1}

    def test_filtering(self):
        recorder = TraceRecorder()
        recorder.controller_hook("ll", 1, 0, 0x100, {})
        recorder.controller_hook("sc", 2, 0, 0x100, {})
        recorder.controller_hook("ll", 3, 0, 0x200, {})
        assert len(recorder.filtered(line_addr=0x100)) == 2
        assert len(recorder.filtered(kinds=["ll"])) == 2
        assert recorder.count("sc", 0x100) == 1

    def test_render(self):
        recorder = TraceRecorder()
        recorder.controller_hook("defer", 5, 1, 0x100, {"requester": 2})
        text = recorder.render()
        assert "P1" in text and "defer" in text and "requester=2" in text

    def test_render_limit(self):
        recorder = TraceRecorder()
        for i in range(10):
            recorder.controller_hook("x", i, 0, 0x100, {})
        assert len(recorder.render(limit=3).splitlines()) == 3


class TestFigureScenarios:
    def test_fig2_shape(self):
        result = figure2_scenario(rmw_per_proc=3)
        s = result.summary
        assert s["final_value"] == 6
        assert s["sc_failures"] > 0
        assert s["deferrals"] == 0

    def test_fig3_shape(self):
        result = figure3_scenario(n_processors=3, rmw_per_proc=3)
        s = result.summary
        assert s["final_value"] == 9
        assert s["sc_failures"] == 0
        assert s["deferrals"] > 0

    def test_fig4_shape(self):
        result = figure4_scenario(n_processors=3, acquires_per_proc=3)
        s = result.summary
        assert s["cs_entries"] == 9
        assert s["tearoffs"] > 0
        assert s["handoffs_at_release"] > 0
        assert s["timeouts"] == 0

    def test_scenarios_are_deterministic(self):
        a = figure3_scenario(rmw_per_proc=2).summary
        b = figure3_scenario(rmw_per_proc=2).summary
        assert a == b

    def test_render_shows_the_lock_line_only(self):
        result = figure4_scenario(acquires_per_proc=2)
        text = result.render()
        assert "tearoff" in text or "defer" in text

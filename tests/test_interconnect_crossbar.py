"""Unit tests for the crossbar data network."""

import pytest

from repro.engine.simulator import Simulator
from repro.engine.stats import StatsRegistry
from repro.interconnect.messages import DataKind, DataMessage, GrantState


def make_crossbar():
    sim = Simulator()
    stats = StatsRegistry()
    from repro.interconnect.crossbar import Crossbar

    xbar = Crossbar(sim, stats, line_transfer_cycles=40, word_transfer_cycles=10)
    received = []
    for node in range(4):
        xbar.attach(node, lambda msg, node=node: received.append((node, msg, sim.now)))
    return sim, xbar, received


def line_msg(src, dst):
    return DataMessage(
        DataKind.LINE, 0x100, src, dst, data=[0] * 16, grant=GrantState.EXCLUSIVE
    )


def tearoff_msg(src, dst):
    return DataMessage(DataKind.TEAROFF, 0x100, src, dst, data=[0] * 16)


class TestDelivery:
    def test_line_transfer_latency(self):
        sim, xbar, received = make_crossbar()
        xbar.send(line_msg(0, 1))
        sim.run()
        assert received[0][2] == 40

    def test_tearoff_is_cheaper(self):
        sim, xbar, received = make_crossbar()
        xbar.send(tearoff_msg(0, 1))
        sim.run()
        assert received[0][2] == 10

    def test_unattached_destination_rejected(self):
        sim, xbar, _ = make_crossbar()
        with pytest.raises(KeyError):
            xbar.send(line_msg(0, 9))


class TestPortContention:
    def test_same_source_serializes(self):
        sim, xbar, received = make_crossbar()
        xbar.send(line_msg(0, 1))
        xbar.send(line_msg(0, 2))
        sim.run()
        times = sorted(t for _, _, t in received)
        assert times == [40, 80]

    def test_distinct_sources_overlap(self):
        sim, xbar, received = make_crossbar()
        xbar.send(line_msg(0, 2))
        xbar.send(line_msg(1, 3))
        sim.run()
        times = [t for _, _, t in received]
        assert times == [40, 40]

    def test_same_destination_serializes(self):
        sim, xbar, received = make_crossbar()
        xbar.send(line_msg(0, 3))
        xbar.send(line_msg(1, 3))
        sim.run()
        times = sorted(t for _, _, t in received)
        assert times == [40, 80]

    def test_output_port_independent_of_input_port(self):
        # Node 1 receiving does not block node 1 sending.
        sim, xbar, received = make_crossbar()
        xbar.send(line_msg(0, 1))
        xbar.send(line_msg(1, 2))
        sim.run()
        times = [t for _, _, t in received]
        assert times == [40, 40]

    def test_port_frees_after_idle(self):
        sim, xbar, received = make_crossbar()
        xbar.send(line_msg(0, 1))
        sim.run()
        sim.schedule(60, lambda: xbar.send(line_msg(0, 2)))
        sim.run()
        assert received[-1][2] == 100 + 40

    def test_stats(self):
        sim, xbar, _ = make_crossbar()
        xbar.send(line_msg(0, 1))
        xbar.send(tearoff_msg(1, 2))
        sim.run()
        assert xbar.stats.value("xbar.messages") == 2
        assert xbar.stats.value("xbar.line") == 1
        assert xbar.stats.value("xbar.tearoff") == 1

"""The perf-gate tool's failure diagnostics.

A perf-smoke failure in CI must be diagnosable from the log alone: the
gate prints a per-cell expected-vs-got diff with relative deltas rather
than only the failing assertion.
"""

from __future__ import annotations

import importlib.util
import io
import pathlib

SPEC = importlib.util.spec_from_file_location(
    "perf_gate",
    pathlib.Path(__file__).resolve().parents[1] / "tools" / "perf_gate.py",
)
perf_gate = importlib.util.module_from_spec(SPEC)
SPEC.loader.exec_module(perf_gate)


def cell(key, cycles=100, bus=10, events=1000, rate=5000.0):
    return {
        "key": key,
        "cycles": cycles,
        "bus_transactions": bus,
        "events_fired": events,
        "events_per_host_s": rate,
        "wall_time_s": events / rate,
    }


class TestDiffCollection:
    def test_equivalence_divergence_is_recorded(self):
        fast = {"bus/tts/16": cell(["bus", "tts", 16], cycles=101)}
        reference = {"bus/tts/16": cell(["bus", "tts", 16], cycles=100)}
        failures, diffs = [], []
        perf_gate.check_equivalence(fast, reference, failures, diffs)
        assert len(failures) == 1
        assert diffs == [
            {
                "check": "equivalence",
                "cell": "bus/tts/16",
                "field": "cycles",
                "expected": 100,
                "got": 101,
            }
        ]

    def test_determinism_divergence_is_recorded(self):
        fast = {"a": cell(["a"], events=1100)}
        baseline = {"cells": {"a": {"events_fired": 1000}}}
        failures, diffs = [], []
        perf_gate.check_baseline(fast, {}, baseline, 0.2, failures, diffs)
        assert any("determinism" in f for f in failures)
        assert diffs[0]["expected"] == 1000
        assert diffs[0]["got"] == 1100

    def test_clean_run_records_nothing(self):
        grid = {"a": cell(["a"])}
        failures, diffs = [], []
        perf_gate.check_equivalence(grid, dict(grid), failures, diffs)
        assert failures == []
        assert diffs == []


class TestDiffRendering:
    def test_diff_table_shows_relative_delta(self):
        out = io.StringIO()
        perf_gate.print_cell_diffs(
            [
                {
                    "check": "determinism",
                    "cell": "directory/iqolb/64",
                    "field": "events_fired",
                    "expected": 1000,
                    "got": 1100,
                }
            ],
            file=out,
        )
        text = out.getvalue()
        assert "directory/iqolb/64" in text
        assert "expected" in text and "got" in text
        assert "+10.00%" in text

    def test_no_diffs_prints_nothing(self):
        out = io.StringIO()
        perf_gate.print_cell_diffs([], file=out)
        assert out.getvalue() == ""

    def test_zero_expected_renders_na(self):
        out = io.StringIO()
        perf_gate.print_cell_diffs(
            [
                {
                    "check": "equivalence",
                    "cell": "x",
                    "field": "cycles",
                    "expected": 0,
                    "got": 7,
                }
            ],
            file=out,
        )
        assert "n/a" in out.getvalue()

"""Tests for the workload layer: micro-benchmarks and synthetic apps."""

import pytest

from conftest import build_system
from repro.harness.config import SystemConfig
from repro.harness.experiment import PRIMITIVES, run_workload
from repro.workloads.base import LOCK_KINDS, LockSet
from repro.workloads.micro import (
    CollocatedCriticalSection,
    ContendedCounter,
    NullCriticalSection,
)
from repro.workloads.splash import APP_MODELS, APP_ORDER, make_app


class TestLockSet:
    @pytest.mark.parametrize("kind", LOCK_KINDS)
    def test_builds_every_kind(self, kind):
        system = build_system(2, "qolb" if kind == "qolb" else "baseline")
        lockset = LockSet(kind, system, n_locks=3, n_threads=2)
        assert lockset.lock_addr(0) != lockset.lock_addr(1)

    def test_unknown_kind_rejected(self):
        system = build_system(1)
        with pytest.raises(ValueError):
            LockSet("spinlock9000", system, 1, 1)

    @pytest.mark.parametrize("kind", LOCK_KINDS)
    def test_acquire_release_roundtrip(self, kind):
        from conftest import run_programs
        from repro.cpu.ops import Compute, Read, Write

        policy = "qolb" if kind == "qolb" else "baseline"
        system = build_system(3, policy)
        lockset = LockSet(kind, system, n_locks=2, n_threads=3)
        tokens = [system.layout.alloc_line() for _ in range(2)]

        def program(tid):
            for i in range(5):
                lock_idx = i % 2
                yield from lockset.acquire(lock_idx, tid)
                value = yield Read(tokens[lock_idx])
                yield Write(tokens[lock_idx], value + 1)
                yield from lockset.release(lock_idx, tid)
                yield Compute(20)

        run_programs(system, [program(t) for t in range(3)])
        assert sum(system.read_word(t) for t in tokens) == 15


class TestMicroWorkloads:
    def test_contended_counter_verifies(self, main_policy):
        config = SystemConfig(n_processors=3, policy=PRIMITIVES["tts"][0])
        workload = ContendedCounter(increments_per_proc=10)
        result = run_workload(workload, config, primitive="tts")
        assert result.cycles > 0

    def test_null_cs_all_primitives(self):
        for primitive in ("tts", "iqolb", "qolb", "ticket", "mcs"):
            policy, lock_kind = PRIMITIVES[primitive]
            config = SystemConfig(n_processors=3, policy=policy)
            workload = NullCriticalSection(
                lock_kind=lock_kind, acquires_per_proc=6
            )
            run_workload(workload, config, primitive=primitive)

    def test_collocated_cs(self):
        config = SystemConfig(n_processors=3, policy="iqolb")
        workload = CollocatedCriticalSection(lock_kind="tts", acquires_per_proc=6)
        run_workload(workload, config, primitive="iqolb")

    def test_verify_catches_corruption(self):
        config = SystemConfig(n_processors=2, policy="baseline")
        workload = ContendedCounter(increments_per_proc=5)
        result = run_workload(workload, config, primitive="tts")
        # sabotage the expectation: verify must raise
        workload.expected += 1
        system_stub = type(
            "S", (), {"read_word": lambda self, addr: workload.expected - 1}
        )()
        with pytest.raises(AssertionError):
            workload.verify(system_stub)


class TestSyntheticApps:
    def test_registry_order(self):
        assert set(APP_ORDER) == set(APP_MODELS)

    @pytest.mark.parametrize("name", APP_ORDER)
    def test_each_app_runs_small(self, name):
        app = make_app(
            name,
            lock_kind="tts",
            model_overrides={"total_work": 32, "phases": 2},
        )
        config = SystemConfig(n_processors=4, policy="iqolb")
        result = run_workload(app, config, primitive="iqolb", verify=False)
        assert result.cycles > 0

    def test_work_conservation_divisibility_enforced(self):
        app = make_app("raytrace", model_overrides={"total_work": 30})
        config = SystemConfig(n_processors=4, policy="baseline")
        with pytest.raises(ValueError):
            run_workload(app, config, primitive="tts", verify=False)

    def test_deterministic_given_seed(self):
        def one_run():
            app = make_app(
                "radiosity",
                model_overrides={"total_work": 32, "phases": 2},
            )
            config = SystemConfig(n_processors=4, policy="baseline")
            return run_workload(app, config, primitive="tts", verify=False).cycles

        assert one_run() == one_run()

    def test_seed_changes_run(self):
        def one_run(seed):
            app = make_app(
                "radiosity",
                model_overrides={"total_work": 32, "phases": 2, "seed": seed},
            )
            config = SystemConfig(n_processors=4, policy="baseline")
            return run_workload(app, config, primitive="tts", verify=False).cycles

        assert one_run(1) != one_run(2)

    def test_hot_lock_selection(self):
        """hot_lock_fraction=1 with one lock means every acquire hits it."""
        app = make_app(
            "raytrace", model_overrides={"total_work": 32, "phases": 2}
        )
        config = SystemConfig(n_processors=4, policy="iqolb")
        result = run_workload(app, config, primitive="iqolb", verify=False)
        # one lock + one data line + barrier words: tiny footprint
        assert result.stat("deferrals") > 0

    def test_make_app_override_patch(self):
        app = make_app("barnes", model_overrides={"n_locks": 3})
        assert app.model.n_locks == 3
        assert APP_MODELS["barnes"].n_locks != 3  # registry untouched

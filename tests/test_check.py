"""Tests for the protocol checker: explorer, oracles, faults, replay.

The expensive full matrix lives in CI's check-smoke job; here the same
machinery runs with small budgets — enough to prove determinism, the
seeded-mutation self-test, fault-path recovery, and counterexample
round-tripping.
"""

import dataclasses
import json

import pytest

from repro.check import (
    Budget,
    Counterexample,
    RunSpec,
    Violation,
    explore,
    replay,
    run_matrix,
    run_once,
    smoke_jobs,
)
from repro.check.explore import ReplayDivergence
from repro.check.faults import FaultInjector, FaultPlan
from repro.check.oracles import CsMonitor
from repro.check.report import from_explore_violation

SMALL = Budget(max_schedules=25, max_steps=40_000, max_depth=30)


def small_spec(**overrides):
    base = dict(primitive="iqolb", interconnect="bus", n_processors=3,
                acquires_per_proc=2)
    base.update(overrides)
    return RunSpec(**base)


class TestExplorer:
    def test_finds_real_tie_points(self):
        report = explore(small_spec(), SMALL)
        assert report.interleavings > 1
        assert report.choice_points > 0
        assert report.max_depth_seen > 0
        assert report.statuses.get("finished", 0) == report.interleavings
        assert not report.violations

    def test_exploration_is_deterministic(self):
        first = explore(small_spec(), SMALL)
        second = explore(small_spec(), SMALL)
        assert first.interleavings == second.interleavings
        assert first.statuses == second.statuses
        assert first.choice_points == second.choice_points
        assert first.pruned == second.pruned

    def test_tie_break_choice_changes_execution(self):
        """Sibling schedules genuinely reorder events (not a no-op)."""
        base = run_once(small_spec(), [])
        assert base.branching, "no choice points at all"
        depth = next(
            (i for i, width in enumerate(base.branching) if width > 1), None
        )
        assert depth is not None
        alt = run_once(
            small_spec(), list(base.observed[:depth]) + [1]
        )
        assert alt.status == "finished"
        # Same protocol, different path: the runs diverge at or after the
        # flipped choice but both complete correctly.
        assert alt.fingerprints[depth] == base.fingerprints[depth]

    def test_replay_divergence_detected(self):
        with pytest.raises(ReplayDivergence):
            run_once(small_spec(), [99])

    def test_step_budget_classified_not_crashed(self):
        tight = Budget(max_schedules=2, max_steps=50, max_depth=30)
        report = explore(small_spec(), tight)
        assert report.statuses.get("budget", 0) >= 1
        assert not report.violations  # a cut-short run is not a failure

    def test_directory_fabric_explores(self):
        report = explore(small_spec(interconnect="directory"), SMALL)
        assert report.interleavings > 1
        assert not report.violations


class TestMutationSelfTest:
    """The checker must catch the bug it exists to catch."""

    # Enough steps for the starved run to spin all the way to the
    # runaway guard — a "budget" cut is (correctly) not a violation.
    MUTATION_BUDGET = Budget(max_schedules=10, max_steps=150_000,
                             max_depth=30)

    def mutated_spec(self):
        # A huge timeout keeps the timeout path from masking the skipped
        # hand-off; the runaway guard ends the starved run instead.
        return small_spec(
            mutation="skip_release_handoff",
            timeout_cycles=10_000_000,
            max_cycles=200_000,
        )

    def test_skipped_handoff_is_caught(self):
        report = explore(self.mutated_spec(), self.MUTATION_BUDGET)
        assert report.violations
        violation = report.violations[0]["violation"]
        assert violation["oracle"] in ("handoff", "progress")

    def test_counterexample_roundtrip_and_replay(self, tmp_path):
        report = explore(self.mutated_spec(), self.MUTATION_BUDGET)
        counterexample = from_explore_violation(
            self.mutated_spec(), report.violations[0]
        )
        path = str(tmp_path / "ce.json")
        counterexample.save(path)
        loaded = Counterexample.load(path)
        assert loaded.spec == counterexample.spec
        assert loaded.schedule == counterexample.schedule
        assert loaded.oracle == counterexample.oracle

        trace_path = str(tmp_path / "ce.trace.json")
        outcome = replay(loaded, trace_out=trace_path)
        assert outcome.violation is not None
        assert outcome.violation["oracle"] == loaded.oracle
        assert outcome.violation["message"] == loaded.message
        # The Chrome trace is real JSON with events in it.
        with open(trace_path, encoding="utf-8") as fh:
            trace = json.load(fh)
        assert trace["traceEvents"]

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation"):
            run_once(small_spec(mutation="no_such_mutation"), [])


class TestFaultInjection:
    def test_faults_are_recovered_not_fatal(self):
        """Injected delays/drops stay inside the protocol's envelope:
        every run still finishes correctly."""
        spec = small_spec(
            primitive="qolb",
            interconnect="directory",
            fault_plan=FaultPlan(seed=1, drop_prob=0.4),
        )
        report = explore(spec, SMALL)
        assert not report.violations
        assert report.fault_stats.get("fault.delays_injected", 0) > 0
        assert report.fault_stats.get("net.faulted_drops", 0) > 0

    def test_faults_exercise_nack_retry_and_timeout(self):
        """Heavy delays push requests into the directory's NACK/retry
        path and holders past the hand-off timeout."""
        spec = small_spec(
            interconnect="directory",
            n_processors=4,
            timeout_cycles=300,
            fault_plan=FaultPlan(
                seed=1, delay_prob=0.4, max_delay_cycles=600,
                bus_jitter_prob=0.3, drop_prob=0.3,
            ),
        )
        report = explore(spec, Budget(max_schedules=40, max_depth=40,
                                      max_steps=80_000))
        assert not report.violations
        assert report.fault_stats.get("dir.retries", 0) > 0
        assert report.fault_stats.get("timeouts", 0) > 0

    def test_fault_run_is_deterministic(self):
        spec = small_spec(fault_plan=FaultPlan(seed=7))
        first = run_once(spec, [])
        second = run_once(spec, [])
        assert first.observed == second.observed
        assert first.cycles == second.cycles
        assert first.fault_summary == second.fault_summary

    def test_drop_eligibility_is_guarded(self):
        """The injector refuses to drop messages it cannot prove
        recoverable (no system attached -> nothing is droppable)."""
        injector = FaultInjector(FaultPlan(seed=0, drop_prob=1.0))

        class Msg:
            from repro.interconnect.messages import DataKind
            kind = DataKind.TEAROFF
            line_addr = 0x100
            src, dst = 0, 1

        assert injector.drop(Msg()) is False

    def test_plan_roundtrip(self):
        plan = FaultPlan(seed=3, delay_prob=0.5, drop_prob=0.1)
        assert FaultPlan.from_dict(plan.to_dict()) == plan


class TestOracles:
    def test_cs_monitor_detects_overlap(self):
        monitor = CsMonitor()
        monitor.enter(0)
        with pytest.raises(Violation):
            monitor.enter(1)

    def test_cs_monitor_allows_serial_entries(self):
        monitor = CsMonitor()
        for tid in (0, 1, 0):
            monitor.enter(tid)
            monitor.exit(tid)
        assert monitor.entries == 3


class TestMatrixRunner:
    def test_smoke_jobs_cover_the_matrix(self):
        jobs = smoke_jobs(fault_seeds=[1])
        labels = {job.spec.label() for job in jobs}
        assert len(jobs) == 20  # 5 primitives x 2 fabrics x (plain+fault)
        assert "lock/qolb/directory" in labels
        assert "lock/tts/bus+faults(seed=1)" in labels

    def test_run_matrix_serial_equals_parallel(self):
        jobs = [
            dataclasses.replace(job, budget=Budget(max_schedules=6,
                                                   max_depth=20))
            for job in smoke_jobs(primitives=["iqolb"],
                                  interconnects=["bus"],
                                  n_processors=3)
        ]
        serial = run_matrix(jobs, n_jobs=1)
        parallel = run_matrix(jobs, n_jobs=2)
        assert [r.label for r in serial] == [r.label for r in parallel]
        assert [r.interleavings for r in serial] == [
            r.interleavings for r in parallel
        ]
        assert [r.statuses for r in serial] == [
            r.statuses for r in parallel
        ]


class TestCheckCli:
    def test_cli_mutation_self_test(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = str(tmp_path / "out")
        code = main([
            "check", "--mutate", "skip_release_handoff",
            "--primitives", "iqolb", "--interconnects", "bus",
            "-p", "3", "--max-schedules", "10",
            "--timeout-cycles", "10000000", "--max-cycles", "200000",
            "--expect-violation", "--out", out_dir,
        ])
        assert code == 0
        report = json.loads(
            (tmp_path / "out" / "check-report.json").read_text()
        )
        assert report["total_violations"] >= 1
        assert report["counterexamples"]

        replay_code = main([
            "check", "--replay", report["counterexamples"][0],
            "--trace", str(tmp_path / "replay.trace.json"),
        ])
        assert replay_code == 0
        captured = capsys.readouterr()
        assert "reproduced" in captured.out

    def test_cli_clean_cell_exits_zero(self, capsys):
        from repro.cli import main

        code = main([
            "check", "--primitives", "tts", "--interconnects", "bus",
            "-p", "3", "--max-schedules", "5",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "0 violation(s)" in captured.out

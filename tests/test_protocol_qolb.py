"""Integration tests for explicit QOLB (paper §2)."""

from conftest import build_system, run_programs
from repro.cpu.ops import Compute, Read, Write
from repro.sync import QolbLock


def lock_workers(system, lock, token, n, iters, cs=30, think=60):
    def program():
        for _ in range(iters):
            yield from lock.acquire()
            value = yield Read(token)
            yield Compute(cs)
            yield Write(token, value + 1)
            yield from lock.release()
            yield Compute(think)

    run_programs(system, [program() for _ in range(n)])


class TestQolbLocking:
    def test_mutual_exclusion(self):
        system = build_system(4, "qolb")
        lock = QolbLock(system.layout.alloc_line())
        token = system.layout.alloc_line()
        lock_workers(system, lock, token, 4, 8)
        assert system.read_word(token) == 32

    def test_single_enqueue_per_contended_acquire(self):
        system = build_system(4, "qolb")
        lock = QolbLock(system.layout.alloc_line())
        token = system.layout.alloc_line()
        lock_workers(system, lock, token, 4, 8)
        acquires = 4 * 8
        assert system.stats.value("bus.QolbEnq") <= acquires + 4

    def test_deqolb_hands_off_directly(self):
        system = build_system(3, "qolb")
        lock = QolbLock(system.layout.alloc_line())
        token = system.layout.alloc_line()
        lock_workers(system, lock, token, 3, 6)
        assert system.total("handoff_deqolb") > 0
        assert system.total("tearoffs_sent") > 0

    def test_waiters_spin_on_shadow_copies(self):
        """While queued, EnQOLB retries hit the local tear-off (shadow)."""
        system = build_system(3, "qolb")
        lock = QolbLock(system.layout.alloc_line())
        token = system.layout.alloc_line()
        lock_workers(system, lock, token, 3, 8, cs=200)
        # Long CSes mean plenty of spinning; still ~1 bus op per acquire.
        assert system.stats.value("bus.QolbEnq") <= 3 * 8 + 3

    def test_uncontended_holds_line(self):
        system = build_system(2, "qolb")
        lock = QolbLock(system.layout.alloc_line())

        def solo():
            for _ in range(8):
                yield from lock.acquire()
                yield Compute(10)
                yield from lock.release()

        system.load_program(0, solo())
        system.load_program(1, iter([]))
        system.run()
        assert system.stats.value("bus.QolbEnq") == 1

    def test_no_timeouts_in_qolb(self):
        """QOLB releases are explicit; no timer is ever armed."""
        system = build_system(4, "qolb")
        lock = QolbLock(system.layout.alloc_line())
        token = system.layout.alloc_line()
        lock_workers(system, lock, token, 4, 6, cs=500)
        assert system.total("timeouts") == 0

    def test_fifo_handoff_order(self):
        """The lock travels in enqueue order."""
        system = build_system(3, "qolb")
        lock = QolbLock(system.layout.alloc_line())
        grants = []

        def program(tid):
            yield Compute(1 + tid * 400)  # enqueue in tid order
            yield from lock.acquire()
            grants.append(tid)
            yield Compute(1_500)  # force the others to queue behind
            yield from lock.release()

        run_programs(system, [program(t) for t in range(3)])
        assert grants == [0, 1, 2]

"""Tests for the producer-consumer and reader-heavy workloads."""

import pytest

from repro.harness.config import SystemConfig
from repro.harness.experiment import PRIMITIVES, run_workload
from repro.workloads.pipeline import ProducerConsumer, ReaderHeavy


def run(workload, primitive, n):
    policy, _ = PRIMITIVES[primitive]
    config = SystemConfig(n_processors=n, policy=policy)
    return run_workload(workload, config, primitive=primitive)


class TestProducerConsumer:
    @pytest.mark.parametrize("primitive", ["tts", "iqolb", "qolb", "mcs"])
    def test_all_items_flow_exactly_once(self, primitive):
        _, lock_kind = PRIMITIVES[primitive]
        workload = ProducerConsumer(lock_kind=lock_kind, items_per_producer=8)
        run(workload, primitive, 4)  # verify() checks count and checksum

    def test_small_queue_forces_backpressure(self):
        _, lock_kind = PRIMITIVES["iqolb"]
        workload = ProducerConsumer(
            lock_kind=lock_kind, items_per_producer=10, queue_capacity=2
        )
        result = run(workload, "iqolb", 4)
        assert result.cycles > 0

    def test_more_consumers_than_producers(self):
        _, lock_kind = PRIMITIVES["iqolb"]
        workload = ProducerConsumer(lock_kind=lock_kind, items_per_producer=9)
        run(workload, "iqolb", 5)  # 2 producers, 3 consumers

    def test_checksum_catches_duplication(self):
        workload = ProducerConsumer(items_per_producer=4)
        result = run(workload, "tts", 2)
        # sanity of the oracle itself
        assert workload.expected_checksum() == sum(
            i + 1 for i in range(4)
        )

    def test_needs_two_processors(self):
        workload = ProducerConsumer()
        with pytest.raises(ValueError):
            run(workload, "tts", 1)

    def test_queue_primitive_outperforms_tts(self):
        def fresh(kind):
            return ProducerConsumer(lock_kind=kind, items_per_producer=10,
                                    produce_cycles=40, consume_cycles=40)

        tts = run(fresh("tts"), "tts", 8)
        iqolb = run(fresh("tts"), "iqolb", 8)
        assert iqolb.cycles < tts.cycles


class TestReaderHeavy:
    @pytest.mark.parametrize("primitive", ["tts", "iqolb", "qolb"])
    def test_no_torn_reads(self, primitive):
        _, lock_kind = PRIMITIVES[primitive]
        workload = ReaderHeavy(lock_kind=lock_kind, updates=8,
                               reads_per_reader=12)
        run(workload, primitive, 4)  # verify() checks for torn reads

    def test_verify_rejects_torn_reads(self):
        workload = ReaderHeavy()
        workload.torn_reads.append((1, 2, 1, 1))
        with pytest.raises(AssertionError):
            workload.verify(None)

    def test_needs_two_processors(self):
        with pytest.raises(ValueError):
            run(ReaderHeavy(), "tts", 1)

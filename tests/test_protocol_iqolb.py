"""Integration tests for Implicit QOLB (paper §3.3-3.4)."""

from conftest import build_system, run_programs
from repro.cpu.ops import Compute, Read, Write
from repro.sync import TTSLock, fetch_and_add


def lock_workers(system, lock, token, n, iters, cs=30, think=60):
    def program():
        for _ in range(iters):
            yield from lock.acquire()
            value = yield Read(token)
            yield Compute(cs)
            yield Write(token, value + 1)
            yield from lock.release()
            yield Compute(think)

    run_programs(system, [program() for _ in range(n)])


class TestLockSpeculation:
    def test_tearoffs_and_release_handoffs(self):
        system = build_system(4, "iqolb")
        lock = TTSLock(system.layout.alloc_line())
        token = system.layout.alloc_line()
        lock_workers(system, lock, token, 4, 8)
        assert system.read_word(token) == 32
        assert system.total("tearoffs_sent") > 0
        assert system.total("handoff_release") > 0
        assert system.total("releases_detected") > 0

    def test_waiters_spin_locally(self):
        """Waiting generates no bus traffic: roughly one LPRFO/acquire
        (plus one per queue-breakdown reissue during the untrained
        warm-up round)."""
        system = build_system(4, "iqolb")
        lock = TTSLock(system.layout.alloc_line())
        token = system.layout.alloc_line()
        lock_workers(system, lock, token, 4, 8)
        acquires = 4 * 8
        budget = acquires + system.total("squashes") + 4
        assert system.stats.value("bus.LPRFO") <= budget

    def test_predictor_learns_on_every_node(self):
        system = build_system(4, "iqolb")
        lock = TTSLock(system.layout.alloc_line())
        token = system.layout.alloc_line()
        lock_workers(system, lock, token, 4, 6)
        for controller in system.controllers:
            assert controller.policy.predictor.predict_lock(lock.pc_acquire)

    def test_fetchphi_not_classified_as_lock(self):
        system = build_system(4, "iqolb")
        counter = system.layout.alloc_line()

        def program():
            for _ in range(8):
                yield from fetch_and_add(counter, 1, "iq.count")
                yield Compute(40)

        run_programs(system, [program() for _ in range(4)])
        assert system.read_word(counter) == 32
        from repro.sync.primitives import synthetic_pc

        pc = synthetic_pc("iq.count")
        for controller in system.controllers:
            assert not controller.policy.predictor.predict_lock(pc)
        # Fetch&Phi deferrals discharge at SC, never at a release store.
        assert system.total("handoff_release") == 0

    def test_tearoff_state_not_writable(self):
        """Tear-off copies never satisfy stores or SCs."""
        system = build_system(2, "iqolb")
        lock = TTSLock(system.layout.alloc_line())
        token = system.layout.alloc_line()
        lock_workers(system, lock, token, 2, 6)
        # mutual exclusion held (checked via token), and the sc_fail path
        # never produced lost updates:
        assert system.read_word(token) == 12


class TestReadersOfHeldLocks:
    def test_reader_gets_tearoff_and_stays_out_of_queue(self):
        system = build_system(3, "iqolb")
        lock = TTSLock(system.layout.alloc_line())
        observed = []

        def holder():
            yield from lock.acquire()
            yield from lock.release()  # train the predictor
            yield from lock.acquire()
            yield Compute(2_000)
            yield from lock.release()

        def reader():
            yield Compute(700)  # while the lock is held
            observed.append((yield Read(lock.addr)))

        def bystander():
            yield Compute(1)

        run_programs(system, [holder(), reader(), bystander()])
        assert observed == [1]  # saw it held
        assert system.total("tearoffs_sent") >= 1


class TestEvictionHandoff:
    def test_eviction_passes_line_to_successor(self):
        """Paper §3.3: an eviction is treated as a time-out."""
        system = build_system(
            2,
            "iqolb",
            l1_size_bytes=2 * 64,
            l1_assoc=1,
            l2_size_bytes=4 * 64,
            l2_assoc=1,
        )
        lock = TTSLock(system.layout.alloc_line())
        filler = [system.layout.alloc_line() for _ in range(12)]
        done = []

        def holder():
            yield from lock.acquire()
            yield from lock.release()
            yield from lock.acquire()
            # Touch enough lines to evict the (pinned-but-overflowable)
            # lock line from the tiny cache while holding it.
            for addr in filler:
                yield Write(addr, 1)
            yield Compute(3_000)
            yield from lock.release()
            done.append("holder")

        def waiter():
            yield Compute(400)
            yield from lock.acquire()
            yield from lock.release()
            done.append("waiter")

        run_programs(system, [holder(), waiter()])
        assert set(done) == {"holder", "waiter"}


class TestTimeoutWhileHolding:
    def test_long_cs_times_out_and_heals(self):
        system = build_system(3, "iqolb", timeout_cycles=400)
        lock = TTSLock(system.layout.alloc_line())
        token = system.layout.alloc_line()

        def program():
            for _ in range(4):
                yield from lock.acquire()
                value = yield Read(token)
                yield Compute(1_500)  # CS far beyond the bound
                yield Write(token, value + 1)
                yield from lock.release()
                yield Compute(30)

        run_programs(system, [program() for _ in range(3)])
        # Timeouts fired, yet mutual exclusion held.
        assert system.total("timeouts") > 0
        assert system.read_word(token) == 12


class TestMixedWorkload:
    def test_locks_and_counters_coexist(self):
        system = build_system(4, "iqolb")
        lock = TTSLock(system.layout.alloc_line())
        counter = system.layout.alloc_line()
        protected = system.layout.alloc_line()

        def program():
            for _ in range(6):
                yield from lock.acquire()
                value = yield Read(protected)
                yield Write(protected, value + 1)
                yield from lock.release()
                yield from fetch_and_add(counter, 1)
                yield Compute(50)

        run_programs(system, [program() for _ in range(4)])
        assert system.read_word(counter) == 24
        assert system.read_word(protected) == 24

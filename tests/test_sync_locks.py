"""Integration tests for the synchronization library.

Every primitive must provide mutual exclusion and progress on every
protocol policy it is meant to run on.  Mutual exclusion is checked with
the classic read-modify-write token test: if two threads ever overlap in
the critical section, increments are lost.
"""

import pytest

from conftest import build_system, run_programs
from repro.cpu.ops import Compute, Read, Write
from repro.sync import (
    Barrier,
    McsLock,
    QolbLock,
    TSLock,
    TTSLock,
    TicketLock,
    compare_and_swap,
    fetch_and_add,
)


def lock_worker(lock_ops, counter, iters):
    acquire, release = lock_ops

    def program():
        for _ in range(iters):
            yield from acquire()
            value = yield Read(counter)
            yield Compute(3)
            yield Write(counter, value + 1)
            yield from release()
            yield Compute(17)

    return program


def check_mutual_exclusion(system, make_lock_ops, n, iters=12):
    counter = system.layout.alloc_line()
    programs = [lock_worker(make_lock_ops(tid), counter, iters)() for tid in range(n)]
    run_programs(system, programs)
    assert system.read_word(counter) == n * iters


POLICIES_FOR_SW_LOCKS = ["baseline", "aggressive", "delayed", "iqolb",
                         "iqolb+retention", "delayed+retention"]


class TestTTSLock:
    @pytest.mark.parametrize("policy", POLICIES_FOR_SW_LOCKS)
    def test_mutual_exclusion(self, policy):
        system = build_system(4, policy)
        lock = TTSLock(system.layout.alloc_line())
        check_mutual_exclusion(
            system, lambda tid: (lock.acquire, lock.release), 4
        )

    def test_single_thread_reacquire(self):
        system = build_system(1, "iqolb")
        lock = TTSLock(system.layout.alloc_line())
        check_mutual_exclusion(
            system, lambda tid: (lock.acquire, lock.release), 1, iters=5
        )


class TestTSLock:
    @pytest.mark.parametrize("policy", ["baseline", "iqolb"])
    def test_mutual_exclusion(self, policy):
        system = build_system(4, policy)
        lock = TSLock(system.layout.alloc_line())
        check_mutual_exclusion(
            system, lambda tid: (lock.acquire, lock.release), 4
        )


class TestTicketLock:
    @pytest.mark.parametrize("policy", ["baseline", "delayed", "iqolb"])
    def test_mutual_exclusion(self, policy):
        system = build_system(4, policy)
        lock = TicketLock(system.layout.alloc_line(), system.layout.alloc_line())
        check_mutual_exclusion(
            system, lambda tid: (lock.acquire, lock.release), 4
        )

    def test_fifo_order(self):
        """Tickets grant in strict arrival order."""
        system = build_system(3, "baseline")
        lock = TicketLock(system.layout.alloc_line(), system.layout.alloc_line())
        order_addr = system.layout.alloc_line()
        granted = []

        def program(tid):
            yield Compute(tid * 500)  # stagger arrivals: 0, then 1, then 2
            yield from lock.acquire()
            pos = yield Read(order_addr)
            granted.append(tid)
            yield Write(order_addr, pos + 1)
            yield Compute(800)  # hold long enough that others queue up
            yield from lock.release()

        run_programs(system, [program(t) for t in range(3)])
        assert granted == [0, 1, 2]


class TestMcsLock:
    @pytest.mark.parametrize("policy", ["baseline", "delayed", "iqolb"])
    def test_mutual_exclusion(self, policy):
        system = build_system(4, policy)
        lock = McsLock(system.layout.alloc_line())
        nodes = [system.layout.alloc_line() for _ in range(4)]
        check_mutual_exclusion(
            system,
            lambda tid: (
                lambda: lock.acquire_with(nodes[tid]),
                lambda: lock.release_with(nodes[tid]),
            ),
            4,
        )

    def test_node_at_zero_rejected(self):
        lock = McsLock(0x1000)
        gen = lock.acquire_with(0)
        with pytest.raises(ValueError):
            next(gen)


class TestQolbLock:
    def test_mutual_exclusion_on_qolb_policy(self):
        system = build_system(4, "qolb")
        lock = QolbLock(system.layout.alloc_line())
        check_mutual_exclusion(
            system, lambda tid: (lock.acquire, lock.release), 4
        )

    def test_uncontended_reacquire_no_extra_traffic(self):
        system = build_system(2, "qolb")
        lock = QolbLock(system.layout.alloc_line())

        def program():
            for _ in range(10):
                yield from lock.acquire()
                yield from lock.release()

        system.load_program(0, program())
        system.load_program(1, iter([]))
        system.run()
        # First acquire fetches the line; the rest are local.
        assert system.stats.value("bus.QolbEnq") == 1


class TestFetchOps:
    @pytest.mark.parametrize(
        "policy", ["baseline", "aggressive", "delayed", "iqolb", "qolb"]
    )
    def test_fetch_and_add_atomicity(self, policy):
        system = build_system(4, policy)
        counter = system.layout.alloc_line()

        def program():
            for _ in range(10):
                yield from fetch_and_add(counter, 1)
                yield Compute(11)

        run_programs(system, [program() for _ in range(4)])
        assert system.read_word(counter) == 40

    def test_fetch_and_add_returns_old_value(self):
        system = build_system(1, "baseline")
        counter = system.layout.alloc_line()
        system.write_word(counter, 5)
        seen = []

        def program():
            old = yield from fetch_and_add(counter, 3)
            seen.append(old)

        run_programs(system, [program()])
        assert seen == [5]
        assert system.read_word(counter) == 8

    def test_cas_success_and_failure(self):
        system = build_system(1, "baseline")
        addr = system.layout.alloc_line()
        system.write_word(addr, 10)
        outcomes = []

        def program():
            ok = yield from compare_and_swap(addr, 10, 20)
            outcomes.append(ok)
            ok = yield from compare_and_swap(addr, 10, 30)
            outcomes.append(ok)

        run_programs(system, [program()])
        assert outcomes == [True, False]
        assert system.read_word(addr) == 20


class TestBarrier:
    @pytest.mark.parametrize("policy", ["baseline", "iqolb", "qolb"])
    def test_barrier_synchronizes(self, policy):
        n = 4
        system = build_system(n, policy)
        barrier = Barrier(
            system.layout.alloc_line(), system.layout.alloc_line(), n
        )
        marks = system.layout.alloc_array(n)
        violations = []

        def program(tid):
            sense = 0
            for episode in range(3):
                yield Compute((tid + 1) * 37)
                yield Write(marks[tid], episode + 1)
                sense = yield from barrier.wait(sense)
                # After the barrier, every thread must have written this
                # episode's mark.
                for other in range(n):
                    value = yield Read(marks[other])
                    if value < episode + 1:
                        violations.append((tid, other, episode))

        run_programs(system, [program(t) for t in range(n)])
        assert violations == []

    def test_single_party_barrier(self):
        system = build_system(1, "baseline")
        barrier = Barrier(
            system.layout.alloc_line(), system.layout.alloc_line(), 1
        )

        def program():
            sense = 0
            for _ in range(3):
                sense = yield from barrier.wait(sense)

        run_programs(system, [program()])

    def test_zero_parties_rejected(self):
        import pytest as _pytest
        with _pytest.raises(ValueError):
            Barrier(0x100, 0x140, 0)

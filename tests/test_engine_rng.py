"""Unit tests for the deterministic workload RNG."""

from hypothesis import given, strategies as st

from repro.engine.rng import WorkloadRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = WorkloadRng(42)
        b = WorkloadRng(42)
        assert [a.uniform_int(0, 100) for _ in range(20)] == [
            b.uniform_int(0, 100) for _ in range(20)
        ]

    def test_spawn_is_deterministic(self):
        a = WorkloadRng(42).spawn(3)
        b = WorkloadRng(42).spawn(3)
        assert [a.uniform_int(0, 9) for _ in range(10)] == [
            b.uniform_int(0, 9) for _ in range(10)
        ]

    def test_spawned_children_differ(self):
        parent = WorkloadRng(42)
        children = [parent.spawn(i) for i in range(4)]
        streams = [
            tuple(child.uniform_int(0, 10**9) for _ in range(5))
            for child in children
        ]
        assert len(set(streams)) == len(streams)


class TestDraws:
    @given(st.integers(0, 50), st.integers(0, 50))
    def test_uniform_in_range(self, a, b):
        low, high = min(a, b), max(a, b)
        rng = WorkloadRng(7)
        for _ in range(20):
            value = rng.uniform_int(low, high)
            assert low <= value <= high

    @given(st.floats(min_value=1.0, max_value=10_000.0))
    def test_exponential_floor(self, mean):
        rng = WorkloadRng(7)
        for _ in range(20):
            assert rng.exponential_int(mean, minimum=5) >= 5

    def test_choice_and_weighted_choice(self):
        rng = WorkloadRng(7)
        options = [10, 20, 30]
        for _ in range(20):
            assert rng.choice(options) in options
            assert rng.weighted_choice(options, [1, 1, 1]) in options

    def test_weighted_choice_respects_zero_weight(self):
        rng = WorkloadRng(7)
        for _ in range(50):
            assert rng.weighted_choice([1, 2], [1.0, 0.0]) == 1

    def test_shuffled_is_permutation(self):
        rng = WorkloadRng(7)
        items = list(range(10))
        shuffled = rng.shuffled(items)
        assert sorted(shuffled) == items
        assert items == list(range(10))  # input untouched

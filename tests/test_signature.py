"""The shared WorkloadSignature: one description of what a cell runs.

``repro run``, the sweep layer and ``repro predict`` all describe cells
through :class:`~repro.harness.signature.WorkloadSignature`; these tests
pin the extraction rules (micro workloads, synthetic apps, unknown
shapes) and the serialization contract.
"""

from __future__ import annotations

from repro.harness.config import SystemConfig
from repro.harness.experiment import app_signature
from repro.harness.runner import AppSpec, CellSpec, FactorySpec
from repro.harness.signature import (
    KIND_APP,
    KIND_LOCK,
    KIND_RMW,
    WorkloadSignature,
)
from repro.workloads.micro import (
    CollocatedCriticalSection,
    ContendedCounter,
    NullCriticalSection,
)
from repro.workloads.splash import APP_MODELS


def config(n=16, fabric="bus"):
    return SystemConfig(n_processors=n, interconnect=fabric)


class TestFromWorkload:
    def test_null_cs(self):
        workload = NullCriticalSection(
            lock_kind="tts", acquires_per_proc=6, think_cycles=60
        )
        sig = WorkloadSignature.from_workload(workload, config(32), "iqolb")
        assert sig.kind == KIND_LOCK
        assert sig.workload == "null-cs"
        assert sig.primitive == "iqolb"
        assert sig.n_processors == 32
        assert sig.total_ops == 32 * 6
        assert (sig.cs_reads, sig.cs_writes) == (1, 1)
        assert sig.cs_accesses == 2
        assert sig.local_compute == 60
        assert not sig.collocated

    def test_collocated_cs(self):
        workload = CollocatedCriticalSection(
            lock_kind="qolb", acquires_per_proc=4, think_cycles=10,
            data_words=4,
        )
        sig = WorkloadSignature.from_workload(workload, config(8), "qolb")
        assert sig.kind == KIND_LOCK
        assert sig.collocated
        assert sig.cs_reads == 4

    def test_contended_counter(self):
        workload = ContendedCounter(increments_per_proc=30, think_cycles=40)
        sig = WorkloadSignature.from_workload(
            workload, config(16, "directory"), "delayed"
        )
        assert sig.kind == KIND_RMW
        assert sig.fabric == "directory"
        assert sig.total_ops == 480

    def test_unknown_shape_returns_none(self):
        sig = WorkloadSignature.from_workload(object(), config(), "tts")
        assert sig is None


class TestAppSignatures:
    def test_from_app_model_matches_table2(self):
        model = APP_MODELS["ocean"]
        sig = WorkloadSignature.from_app_model(
            model, primitive="tts", fabric="bus", n_processors=32
        )
        assert sig.kind == KIND_APP
        assert sig.workload == "ocean"
        assert sig.total_ops == model.total_work
        assert sig.n_locks == model.n_locks
        assert sig.hot_lock_fraction == model.hot_lock_fraction
        assert sig.phases == model.phases
        assert sig.serial_compute == model.serial_compute

    def test_app_signature_helper_matches_run_app_inputs(self):
        sig = app_signature(
            "radiosity", "iqolb", 16,
            config_overrides={"interconnect": "directory"},
        )
        assert sig.kind == KIND_APP
        assert sig.primitive == "iqolb"
        assert sig.fabric == "directory"
        assert sig.n_processors == 16


class TestSpecsAndSerialization:
    def test_cellspec_signature_uses_shared_extraction(self):
        spec = CellSpec(
            key=("tts", 8),
            primitive="tts",
            config=config(8),
            workload=FactorySpec(
                lambda lock_kind: NullCriticalSection(
                    lock_kind=lock_kind, acquires_per_proc=3, think_cycles=5
                ),
                "tts",
            ),
        )
        sig = spec.signature()
        assert sig == WorkloadSignature.micro_lock(
            "tts", fabric="bus", n_processors=8, acquires_per_proc=3,
            think_cycles=5,
        )

    def test_appspec_signature(self):
        spec = CellSpec(
            key=("barnes", "qolb"),
            primitive="qolb",
            config=config(32),
            workload=AppSpec("barnes", "qolb"),
        )
        sig = spec.signature()
        assert sig.kind == KIND_APP
        assert sig.workload == "barnes"

    def test_dict_roundtrip(self):
        sig = WorkloadSignature.micro_lock("iqolb", n_processors=64)
        assert WorkloadSignature.from_dict(sig.to_dict()) == sig

    def test_from_dict_ignores_unknown_fields(self):
        data = WorkloadSignature.micro_lock("tts").to_dict()
        data["future_field"] = "whatever"
        assert WorkloadSignature.from_dict(data).primitive == "tts"

    def test_with_override(self):
        sig = WorkloadSignature.micro_lock("tts", n_processors=16)
        wider = sig.with_(n_processors=128)
        assert wider.n_processors == 128
        assert wider.primitive == sig.primitive

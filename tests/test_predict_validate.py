"""Validation harness + calibration + schema plumbing for repro.predict.

Runs the real fit against the committed benchmark artifacts and holds
the subsystem to the CI gates it advertises: mean relative error within
bounds, taxonomy ordering preserved, artifact schema-clean (including
through gzip), calibration round-trippable.
"""

from __future__ import annotations

import gzip
import json
import pathlib

import pytest

from repro.predict import (
    check_gates,
    fit_from_artifacts,
    load_calibration,
    load_observed_cells,
    predict,
    save_calibration,
    validate_artifacts,
    write_report,
)
from repro.predict.validate import SCHEMA
from repro.telemetry import SchemaError, infer_schema_path, validate_file

ROOT = pathlib.Path(__file__).resolve().parents[1]
SCHEMA_PATH = ROOT / "tests" / "schemas" / "predict_error.schema.json"

pytestmark = pytest.mark.skipif(
    not (ROOT / "results" / "BENCH_table3.json").exists(),
    reason="committed benchmark artifacts not present",
)


@pytest.fixture(scope="module")
def report():
    return validate_artifacts(ROOT)


@pytest.fixture(scope="module")
def params():
    return fit_from_artifacts(ROOT)


class TestObservedCells:
    def test_registry_matches_artifact_identities(self):
        """The bench constants baked into the registry must agree with
        what the artifacts say each cell ran."""
        cells = load_observed_cells(ROOT)
        assert len(cells) >= 50
        for cell in cells:
            sig = cell.signature
            assert sig.n_processors >= 1
            assert cell.observed_cycles > 0
            if cell.artifact == "directory_scaling":
                fabric, primitive, n = cell.key
                assert sig.fabric == fabric
                assert sig.primitive == primitive
                assert sig.n_processors == n
                assert sig.workload == "null-cs"
            elif cell.artifact == "fig1_taxonomy":
                primitive, shape = cell.key
                assert sig.primitive == primitive
                assert sig.kind == ("rmw" if shape == "rmw" else "lock")
                assert sig.n_processors == 16
            else:
                app, _label = cell.key
                assert sig.workload == app
                assert sig.kind == "app"


class TestGates:
    def test_meets_advertised_error_and_ordering_gates(self, report):
        assert check_gates(report) == []
        assert report.mean_abs_rel_error <= 0.25
        assert report.ordering_agreement >= 0.90
        assert len(report.ordering) >= 5

    def test_gates_fail_when_thresholds_are_unreachable(self, report):
        problems = check_gates(
            report, max_mean_error=0.0, min_agreement=1.01
        )
        assert len(problems) == 2

    def test_observed_ordering_holds_everywhere(self, report):
        """The simulator itself satisfies tts > delayed > iqolb on every
        lock-shaped group — a broken group would mean the registry
        paired the wrong cells."""
        assert all(group.observed_ordered for group in report.ordering)


class TestArtifact:
    def test_payload_schema_roundtrip(self, tmp_path, report):
        out = tmp_path / "BENCH_predict_error.summary.json"
        write_report(report, out)
        assert validate_file(out, SCHEMA_PATH) == 1

    def test_payload_schema_roundtrip_gzipped(self, tmp_path, report):
        out = tmp_path / "BENCH_predict_error.summary.json.gz"
        payload = json.dumps(report.payload()).encode("utf-8")
        out.write_bytes(gzip.compress(payload))
        assert validate_file(out, SCHEMA_PATH) == 1

    def test_schema_is_inferred_from_document(self, tmp_path, report):
        out = tmp_path / "report.json"
        write_report(report, out)
        assert infer_schema_path(out) == SCHEMA_PATH
        assert json.loads(out.read_text())["schema"] == SCHEMA

    def test_unregistered_schema_is_an_error(self, tmp_path):
        out = tmp_path / "odd.json"
        out.write_text(json.dumps({"schema": "nobody-knows/9"}))
        with pytest.raises(SchemaError):
            infer_schema_path(out)

    def test_committed_artifact_is_current(self, report):
        """The committed error report must match a fresh fit — CI
        regenerates and diffs, this is the local early warning."""
        committed_path = ROOT / "results" / "BENCH_predict_error.summary.json"
        if not committed_path.exists():
            pytest.skip("error artifact not committed yet")
        committed = json.loads(committed_path.read_text())
        assert committed["summary"] == report.payload()["summary"]


class TestCalibration:
    def test_save_load_roundtrip(self, tmp_path, params):
        path = tmp_path / "calibration.json"
        save_calibration(params, path)
        restored = load_calibration(path)
        assert restored.to_dict() == params.to_dict()

    def test_fitted_curves_reproduce_micro_cells(self, params):
        """Each fitted curve must land close on its own fit points."""
        for cell in load_observed_cells(ROOT):
            if cell.signature.kind == "app":
                continue
            predicted = predict(cell.signature, params).cycles
            rel = abs(predicted - cell.observed_cycles) / cell.observed_cycles
            assert rel < 0.15, (cell.artifact, cell.key, rel)

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro import System, SystemConfig

# Shared Hypothesis profiles for the suite's property tests: few, slow
# examples (each drives a whole simulated system), no deadline.  The
# "ci" profile pins the example sequence (derandomize) and prints the
# reproduction blob so a red CI run is replayable locally; select it
# with HYPOTHESIS_PROFILE=ci.
settings.register_profile(
    "repro",
    max_examples=10,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        # the interconnect fixture is a constant string per test id
        HealthCheck.function_scoped_fixture,
    ],
)
settings.register_profile(
    "ci",
    settings.get_profile("repro"),
    derandomize=True,
    print_blob=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))

#: the active profile, applied as a decorator by the property tests
prop_settings = settings.get_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "repro")
)


def small_config(n_processors: int = 2, policy: str = "baseline", **overrides):
    """A small, fast system configuration for unit-level runs."""
    config = SystemConfig(
        n_processors=n_processors,
        policy=policy,
        max_cycles=20_000_000,
    )
    if overrides:
        config = config.with_(**overrides)
    return config


def build_system(n_processors: int = 2, policy: str = "baseline", **overrides):
    return System(small_config(n_processors, policy, **overrides))


def run_programs(system: System, programs) -> int:
    """Load one program per processor and run to completion."""
    for node, program in enumerate(programs):
        system.load_program(node, program)
    return system.run()


def single_op_program(ops):
    """A program that executes a fixed list of ops, collecting results."""
    results = []

    def program():
        for op in ops:
            value = yield op
            results.append(value)

    return program(), results


@pytest.fixture(params=[
    "baseline",
    "aggressive",
    "delayed",
    "delayed+retention",
    "iqolb",
    "iqolb+retention",
    "qolb",
])
def any_policy(request):
    """Parametrize a test over every protocol policy."""
    return request.param


@pytest.fixture(params=["baseline", "delayed", "iqolb", "qolb"])
def main_policy(request):
    """The four principal protocol variants."""
    return request.param


@pytest.fixture(params=["bus", "directory"])
def interconnect(request):
    """Parametrize a test over both coherence fabrics."""
    return request.param

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import System, SystemConfig


def small_config(n_processors: int = 2, policy: str = "baseline", **overrides):
    """A small, fast system configuration for unit-level runs."""
    config = SystemConfig(
        n_processors=n_processors,
        policy=policy,
        max_cycles=20_000_000,
    )
    if overrides:
        config = config.with_(**overrides)
    return config


def build_system(n_processors: int = 2, policy: str = "baseline", **overrides):
    return System(small_config(n_processors, policy, **overrides))


def run_programs(system: System, programs) -> int:
    """Load one program per processor and run to completion."""
    for node, program in enumerate(programs):
        system.load_program(node, program)
    return system.run()


def single_op_program(ops):
    """A program that executes a fixed list of ops, collecting results."""
    results = []

    def program():
        for op in ops:
            value = yield op
            results.append(value)

    return program(), results


@pytest.fixture(params=[
    "baseline",
    "aggressive",
    "delayed",
    "delayed+retention",
    "iqolb",
    "iqolb+retention",
    "qolb",
])
def any_policy(request):
    """Parametrize a test over every protocol policy."""
    return request.param


@pytest.fixture(params=["baseline", "delayed", "iqolb", "qolb"])
def main_policy(request):
    """The four principal protocol variants."""
    return request.param


@pytest.fixture(params=["bus", "directory"])
def interconnect(request):
    """Parametrize a test over both coherence fabrics."""
    return request.param

"""Unit tests for the protocol policies' decision logic.

These test the *decisions* against real controllers embedded in tiny
systems, by inspecting policy behaviour right at the decision points.
"""

import pytest

from conftest import build_system
from repro.core.baseline import AggressiveBaselinePolicy, BaselinePolicy
from repro.core.delayed import DelayedResponsePolicy
from repro.core.iqolb import IqolbPolicy
from repro.core.policy import ProtocolPolicy
from repro.core.qolb import QolbPolicy
from repro.core.registry import make_policy, policy_names
from repro.cpu.ops import LL
from repro.interconnect.messages import BusOp, BusTransaction
from repro.mem.line import CacheLine, State


class TestRegistry:
    def test_names(self):
        assert policy_names() == [
            "baseline",
            "aggressive",
            "delayed",
            "delayed+retention",
            "iqolb",
            "iqolb+retention",
            "iqolb+gen",
            "adaptive",
            "qolb",
        ]

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_policy("nope")

    @pytest.mark.parametrize("name", [
        "baseline", "aggressive", "delayed", "delayed+retention",
        "iqolb", "iqolb+retention", "qolb",
    ])
    def test_factory_builds_fresh_instances(self, name):
        a = make_policy(name)
        b = make_policy(name)
        assert a is not b
        assert a.name == name

    def test_retention_flags(self):
        assert not make_policy("delayed").queue_retention
        assert make_policy("delayed+retention").queue_retention
        assert not make_policy("iqolb").queue_retention
        assert make_policy("iqolb+retention").queue_retention

    def test_timeout_override(self):
        policy = make_policy("iqolb", timeout_cycles=123)
        assert policy.timeout_cycles == 123


class TestLlMissOps:
    def test_baseline_reads_shared(self):
        assert BaselinePolicy().ll_miss_op(LL(0x100)) is BusOp.GETS

    def test_aggressive_reads_for_ownership(self):
        assert AggressiveBaselinePolicy().ll_miss_op(LL(0x100)) is BusOp.GETX

    def test_delayed_uses_lprfo(self):
        assert DelayedResponsePolicy().ll_miss_op(LL(0x100)) is BusOp.LPRFO

    def test_iqolb_uses_lprfo(self):
        assert IqolbPolicy().ll_miss_op(LL(0x100)) is BusOp.LPRFO

    def test_qolb_plain_ll_is_baseline(self):
        assert QolbPolicy().ll_miss_op(LL(0x100)) is BusOp.GETS


def bound_policy(policy_name):
    """A policy attached to a live controller (node 0 of a tiny system)."""
    system = build_system(n_processors=2, policy=policy_name)
    controller = system.controllers[0]
    return controller.policy, controller


def make_line(addr=0x1000, state=State.MODIFIED):
    return CacheLine(addr, state, [0] * 16)


class TestShouldDefer:
    def test_base_policy_never_defers(self):
        policy, _ = bound_policy("baseline")
        txn = BusTransaction(BusOp.LPRFO, 0x1000, 1)
        decision = policy.should_defer(txn, make_line())
        assert not decision.defer

    def test_delayed_defers_only_with_live_link(self):
        policy, ctrl = bound_policy("delayed")
        txn = BusTransaction(BusOp.LPRFO, 0x1000, 1)
        assert not policy.should_defer(txn, make_line()).defer
        ctrl.link_valid = True
        ctrl.link_addr = 0x1004
        decision = policy.should_defer(txn, make_line())
        assert decision.defer and not decision.tearoff

    def test_delayed_link_on_other_line_does_not_defer(self):
        policy, ctrl = bound_policy("delayed")
        ctrl.link_valid = True
        ctrl.link_addr = 0x2000
        txn = BusTransaction(BusOp.LPRFO, 0x1000, 1)
        assert not policy.should_defer(txn, make_line()).defer

    def test_iqolb_fetchphi_defers_without_tearoff(self):
        policy, ctrl = bound_policy("iqolb")
        ctrl.link_valid = True
        ctrl.link_addr = 0x1000
        ctrl.current_ll_pc = 0x42  # unknown PC -> Fetch&Phi
        txn = BusTransaction(BusOp.LPRFO, 0x1000, 1)
        decision = policy.should_defer(txn, make_line())
        assert decision.defer and not decision.tearoff

    def test_iqolb_predicted_lock_defers_with_tearoff(self):
        policy, ctrl = bound_policy("iqolb")
        policy.predictor.train_lock(0x42)
        ctrl.link_valid = True
        ctrl.link_addr = 0x1000
        ctrl.current_ll_pc = 0x42
        txn = BusTransaction(BusOp.LPRFO, 0x1000, 1)
        decision = policy.should_defer(txn, make_line())
        assert decision.defer and decision.tearoff

    def test_iqolb_held_lock_defers_with_tearoff(self):
        policy, ctrl = bound_policy("iqolb")
        policy.predictor.train_lock(0x42)
        policy.held.insert(0x1000, pc=0x42, now=0)
        txn = BusTransaction(BusOp.LPRFO, 0x1000, 1)
        decision = policy.should_defer(txn, make_line())
        assert decision.defer and decision.tearoff

    def test_iqolb_untrained_held_entry_is_training_only(self):
        policy, ctrl = bound_policy("iqolb")
        policy.held.insert(0x1000, pc=0x42, now=0)  # never trained
        txn = BusTransaction(BusOp.LPRFO, 0x1000, 1)
        assert not policy.should_defer(txn, make_line()).defer

    def test_qolb_defers_only_enq_on_held(self):
        policy, ctrl = bound_policy("qolb")
        policy.on_enqolb_acquired(0x1000)
        enq = BusTransaction(BusOp.QOLB_ENQ, 0x1000, 1)
        lprfo = BusTransaction(BusOp.LPRFO, 0x1000, 1)
        assert policy.should_defer(enq, make_line()).defer
        assert not policy.should_defer(lprfo, make_line()).defer


class TestReleaseHooks:
    def test_base_discharges_at_sc(self):
        assert ProtocolPolicy().on_sc_success(0x1000, 0) is True

    def test_delayed_discharges_at_sc(self):
        policy, _ = bound_policy("delayed")
        assert policy.on_sc_success(0x1000, 0x42) is True

    def test_iqolb_holds_predicted_locks(self):
        policy, _ = bound_policy("iqolb")
        policy.predictor.train_lock(0x42)
        assert policy.on_sc_success(0x1000, 0x42) is False

    def test_iqolb_releases_fetchphi_at_sc(self):
        policy, _ = bound_policy("iqolb")
        assert policy.on_sc_success(0x1000, 0x99) is True

    def test_iqolb_store_release_trains(self):
        policy, _ = bound_policy("iqolb")
        assert policy.on_sc_success(0x1000, 0x42) is True  # untrained yet
        assert policy.on_store_complete(0x1000, 0) is True  # the release
        assert policy.predictor.predict_lock(0x42)

    def test_iqolb_store_to_unheld_addr_is_not_release(self):
        policy, _ = bound_policy("iqolb")
        assert policy.on_store_complete(0x1000, 0) is False

    def test_iqolb_collocated_store_is_not_release(self):
        policy, _ = bound_policy("iqolb")
        policy.on_sc_success(0x1000, 0x42)
        assert policy.on_store_complete(0x1004, 0) is False  # same line!
        assert policy.on_store_complete(0x1000, 0) is True

    def test_qolb_held_tracking(self):
        policy, ctrl = bound_policy("qolb")
        policy.on_enqolb_acquired(0x1004)
        assert policy.tearoff_for_read(0x1000)
        policy.on_deqolb(0x1004)
        assert not policy.tearoff_for_read(0x1000)

    def test_qolb_two_locks_one_line(self):
        policy, _ = bound_policy("qolb")
        policy.on_enqolb_acquired(0x1000)
        policy.on_enqolb_acquired(0x1004)
        policy.on_deqolb(0x1000)
        assert policy.tearoff_for_read(0x1000)  # second lock still held
        policy.on_deqolb(0x1004)
        assert not policy.tearoff_for_read(0x1000)

    def test_iqolb_tearoff_for_read_requires_trained_hold(self):
        policy, _ = bound_policy("iqolb")
        policy.held.insert(0x1000, pc=0x42, now=0)
        assert not policy.tearoff_for_read(0x1000)
        policy.predictor.train_lock(0x42)
        assert policy.tearoff_for_read(0x1000)

"""Tests for the paper's described-but-unevaluated mechanisms:

* the conservative hybrid ("adaptive": RFO on the first LL after a
  successful SC, paper §3.1), and
* Generalized IQOLB (forwarding the critical section's protected data
  lines with the released lock, paper §6).
"""

from conftest import build_system, run_programs
from repro.cpu.ops import LL, SC, Compute, Read, Write
from repro.sync import TTSLock, fetch_and_add


class TestAdaptivePolicy:
    def test_uncontended_rmw_single_transaction(self):
        system = build_system(1, "adaptive")
        addr = system.layout.alloc_line()

        def program():
            for _ in range(5):
                value = yield LL(addr, pc=1)
                ok = yield SC(addr, value + 1, pc=1)
                assert ok
                yield Compute(10)

        run_programs(system, [program()])
        # First LL fetched exclusive (armed); everything else local.
        assert system.stats.value("bus.transactions") == 1
        assert system.stats.value("bus.GetX") == 1

    def test_livelock_free_under_contention(self):
        """Unlike 'aggressive', the hybrid always completes: a failed SC
        de-arms the speculation so the next attempt is baseline."""
        system = build_system(4, "adaptive", max_cycles=10_000_000)
        addr = system.layout.alloc_line()

        def program():
            for _ in range(8):
                while True:
                    value = yield LL(addr, pc=1)
                    yield Compute(60)  # the livelock-inducing window
                    ok = yield SC(addr, value + 1, pc=1)
                    if ok:
                        break
                    yield Compute(5)
                yield Compute(15)

        run_programs(system, [program() for _ in range(4)])
        assert system.read_word(addr) == 32

    def test_failure_dearms_until_next_success(self):
        system = build_system(2, "adaptive")
        policy = system.controllers[0].policy
        assert policy._rfo_armed is True
        from repro.cpu.ops import LL as LLOp

        assert policy.ll_miss_op(LLOp(0x100)).value == "GetX"
        assert policy.ll_miss_op(LLOp(0x100)).value == "GetS"  # consumed
        policy.on_sc_success(0x100, 1)
        assert policy.ll_miss_op(LLOp(0x100)).value == "GetX"  # re-armed


def generalized_run(policy, n=4, iters=10, data_lines=2):
    system = build_system(n, policy)
    lock = TTSLock(system.layout.alloc_line())
    data = [system.layout.alloc_line() for _ in range(data_lines)]

    def worker():
        for _ in range(iters):
            yield from lock.acquire()
            for addr in data:
                value = yield Read(addr)
                yield Write(addr, value + 1)
            yield from lock.release()
            yield Compute(80)

    run_programs(system, [worker() for _ in range(n)])
    for addr in data:
        assert system.read_word(addr) == n * iters
    return system


class TestGeneralizedIqolb:
    def test_correctness_with_pushes(self):
        system = generalized_run("iqolb+gen")
        assert system.total("pushes_sent") > 0
        assert system.total("pushes_received") > 0

    def test_pushes_are_acked(self):
        system = generalized_run("iqolb+gen")
        # Every forwarded marker was eventually cleared by an ack.
        for controller in system.controllers:
            assert controller.forwarded == {}

    def test_plain_iqolb_never_pushes(self):
        system = generalized_run("iqolb")
        assert system.total("pushes_sent") == 0

    def test_pushing_reduces_traffic(self):
        plain = generalized_run("iqolb", iters=12, data_lines=3)
        gen = generalized_run("iqolb+gen", iters=12, data_lines=3)
        assert (
            gen.stats.value("bus.transactions")
            < plain.stats.value("bus.transactions")
        )

    def test_collocated_data_not_pushed(self):
        """Data in the lock's own line rides the hand-off anyway."""
        system = build_system(3, "iqolb+gen")
        lock_line = system.layout.alloc_words_in_line(3)
        lock = TTSLock(lock_line[0])
        data = lock_line[1]

        def worker():
            for _ in range(8):
                yield from lock.acquire()
                value = yield Read(data)
                yield Write(data, value + 1)
                yield from lock.release()
                yield Compute(60)

        run_programs(system, [worker() for _ in range(3)])
        assert system.read_word(data) == 24
        assert system.total("pushes_sent") == 0

    def test_learned_set_is_bounded(self):
        """Only the most recent protected lines are forwarded."""
        system = build_system(2, "iqolb+gen")
        policy = system.controllers[0].policy
        assert policy.protected_capacity == 4

    def test_fetchphi_traffic_unaffected(self):
        system = build_system(4, "iqolb+gen")
        counter = system.layout.alloc_line()

        def program():
            for _ in range(8):
                yield from fetch_and_add(counter, 1)
                yield Compute(40)

        run_programs(system, [program() for _ in range(4)])
        assert system.read_word(counter) == 32
        assert system.total("pushes_sent") == 0

"""Sanity properties of the analytical prediction model.

The closed-form models must behave like physics before they can be
trusted as calibrated curve fits: throughput cannot rise when critical
sections lengthen, a serial section bounds system throughput no matter
how many processors compete, and with one processor every primitive
degenerates to the same uncontended rate (the hand-off machinery is
idle).  Hypothesis drives the signature space; the model is pure
arithmetic, so these run in milliseconds with no simulator.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.harness.signature import KIND_LOCK, WorkloadSignature
from repro.predict import CalibrationParams, default_params, predict
from repro.predict.model import PRIMITIVE_CLASS, CostCurve

#: model arithmetic is fast — allow more examples than the simulator suite
model_settings = settings(max_examples=60, deadline=None)

PRIMITIVES = sorted(PRIMITIVE_CLASS)
FABRICS = ("bus", "directory")


def lock_signature(
    primitive: str,
    fabric: str,
    n: int,
    cs_compute: int = 0,
    local: int = 100,
) -> WorkloadSignature:
    return WorkloadSignature(
        kind=KIND_LOCK,
        workload="null-cs",
        primitive=primitive,
        fabric=fabric,
        n_processors=n,
        total_ops=n * 20,
        n_locks=1,
        cs_reads=1,
        cs_writes=1,
        cs_compute=cs_compute,
        local_compute=local,
    )


signature_params = st.tuples(
    st.sampled_from(PRIMITIVES),
    st.sampled_from(FABRICS),
    st.integers(min_value=1, max_value=128),
    st.integers(min_value=0, max_value=300),
    st.integers(min_value=0, max_value=2000),
)


class TestModelProperties:
    @model_settings
    @given(params=signature_params, delta=st.integers(1, 200))
    def test_throughput_monotone_in_cs_length(self, params, delta):
        """Lengthening the critical section never raises throughput."""
        primitive, fabric, n, cs, local = params
        shorter = predict(lock_signature(primitive, fabric, n, cs, local))
        longer = predict(
            lock_signature(primitive, fabric, n, cs + delta, local)
        )
        assert longer.throughput <= shorter.throughput * (1 + 1e-9)

    @model_settings
    @given(params=signature_params)
    def test_throughput_bounded_by_serial_section(self, params):
        """A critical section is serial: system throughput can never
        exceed one operation per CS occupancy, however wide the machine."""
        primitive, fabric, n, cs, local = params
        prediction = predict(lock_signature(primitive, fabric, n, cs, local))
        cs_length = max(1, cs + 2)  # compute + the two body accesses
        assert prediction.throughput <= 1000.0 / cs_length + 1e-9

    @model_settings
    @given(
        fabric=st.sampled_from(FABRICS),
        cs=st.integers(0, 300),
        local=st.integers(0, 2000),
    )
    def test_all_primitives_converge_at_one_processor(self, fabric, cs, local):
        """With no contention the choice of primitive is irrelevant —
        every model must degrade to the identical uncontended rate."""
        rates = {
            predict(lock_signature(prim, fabric, 1, cs, local)).throughput
            for prim in PRIMITIVES
        }
        assert len(rates) == 1
        prediction = predict(lock_signature("tts", fabric, 1, cs, local))
        assert prediction.regime == "compute-bound"
        assert prediction.handoff_cycles == 0.0

    @model_settings
    @given(
        params=signature_params,
        extra=st.integers(min_value=1, max_value=64),
    )
    def test_throughput_never_negative_and_finite(self, params, extra):
        primitive, fabric, n, cs, local = params
        prediction = predict(lock_signature(primitive, fabric, n, cs, local))
        assert 0.0 < prediction.throughput < 1e6
        assert prediction.cycles > 0.0
        assert 0.0 <= prediction.effective_waiters <= n


class TestParamsPlumbing:
    def test_default_params_cover_both_fabrics(self):
        params = default_params()
        for fabric in FABRICS:
            assert params.transfer_for(fabric) > 0
            sig = lock_signature("mcs", fabric, 8)
            assert params.curve_for(sig).c0 > 0

    def test_calibration_roundtrip(self):
        params = default_params()
        params.lock_curves[("bus", "tts")] = CostCurve(100.0, 7.5, 1.25)
        restored = CalibrationParams.from_dict(params.to_dict())
        assert restored.to_dict() == params.to_dict()

    def test_grid_is_simulation_free_and_fast(self):
        import time

        params = default_params()
        start = time.perf_counter()
        count = 0
        for fabric in FABRICS:
            for primitive in ("tts", "aggressive", "delayed", "iqolb", "qolb"):
                n = 1
                while n <= 128:
                    predict(lock_signature(primitive, fabric, n), params)
                    count += 1
                    n *= 2
        elapsed = time.perf_counter() - start
        assert count == 80
        assert elapsed < 5.0

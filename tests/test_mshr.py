"""MSHR life-cycle tests: allocation, waiter merge, release, races.

The allocation and release paths run constantly under every workload;
the interesting cases are the queued-LPRFO merge (a second CPU op
attaching to an open MSHR) and the miss-decision/issue window races the
directory backend made reachable — a line landing, or an upgrade's
shared copy dying, between the miss decision and ``_start_miss``.
"""

import pytest

from conftest import build_system, run_programs
from repro.coherence.mshr import Mshr
from repro.cpu.ops import Read, Write
from repro.interconnect.messages import BusOp
from repro.mem.line import State


class TestMshrUnit:
    def test_fresh_mshr_flags(self):
        op = Write(0x100, 1)
        mshr = Mshr(0x100, op, lambda v: None, start_time=7)
        assert mshr.line_addr == 0x100
        assert mshr.cpu_op is op
        assert mshr.has_waiter
        assert not mshr.issued
        assert not mshr.queued
        assert not mshr.tearoff_done
        assert mshr.start_time == 7

    def test_take_waiter_detaches_callback_and_op(self):
        hits = []
        op = Read(0x40)
        mshr = Mshr(0x40, op, hits.append, start_time=0)
        cb = mshr.take_waiter()
        cb("filled")
        assert hits == ["filled"]
        assert not mshr.has_waiter
        assert mshr.cpu_op is None
        assert mshr.pending_op is op  # remembered for fill completion
        # A second take finds nothing to detach.
        assert mshr.take_waiter() is None


class TestAllocationAndRelease:
    def test_miss_allocates_and_fill_releases(self):
        """Every MSHR opened during a run is retired by its fill."""
        system = build_system(2, "baseline")
        a = system.layout.alloc_line()
        b = system.layout.alloc_line()

        def writer(addr, value):
            def program():
                yield Write(addr, value)
                yield Read(addr)
            return program()

        run_programs(system, [writer(a, 3), writer(b, 4)])
        assert system.read_word(a) == 3
        assert system.read_word(b) == 4
        for controller in system.controllers:
            assert not controller.mshrs  # all released

    def test_contended_run_releases_every_mshr(self, any_policy):
        """No policy leaks MSHRs under a contended read/write mix."""
        system = build_system(3, any_policy)
        addr = system.layout.alloc_line()

        def program():
            for _ in range(4):
                yield Write(addr, 1)
                yield Read(addr)

        run_programs(system, [program() for _ in range(3)])
        for controller in system.controllers:
            assert not controller.mshrs


class TestWaiterMerge:
    """A queued MSHR (tear-off already unblocked the CPU) accepts one —
    and only one — newly blocked CPU operation."""

    def _queued_mshr(self, system, line_addr):
        mshr = Mshr(line_addr, None, None, start_time=0)
        mshr.bus_op = BusOp.LPRFO
        mshr.queued = True
        system.controllers[0].mshrs[line_addr] = mshr
        return mshr

    def test_second_op_attaches_to_queued_mshr(self):
        system = build_system(2, "iqolb")
        controller = system.controllers[0]
        addr = system.layout.alloc_line()
        line_addr = system.amap.line_addr(addr)
        mshr = self._queued_mshr(system, line_addr)

        op = Write(addr, 9)
        done = []
        controller._start_miss(op, done.append, BusOp.GETX)
        assert controller.mshrs[line_addr] is mshr  # merged, not replaced
        assert mshr.cpu_op is op
        assert mshr.has_waiter
        assert not done  # still blocked until the line arrives

    def test_two_blocked_ops_is_a_protocol_bug(self):
        system = build_system(2, "iqolb")
        controller = system.controllers[0]
        addr = system.layout.alloc_line()
        line_addr = system.amap.line_addr(addr)
        self._queued_mshr(system, line_addr)

        controller._start_miss(Write(addr, 1), lambda v: None, BusOp.GETX)
        with pytest.raises(RuntimeError, match="second blocked op"):
            controller._start_miss(Write(addr, 2), lambda v: None, BusOp.GETX)


class TestMissWindowRaces:
    """The re-peek races in ``_start_miss`` (fixed alongside the
    directory backend): the decision to miss is made at lookup time, but
    the world can change before the MSHR is allocated."""

    def test_line_landed_during_miss_setup(self):
        """A writable line that arrived mid-setup is served locally:
        no MSHR, no bus transaction."""
        system = build_system(2, "baseline")
        controller = system.controllers[0]
        addr = system.layout.alloc_line()

        def program():
            yield Write(addr, 5)  # M owner

        run_programs(system, [program(), iter([])])
        getx_before = system.stats.value("bus.GetX")

        done = []
        controller._start_miss(Write(addr, 6), done.append, BusOp.GETX)
        system.sim.run()
        assert done  # completed without a new miss
        assert not controller.mshrs
        assert system.stats.value("bus.GetX") == getx_before
        assert system.read_word(addr) == 6

    def test_upgrade_without_copy_falls_back_to_getx(self):
        """An UPGRADE whose shared-copy premise died re-dispatches (a
        store becomes a full GETX) instead of issuing an ungrantable,
        unsquashable upgrade."""
        system = build_system(2, "baseline")
        controller = system.controllers[0]
        addr = system.layout.alloc_line()
        getx_before = system.stats.value("bus.GetX")
        upgrades_before = system.stats.value("bus.Upgrade")

        done = []
        controller._start_miss(Write(addr, 8), done.append, BusOp.UPGRADE)
        system.sim.run()
        assert done
        assert system.stats.value("bus.Upgrade") == upgrades_before
        assert system.stats.value("bus.GetX") == getx_before + 1
        assert controller.hierarchy.state_of(addr) is State.MODIFIED
        assert system.read_word(addr) == 8
        assert not controller.mshrs

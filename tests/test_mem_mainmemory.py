"""Unit tests for the DRAM model."""

from hypothesis import given, strategies as st

from repro.mem.address import AddressMap
from repro.mem.mainmemory import MainMemory


def make_memory(line_bytes=64):
    return MainMemory(AddressMap(line_bytes))


class TestTiming:
    def test_table1_line_latency(self):
        # 40 cycles first 8-byte chunk + 7 * 4 for the rest of a 64B line.
        assert make_memory().line_latency() == 68

    def test_latency_scales_with_line_size(self):
        memory = MainMemory(AddressMap(128))
        assert memory.line_latency() == 40 + 15 * 4


class TestData:
    def test_uninitialised_reads_zero(self):
        memory = make_memory()
        assert memory.read_word(0x1234 & ~3) == 0
        assert memory.read_line(0x100) == [0] * 16

    def test_word_roundtrip(self):
        memory = make_memory()
        memory.write_word(0x104, 77)
        assert memory.read_word(0x104) == 77

    def test_line_roundtrip(self):
        memory = make_memory()
        data = list(range(16))
        memory.write_line(0x100, data)
        assert memory.read_line(0x100) == data
        # read returns a copy
        got = memory.read_line(0x100)
        got[0] = 999
        assert memory.read_word(0x100) == 0

    def test_line_write_wrong_size_rejected(self):
        memory = make_memory()
        try:
            memory.write_line(0x100, [1, 2, 3])
        except ValueError:
            return
        raise AssertionError("expected ValueError")

    def test_word_and_line_views_consistent(self):
        memory = make_memory()
        memory.write_word(0x108, 5)
        line = memory.read_line(0x100)
        assert line[2] == 5

    @given(st.dictionaries(
        st.integers(min_value=0, max_value=255).map(lambda i: i * 4),
        st.integers(min_value=-2**31, max_value=2**31 - 1),
        max_size=30,
    ))
    def test_many_word_writes(self, writes):
        memory = make_memory()
        for addr, value in writes.items():
            memory.write_word(addr, value)
        for addr, value in writes.items():
            assert memory.read_word(addr) == value

"""Integration tests for the delayed-response scheme (paper §3.2)."""

from conftest import build_system, run_programs
from repro.cpu.ops import LL, SC, Compute, Read, Write


def concurrent_rmw(system, addr, n, iters, window=30):
    def program():
        for _ in range(iters):
            while True:
                value = yield LL(addr, pc=0xD1)
                yield Compute(window)
                ok = yield SC(addr, value + 1, pc=0xD1)
                if ok:
                    break
            yield Compute(10)

    run_programs(system, [program() for _ in range(n)])


class TestQueueFormation:
    def test_deferrals_and_handoffs(self):
        system = build_system(4, "delayed")
        addr = system.layout.alloc_line()
        concurrent_rmw(system, addr, 4, 8)
        assert system.read_word(addr) == 32
        assert system.total("deferrals") > 0
        assert system.total("handoff_sc") > 0
        assert system.total("successors_claimed") > 0

    def test_no_sc_failures_under_contention(self):
        system = build_system(4, "delayed")
        addr = system.layout.alloc_line()
        concurrent_rmw(system, addr, 4, 8)
        assert system.total("sc_fail") == 0

    def test_single_transaction_per_rmw(self):
        system = build_system(4, "delayed")
        addr = system.layout.alloc_line()
        concurrent_rmw(system, addr, 4, 8)
        # One LPRFO at most per RMW; no upgrades needed.
        assert system.stats.value("bus.LPRFO") <= 32
        assert system.stats.value("bus.Upgrade") == 0

    def test_queue_order_matches_bus_order(self):
        """The line passes 'in precisely the order in which the original
        requests occurred' (paper §3.2)."""
        events = []

        def tracer(event, time, node, la, info):
            if event in ("queued", "fill"):
                events.append((event, node, time))

        from repro import System
        from conftest import small_config

        system = System(small_config(4, "delayed"), tracer=tracer)
        addr = system.layout.alloc_line()
        target = system.amap.line_addr(addr)
        concurrent_rmw(system, addr, 4, 3)
        # For each wave: nodes that queued earlier fill earlier.
        queued = [(t, n) for e, n, t in events if e == "queued"]
        assert queued  # the queue really formed


class TestTimeout:
    def test_timeout_forwards_line(self):
        """A holder that never SCs is broken up by the timer."""
        system = build_system(2, "delayed", timeout_cycles=300)
        addr = system.layout.alloc_line()
        done = []

        def hog():
            yield LL(addr, pc=1)      # takes the line exclusively
            yield Compute(5_000)      # never SCs within the bound
            done.append("hog")

        def waiter():
            yield Compute(50)
            value = yield LL(addr, pc=2)
            ok = yield SC(addr, value + 1, pc=2)
            done.append(("waiter", ok))

        run_programs(system, [hog(), waiter()])
        assert system.total("timeouts") == 1
        assert system.total("handoff_timeout") == 1
        assert ("waiter", True) in done

    def test_generous_timeout_never_fires(self):
        system = build_system(4, "delayed", timeout_cycles=100_000)
        addr = system.layout.alloc_line()
        concurrent_rmw(system, addr, 4, 6)
        assert system.total("timeouts") == 0


class TestQueueBreakdown:
    def test_regular_store_breaks_queue(self):
        """A plain write (regular RFO) squashes waiting LPRFOs."""
        system = build_system(4, "delayed")
        addr = system.layout.alloc_line()

        def rmw(iters):
            def program():
                for _ in range(iters):
                    while True:
                        value = yield LL(addr, pc=1)
                        yield Compute(40)
                        ok = yield SC(addr, value + 1, pc=1)
                        if ok:
                            break
                    yield Compute(5)
            return program()

        def storer():
            for _ in range(6):
                yield Compute(120)
                yield Write(addr, 0)

        run_programs(system, [rmw(6), rmw(6), rmw(6), storer()])
        # The queue broke down at least once and re-formed.
        assert system.total("squashes") + system.total("queue_breakdowns") > 0

    def test_lock_usage_shows_the_weakness(self):
        """Paper §3.2: with locks, the delayed scheme forwards at SC —
        the next waiter receives a *held* lock and must wait again."""
        from repro.sync import TTSLock

        system = build_system(3, "delayed")
        lock = TTSLock(system.layout.alloc_line())
        token = system.layout.alloc_line()

        def worker():
            for _ in range(6):
                yield from lock.acquire()
                value = yield Read(token)
                yield Write(token, value + 1)
                yield from lock.release()
                yield Compute(40)

        run_programs(system, [worker() for _ in range(3)])
        assert system.read_word(token) == 18
        # The scheme cannot tell a lock from a Fetch&Phi: deferrals (if
        # any) discharge at SC time, never at the release store.
        assert system.total("handoff_release") == 0
        assert system.total("tearoffs_sent") == 0

"""Integration tests for the baseline and aggressive-baseline schemes
(paper §3.1, Figure 2)."""

from conftest import build_system, run_programs
from repro.cpu.ops import LL, SC, Compute


def rmw_loop(addr, iters, pc=0xB1, window=6):
    def program():
        for _ in range(iters):
            while True:
                value = yield LL(addr, pc=pc)
                yield Compute(window)
                ok = yield SC(addr, value + 1, pc=pc)
                if ok:
                    break
                yield Compute(5)
            yield Compute(15)

    return program()


class TestBaseline:
    def test_two_transactions_per_contended_rmw(self):
        system = build_system(2, "baseline")
        addr = system.layout.alloc_line()
        run_programs(system, [rmw_loop(addr, 8), rmw_loop(addr, 8)])
        assert system.read_word(addr) == 16
        updates = 16
        txns = system.stats.value("bus.transactions")
        assert txns >= 1.5 * updates  # the "2 network transactions" cost

    def test_contention_forces_retries(self):
        system = build_system(4, "baseline")
        addr = system.layout.alloc_line()
        run_programs(system, [rmw_loop(addr, 8) for _ in range(4)])
        assert system.read_word(addr) == 32
        assert system.total("sc_fail") > 0

    def test_uncontended_ll_fetches_shared_then_upgrades(self):
        system = build_system(1, "baseline")
        addr = system.layout.alloc_line()
        run_programs(system, [rmw_loop(addr, 1)])
        assert system.stats.value("bus.GetS") == 1
        # first SC on an E line needs no upgrade (memory granted E)
        assert system.stats.value("bus.Upgrade") == 0

    def test_never_defers_never_tears_off(self):
        system = build_system(4, "baseline")
        addr = system.layout.alloc_line()
        run_programs(system, [rmw_loop(addr, 6) for _ in range(4)])
        assert system.total("deferrals") == 0
        assert system.total("tearoffs_sent") == 0
        assert system.total("handoffs") == 0


class TestAggressiveBaseline:
    def test_single_transaction_when_uncontended(self):
        system = build_system(1, "aggressive")
        addr = system.layout.alloc_line()
        run_programs(system, [rmw_loop(addr, 5)])
        # First LL misses with a GetX; later LLs hit the retained M line.
        assert system.stats.value("bus.transactions") == 1
        assert system.total("sc_fail") == 0

    def test_correct_under_contention(self):
        system = build_system(4, "aggressive")
        addr = system.layout.alloc_line()
        run_programs(system, [rmw_loop(addr, 8) for _ in range(4)])
        assert system.read_word(addr) == 32

    def test_ll_issues_rfo_not_gets(self):
        system = build_system(2, "aggressive")
        addr = system.layout.alloc_line()
        run_programs(system, [rmw_loop(addr, 4), rmw_loop(addr, 4)])
        assert system.stats.value("bus.GetX") > 0
        assert system.stats.value("bus.GetS") == 0

    def test_contention_can_steal_lines_between_ll_and_sc(self):
        """The livelock exposure (paper Figure 1, frame 2): with wide
        LL->SC windows peers steal each other's exclusive copies.  Two
        legal outcomes: the run completes with failed SCs, or it
        livelocks outright and the runaway guard trips — "livelock can
        occur if there is any contention"."""
        from repro.engine.simulator import SimulationError

        system = build_system(4, "aggressive", max_cycles=2_000_000)
        addr = system.layout.alloc_line()
        try:
            run_programs(
                system,
                [rmw_loop(addr, 6, window=60) for _ in range(4)],
            )
        except SimulationError:
            # Genuine livelock, detected by the runaway guard; the SCs
            # must have been failing the whole time.
            assert system.total("sc_fail") > 0
            return
        assert system.read_word(addr) == 24
        assert system.total("sc_fail") > 0


class TestBaselineVsAggressiveTraffic:
    def test_aggressive_halves_uncontended_traffic(self):
        def run(policy):
            system = build_system(2, policy)
            addr_a = system.layout.alloc_line()
            addr_b = system.layout.alloc_line()
            # Disjoint counters: no contention, pure transaction count.
            run_programs(
                system, [rmw_loop(addr_a, 6), rmw_loop(addr_b, 6)]
            )
            return system.stats.value("bus.transactions")

        assert run("aggressive") <= run("baseline")

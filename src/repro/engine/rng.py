"""Deterministic random number generation for workloads.

All stochastic workload behaviour (compute-time draws, lock selection) goes
through :class:`WorkloadRng` so that a run is fully reproducible from its
seed, and so that per-thread streams are independent of thread interleaving.
"""

from __future__ import annotations

import random
from typing import Sequence


class WorkloadRng:
    """A seeded random stream with the handful of draws workloads need."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def spawn(self, index: int) -> "WorkloadRng":
        """Derive an independent per-thread stream.

        The derivation hashes the parent seed with the child index so the
        child stream does not depend on how many draws the parent made.
        """
        return WorkloadRng(self._rng.randrange(2**62) ^ (index * 0x9E3779B97F4A7C15))

    def uniform_int(self, low: int, high: int) -> int:
        """Inclusive uniform integer draw."""
        return self._rng.randint(low, high)

    def exponential_int(self, mean: float, minimum: int = 0) -> int:
        """Exponential draw rounded to an int, floored at ``minimum``."""
        return max(minimum, int(self._rng.expovariate(1.0 / mean)))

    def choice(self, options: Sequence[int]) -> int:
        return self._rng.choice(options)

    def weighted_choice(self, options: Sequence[int], weights: Sequence[float]) -> int:
        return self._rng.choices(options, weights=weights, k=1)[0]

    def random(self) -> float:
        return self._rng.random()

    def shuffled(self, items: Sequence[int]) -> list:
        shuffled = list(items)
        self._rng.shuffle(shuffled)
        return shuffled

"""Discrete-event simulation kernel: clock, events, stats, deterministic RNG."""

from repro.engine.event import Event, EventQueue
from repro.engine.rng import WorkloadRng
from repro.engine.simulator import SimulationError, Simulator
from repro.engine.stats import Counter, Histogram, StatsRegistry

__all__ = [
    "Counter",
    "Event",
    "EventQueue",
    "Histogram",
    "SimulationError",
    "Simulator",
    "StatsRegistry",
    "WorkloadRng",
]

"""The discrete-event simulation kernel.

Every hardware component in the simulated multiprocessor (bus, crossbar,
caches, memory, processors) schedules work on a single shared
:class:`Simulator`.  Time is measured in processor cycles, matching the
paper's Table 1 which expresses all latencies in processor cycles.
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Dict, Optional

from repro.engine.event import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent or runaway state."""


class Simulator:
    """Owns the clock and the event queue.

    The kernel is intentionally minimal: components interact only through
    scheduled callbacks, which keeps the global event order (and therefore
    the simulated coherence order) fully deterministic.
    """

    def __init__(self, max_cycles: int = 1_000_000_000) -> None:
        self.now = 0
        self.max_cycles = max_cycles
        self._queue = EventQueue()
        self._events_fired = 0
        self._running = False
        self._queue_high_water = 0
        self._host_seconds = 0.0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` ``delay`` cycles from now.

        ``delay`` must be non-negative; zero-delay events fire later in the
        current cycle, after all previously scheduled events for this cycle.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = self._queue.push(self.now + delay, callback, args, priority)
        if len(self._queue) > self._queue_high_water:
            self._queue_high_water = len(self._queue)
        return event

    def schedule_at(
        self,
        time: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        event = self._queue.push(time, callback, args, priority)
        if len(self._queue) > self._queue_high_water:
            self._queue_high_water = len(self._queue)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel an event previously returned by ``schedule``."""
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[Callable[[], bool]] = None) -> int:
        """Drain the event queue; return the final simulated time.

        ``until``, when provided, is evaluated after every event and stops
        the run early once it returns True.  A :class:`SimulationError` is
        raised if the clock passes ``max_cycles`` — the runaway guard that
        turns livelock (a real phenomenon for the aggressive-baseline
        protocol) into a detectable outcome instead of a hang.
        """
        self._running = True
        started = _time.perf_counter()
        try:
            while self._queue:
                event = self._queue.pop()
                if event is None:
                    break
                if event.time > self.max_cycles:
                    raise SimulationError(
                        f"simulation exceeded max_cycles={self.max_cycles} "
                        f"(possible livelock)"
                    )
                self.now = event.time
                self._events_fired += 1
                event.callback(*event.args)
                if until is not None and until():
                    break
        finally:
            self._running = False
            self._host_seconds += _time.perf_counter() - started
        return self.now

    def step(self) -> bool:
        """Fire a single event; return False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time > self.max_cycles:
            raise SimulationError(
                f"simulation exceeded max_cycles={self.max_cycles}"
            )
        self.now = event.time
        self._events_fired += 1
        event.callback(*event.args)
        return True

    @property
    def events_fired(self) -> int:
        return self._events_fired

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def queue_high_water(self) -> int:
        """The deepest the event queue has ever been."""
        return self._queue_high_water

    @property
    def host_seconds(self) -> float:
        """Host wall time spent inside :meth:`run` so far."""
        return self._host_seconds

    def self_metrics(self) -> Dict[str, float]:
        """The kernel's own health metrics, for manifests and reports."""
        per_s = (
            self._events_fired / self._host_seconds
            if self._host_seconds > 0
            else 0.0
        )
        return {
            "events_fired": self._events_fired,
            "queue_high_water": self._queue_high_water,
            "host_seconds": self._host_seconds,
            "events_per_host_s": per_s,
        }

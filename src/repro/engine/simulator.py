"""The discrete-event simulation kernel.

Every hardware component in the simulated multiprocessor (bus, crossbar,
caches, memory, processors) schedules work on a single shared
:class:`Simulator`.  Time is measured in processor cycles, matching the
paper's Table 1 which expresses all latencies in processor cycles.
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.engine.event import CalendarEventQueue, Event, EventQueue

#: recognised values for ``Simulator(engine=...)`` / ``SystemConfig.engine``
ENGINES = ("fast", "reference")


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent or runaway state."""


class Simulator:
    """Owns the clock and the event queue.

    The kernel is intentionally minimal: components interact only through
    scheduled callbacks, which keeps the global event order (and therefore
    the simulated coherence order) fully deterministic.

    Two optional hooks open the kernel up to the protocol checker without
    costing the common path anything:

    * ``tie_breaker`` — called with the list of live events tied for the
      head of the queue (same ``(time, priority)``) whenever that list has
      more than one entry; returns the index of the event to fire.  Their
      relative order is pure scheduling accident, so any choice is a legal
      hardware outcome — permuting it is how ``repro.check`` enumerates
      interleavings.
    * ``on_step`` — called after every fired event, for invariant oracles.

    ``diagnostic_providers`` is a list of zero-argument callables returning
    strings; their output is appended to the runaway ``SimulationError``
    so a max-cycles overrun reports *what* was stuck, not just when.

    ``engine`` selects the scheduler: ``"fast"`` (the default) uses the
    calendar queue and a batched drain loop; ``"reference"`` uses the
    original min-heap.  The two are bit-identical — same event order,
    same cycle counts, same checker fingerprints — and the equivalence
    suite (``tests/test_engine_fastpath.py``) holds them to it.
    """

    def __init__(
        self, max_cycles: int = 1_000_000_000, engine: str = "fast"
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.now = 0
        self.max_cycles = max_cycles
        self.engine = engine
        self._queue = CalendarEventQueue() if engine == "fast" else EventQueue()
        self._events_fired = 0
        self._running = False
        self._host_seconds = 0.0
        self.tie_breaker: Optional[Callable[[Sequence[Event]], int]] = None
        self.on_step: Optional[Callable[[], None]] = None
        #: the event currently (or most recently) being fired — lets the
        #: checker's ``on_step`` hook inspect what just executed (e.g. to
        #: wake sleep-set entries that conflict with it).
        self.last_event: Optional[Event] = None
        self.diagnostic_providers: List[Callable[[], str]] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` ``delay`` cycles from now.

        ``delay`` must be non-negative; zero-delay events fire later in the
        current cycle, after all previously scheduled events for this cycle.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self._queue.push(self.now + delay, callback, args, priority)

    def schedule_at(
        self,
        time: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        return self._queue.push(time, callback, args, priority)

    def cancel(self, event: Event) -> None:
        """Cancel an event previously returned by ``schedule``."""
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _next_event(self) -> Optional[Event]:
        """Pop the next event, consulting the tie-break hook if set."""
        if self.tie_breaker is None:
            return self._queue.pop()
        ties = self._queue.candidates()
        if not ties:
            return None
        if len(ties) == 1:
            return self._queue.pop()
        choice = self.tie_breaker(ties)
        return self._queue.extract(ties[choice])

    def _runaway_error(self) -> SimulationError:
        """Build the max-cycles overrun error, with stuck-state detail."""
        parts = [
            f"simulation exceeded max_cycles={self.max_cycles} "
            f"(possible livelock) at t={self.now} "
            f"after {self._events_fired} events",
            self._queue.summarize(),
        ]
        for provider in self.diagnostic_providers:
            try:
                text = provider()
            except Exception as exc:  # diagnostics must never mask the error
                text = f"<diagnostic provider failed: {exc!r}>"
            if text:
                parts.append(text)
        return SimulationError("\n".join(parts))

    def run(self, until: Optional[Callable[[], bool]] = None) -> int:
        """Drain the event queue; return the final simulated time.

        ``until``, when provided, is evaluated after every event and stops
        the run early once it returns True.  A :class:`SimulationError` is
        raised if the clock passes ``max_cycles`` — the runaway guard that
        turns livelock (a real phenomenon for the aggressive-baseline
        protocol) into a detectable outcome instead of a hang.
        """
        self._running = True
        started = _time.perf_counter()
        try:
            if (
                self.engine == "fast"
                and self.tie_breaker is None
                and self.on_step is None
            ):
                self._run_fast(until)
            else:
                self._run_generic(until)
        finally:
            self._running = False
            self._host_seconds += _time.perf_counter() - started
        return self.now

    def _run_generic(self, until: Optional[Callable[[], bool]]) -> None:
        """The hook-capable drain loop (reference engine, and the checker)."""
        while self._queue:
            # Guard before popping so the offending event is still in
            # the queue when the error summarizes it.
            next_time = self._queue.peek_time()
            if next_time is not None and next_time > self.max_cycles:
                raise self._runaway_error()
            event = self._next_event()
            if event is None:
                break
            self.now = event.time
            self._events_fired += 1
            self.last_event = event
            event.callback(*event.args)
            if self.on_step is not None:
                self.on_step()
            if until is not None and until():
                break

    def _run_fast(self, until: Optional[Callable[[], bool]]) -> None:
        """Batched drain over the calendar queue (no hooks installed).

        Fires exactly the same events in exactly the same order as
        :meth:`_run_generic`; the difference is mechanical — whole
        same-cycle buckets are walked inline with hot state in locals,
        and the events-fired tally is folded back once per run instead
        of per event.
        """
        queue = self._queue
        head = queue._head
        max_cycles = self.max_cycles
        fired = self._events_fired
        try:
            while True:
                event = head()
                if event is None:
                    break
                bucket_time = queue._head_time
                # One guard per bucket == one guard per event time; raise
                # before consuming so the events are still in the queue
                # when the error summarizes them.
                if bucket_time > max_cycles:
                    raise self._runaway_error()
                self.now = bucket_time
                bucket = queue._head_bucket
                pos = queue._head_pos
                n = len(bucket)
                while pos < n:
                    event = bucket[pos]
                    pos += 1
                    if event.cancelled:
                        continue
                    queue._head_pos = pos
                    queue._live -= 1
                    fired += 1
                    self.last_event = event
                    event.callback(*event.args)
                    if until is not None and until():
                        return
                    if queue._head_dirty:
                        # A push landed out of order in this bucket; let
                        # _head() re-sort the undrained tail.
                        break
                    n = len(bucket)
                else:
                    queue._head_pos = pos
        finally:
            self._events_fired = fired

    def step(self) -> bool:
        """Fire a single event; return False when the queue is empty."""
        next_time = self._queue.peek_time()
        if next_time is not None and next_time > self.max_cycles:
            raise self._runaway_error()
        event = self._next_event()
        if event is None:
            return False
        self.now = event.time
        self._events_fired += 1
        self.last_event = event
        event.callback(*event.args)
        if self.on_step is not None:
            self.on_step()
        return True

    @property
    def events_fired(self) -> int:
        return self._events_fired

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def queue_high_water(self) -> int:
        """The deepest the event queue has ever been.

        Tracked inside the queue's ``push`` as a single integer compare —
        self-metrics cost nothing measurable per event, so they stay on
        even when no telemetry sinks are attached (the "~0% overhead with
        no sinks" claim).  Events/host-second is likewise only *computed*
        on demand in :meth:`self_metrics`, never per event.
        """
        return self._queue.high_water

    @property
    def host_seconds(self) -> float:
        """Host wall time spent inside :meth:`run` so far."""
        return self._host_seconds

    def self_metrics(self) -> Dict[str, float]:
        """The kernel's own health metrics, for manifests and reports."""
        per_s = (
            self._events_fired / self._host_seconds
            if self._host_seconds > 0
            else 0.0
        )
        return {
            "events_fired": self._events_fired,
            "queue_high_water": self._queue.high_water,
            "host_seconds": self._host_seconds,
            "events_per_host_s": per_s,
        }

"""Event primitives for the discrete-event simulation kernel.

Events are ordered by (time, priority, sequence). The sequence number makes
ordering total and deterministic: two events scheduled for the same cycle at
the same priority fire in the order they were scheduled.
"""

from __future__ import annotations

import heapq
from sys import intern as _intern
from typing import Callable, Dict, Iterable, Iterator, List, Optional


def _brief(value: object, width: int = 32) -> str:
    """Clip an argument repr so queue digests stay one line per event."""
    text = repr(value)
    if len(text) > width:
        text = text[: width - 3] + "..."
    return text


#: interned callback labels, keyed by the callback's code object.  Bound
#: methods of different instances and closures minted repeatedly from the
#: same ``lambda`` all share one code object, so the cache stays small
#: while the hot paths (footprints, signatures, digests) get one interned
#: string per call site instead of a fresh ``__qualname__`` fetch.
_LABEL_CACHE: Dict[object, str] = {}


def callback_label(callback: Callable[..., None]) -> str:
    """The callback's ``__qualname__``, interned and cached.

    Returns exactly what ``getattr(callback, "__qualname__", "")`` would,
    so checker fingerprints built from labels are unchanged; the payoff
    is identity-comparable strings and no attribute walk per event.
    """
    func = getattr(callback, "__func__", callback)
    code = getattr(func, "__code__", None)
    if code is None:
        return getattr(callback, "__qualname__", "")
    label = _LABEL_CACHE.get(code)
    if label is None:
        label = _intern(getattr(callback, "__qualname__", ""))
        _LABEL_CACHE[code] = label
    return label


def _event_priority(event: "Event") -> int:
    return event.priority


def _event_seq(event: "Event") -> int:
    return event.seq


def _signature(events: Iterable["Event"], now: int) -> tuple:
    return tuple(
        sorted(
            (
                event.time - now,
                event.priority,
                callback_label(event.callback),
                len(event.args),
            )
            for event in events
            if not event.cancelled
        )
    )


def _summarize(events: Iterable["Event"], n_live: int, limit: int) -> str:
    live = sorted(
        (event for event in events if not event.cancelled),
        key=lambda event: (event.time, event.priority, event.seq),
    )
    lines = [f"{n_live} pending event(s)"]
    for event in live[:limit]:
        callback = event.callback
        name = getattr(callback, "__qualname__", repr(callback))
        args = ", ".join(_brief(arg) for arg in event.args)
        lines.append(f"  t={event.time} {name}({args})")
    if len(live) > limit:
        lines.append(f"  ... and {len(live) - limit} more")
    return "\n".join(lines)


class Event:
    """A single scheduled callback.

    Events support cancellation: a cancelled event stays in the heap but is
    skipped when popped.  This is O(1) cancellation at the cost of a little
    heap garbage, which the kernel tolerates happily.
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "callback",
        "args",
        "cancelled",
        "_footprint",
    )

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._footprint: Optional[tuple] = None

    def cancel(self) -> None:
        """Mark the event so the kernel skips it."""
        self.cancelled = True

    def footprint(self) -> tuple:
        """Conflict metadata ``(node, addrs, label)`` for the checker.

        The model checker's independence relation needs to know, for two
        events tied at the head of the queue, whether their firing order
        can matter.  The footprint is a best-effort static summary:

        * ``node`` — the ``node_id`` of the bound-method owner (a cache
          controller or processor), or ``None`` when the event belongs to
          a shared component (bus, crossbar, directory) or a free
          function.  ``None`` means "touches shared state": the checker
          must treat the event as conflicting with everything.
        * ``addrs`` — addresses mentioned by the arguments: ``line_addr``
          attributes (interconnect messages, directory transactions) and
          ``addr`` attributes (CPU ops).  An empty tuple means the
          footprint is unknown, which the checker also treats
          conservatively.
        * ``label`` — the callback's qualified name, used to tell apart
          distinct transitions that happen to share node and addresses.

        The result is cached: footprints are immutable once scheduled.
        """
        if self._footprint is None:
            owner = getattr(self.callback, "__self__", None)
            node = getattr(owner, "node_id", None) if owner is not None else None
            addrs: List[int] = []
            for arg in self.args:
                line = getattr(arg, "line_addr", None)
                if isinstance(line, int):
                    addrs.append(line)
                    continue
                addr = getattr(arg, "addr", None)
                if isinstance(addr, int):
                    addrs.append(addr)
            label = callback_label(self.callback)
            self._footprint = (node, tuple(addrs), label)
        return self._footprint

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} p={self.priority} #{self.seq}{state}>"


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    This is the *reference* scheduler: the bit-identical oracle the fast
    calendar queue is checked against.  Keep its semantics frozen.
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._live = 0
        #: deepest the live-event count has ever been; maintained here (one
        #: integer compare per push) so the kernel needs no per-push probe.
        self.high_water = 0

    def push(
        self,
        time: int,
        callback: Callable[..., None],
        args: tuple = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        event = Event(time, priority, self._seq, callback, args)
        self._seq += 1
        live = self._live + 1
        self._live = live
        if live > self.high_water:
            self.high_water = live
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[int]:
        """Return the firing time of the next live event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None

    def candidates(self) -> List[Event]:
        """Every live event tied for the head of the queue.

        "Tied" means equal ``(time, priority)`` to the next event the
        kernel would pop: exactly the set whose relative order is decided
        only by scheduling sequence, i.e. the same-cycle tie-breaking a
        model checker may legally permute.  Returned in sequence order
        (the default firing order), deterministically.
        """
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return []
        head = self._heap[0]
        ties = [
            event
            for event in self._heap
            if not event.cancelled
            and event.time == head.time
            and event.priority == head.priority
        ]
        ties.sort(key=lambda event: event.seq)
        return ties

    def extract(self, event: Event) -> Event:
        """Remove a specific live event so the caller can fire it.

        Used by the tie-break hook to pop a chosen candidate out of
        order.  The heap entry is lazily discarded via the cancellation
        marker; the caller owns firing the callback.
        """
        if event.cancelled:
            raise ValueError(f"cannot extract dead event {event!r}")
        event.cancelled = True
        self._live -= 1
        return event

    def signature(self, now: int) -> tuple:
        """A hashable digest of the live queue, relative to ``now``.

        Part of the model checker's state fingerprint: two simulations
        whose pending work has the same shape (same callbacks at the same
        relative offsets) are exploring the same future.
        """
        return _signature(self._heap, now)

    def summarize(self, limit: int = 8) -> str:
        """A human-readable digest of the pending events (diagnostics)."""
        return _summarize(self._heap, self._live, limit)

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class CalendarEventQueue:
    """A bucketed (calendar) scheduler, bit-identical to :class:`EventQueue`.

    Events land in per-cycle buckets keyed by absolute firing time; a
    small min-heap orders only the *distinct* times.  Draining a cycle is
    then a list walk — no per-event re-heapify, no ``Event.__lt__`` calls
    — which is the entire win: the reference heap spends ~40% of a dense
    run comparing ``(time, priority, seq)`` tuples.

    Ordering contract (identical to the reference heap):

    * events fire in ``(time, priority, seq)`` order.  A bucket is kept
      in push order (= seq order) and stably sorted by priority when it
      becomes the head bucket; since almost every event uses priority 0,
      the sort is skipped entirely until a non-zero priority is ever seen.
    * a push into the *current* head bucket that does not belong at the
      end of the remaining events marks the bucket dirty; the next head
      lookup re-sorts the undrained tail (stable, so seq order within a
      priority is preserved).
    * ``candidates()`` / ``extract()`` / ``signature()`` / ``summarize()``
      observe exactly the same live-event sets as the reference queue, so
      the checker's tie-break hooks and fingerprints are unchanged.

    The kernel's fast loop reaches into ``_head_bucket``/``_head_pos``
    directly to drain same-cycle batches; both classes live in this
    module and evolve together.
    """

    def __init__(self) -> None:
        self._buckets: Dict[int, List[Event]] = {}
        self._times: List[int] = []
        self._seq = 0
        self._live = 0
        self.high_water = 0
        self._head_time = -1
        self._head_bucket: Optional[List[Event]] = None
        self._head_pos = 0
        self._head_dirty = False
        # becomes (and stays) True the first time any push uses a
        # non-zero priority; until then every bucket is already sorted.
        self._any_priority = False

    def push(
        self,
        time: int,
        callback: Callable[..., None],
        args: tuple = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        event = Event(time, priority, self._seq, callback, args)
        self._seq += 1
        live = self._live + 1
        self._live = live
        if live > self.high_water:
            self.high_water = live
        if priority:
            self._any_priority = True
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [event]
            heapq.heappush(self._times, time)
        else:
            bucket.append(event)
            if (
                self._any_priority
                and bucket is self._head_bucket
                and len(bucket) - self._head_pos > 1
                and priority < bucket[-2].priority
            ):
                # Does not belong at the end of the undrained tail; the
                # next head lookup re-sorts it into place.
                self._head_dirty = True
        return event

    def _promote(self) -> Optional[List[Event]]:
        """Make the earliest pending bucket the head bucket."""
        while self._times:
            time = heapq.heappop(self._times)
            bucket = self._buckets.get(time)
            if bucket is None:
                continue
            self._head_time = time
            self._head_bucket = bucket
            self._head_pos = 0
            self._head_dirty = False
            if self._any_priority and len(bucket) > 1:
                bucket.sort(key=_event_priority)
            return bucket
        return None

    def _demote_head(self) -> None:
        """Return the (partially drained) head bucket to the calendar.

        Only needed in the rare case where an earlier bucket appears
        while a head bucket is current: external code peeked (promoting
        the bucket at time T) and then scheduled at a time < T before
        the kernel advanced to T.
        """
        time = self._head_time
        rest = self._head_bucket[self._head_pos :]
        if rest:
            self._buckets[time] = rest
            heapq.heappush(self._times, time)
        else:
            del self._buckets[time]
        self._head_bucket = None
        self._head_time = -1
        self._head_pos = 0
        self._head_dirty = False

    def _head(self) -> Optional[Event]:
        """The next live event, leaving it in place (None when empty).

        On return, ``_head_bucket[_head_pos]`` is the returned event and
        the undrained tail is in firing order.
        """
        while True:
            bucket = self._head_bucket
            if bucket is not None:
                times = self._times
                if times and times[0] < self._head_time:
                    self._demote_head()
                    continue
                if self._head_dirty:
                    pos = self._head_pos
                    tail = bucket[pos:]
                    tail.sort(key=_event_priority)
                    bucket[pos:] = tail
                    self._head_dirty = False
                pos = self._head_pos
                n = len(bucket)
                while pos < n:
                    event = bucket[pos]
                    if not event.cancelled:
                        self._head_pos = pos
                        return event
                    pos += 1
                # Bucket exhausted (possibly by trailing cancellations).
                del self._buckets[self._head_time]
                self._head_bucket = None
                self._head_time = -1
                self._head_pos = 0
            if self._promote() is None:
                return None

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        event = self._head()
        if event is None:
            return None
        self._head_pos += 1
        self._live -= 1
        return event

    def peek_time(self) -> Optional[int]:
        """Return the firing time of the next live event without popping it."""
        event = self._head()
        return None if event is None else event.time

    def candidates(self) -> List[Event]:
        """Every live event tied for the head of the queue.

        Same contract as :meth:`EventQueue.candidates`: the set of live
        events sharing the head's ``(time, priority)``, in seq order.
        """
        event = self._head()
        if event is None:
            return []
        priority = event.priority
        ties = [
            e
            for e in self._head_bucket[self._head_pos :]
            if not e.cancelled and e.priority == priority
        ]
        ties.sort(key=_event_seq)
        return ties

    def extract(self, event: Event) -> Event:
        """Remove a specific live event so the caller can fire it."""
        if event.cancelled:
            raise ValueError(f"cannot extract dead event {event!r}")
        event.cancelled = True
        self._live -= 1
        return event

    def _iter_pending(self) -> Iterator[Event]:
        """All not-yet-fired events (live and cancelled), unordered."""
        head_bucket = self._head_bucket
        if head_bucket is not None:
            yield from head_bucket[self._head_pos :]
        for bucket in self._buckets.values():
            if bucket is head_bucket:
                continue
            yield from bucket

    def signature(self, now: int) -> tuple:
        """A hashable digest of the live queue, relative to ``now``."""
        return _signature(self._iter_pending(), now)

    def summarize(self, limit: int = 8) -> str:
        """A human-readable digest of the pending events (diagnostics)."""
        return _summarize(self._iter_pending(), self._live, limit)

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

"""Event primitives for the discrete-event simulation kernel.

Events are ordered by (time, priority, sequence). The sequence number makes
ordering total and deterministic: two events scheduled for the same cycle at
the same priority fire in the order they were scheduled.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional


def _brief(value: object, width: int = 32) -> str:
    """Clip an argument repr so queue digests stay one line per event."""
    text = repr(value)
    if len(text) > width:
        text = text[: width - 3] + "..."
    return text


class Event:
    """A single scheduled callback.

    Events support cancellation: a cancelled event stays in the heap but is
    skipped when popped.  This is O(1) cancellation at the cost of a little
    heap garbage, which the kernel tolerates happily.
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "callback",
        "args",
        "cancelled",
        "_footprint",
    )

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._footprint: Optional[tuple] = None

    def cancel(self) -> None:
        """Mark the event so the kernel skips it."""
        self.cancelled = True

    def footprint(self) -> tuple:
        """Conflict metadata ``(node, addrs, label)`` for the checker.

        The model checker's independence relation needs to know, for two
        events tied at the head of the queue, whether their firing order
        can matter.  The footprint is a best-effort static summary:

        * ``node`` — the ``node_id`` of the bound-method owner (a cache
          controller or processor), or ``None`` when the event belongs to
          a shared component (bus, crossbar, directory) or a free
          function.  ``None`` means "touches shared state": the checker
          must treat the event as conflicting with everything.
        * ``addrs`` — addresses mentioned by the arguments: ``line_addr``
          attributes (interconnect messages, directory transactions) and
          ``addr`` attributes (CPU ops).  An empty tuple means the
          footprint is unknown, which the checker also treats
          conservatively.
        * ``label`` — the callback's qualified name, used to tell apart
          distinct transitions that happen to share node and addresses.

        The result is cached: footprints are immutable once scheduled.
        """
        if self._footprint is None:
            owner = getattr(self.callback, "__self__", None)
            node = getattr(owner, "node_id", None) if owner is not None else None
            addrs: List[int] = []
            for arg in self.args:
                line = getattr(arg, "line_addr", None)
                if isinstance(line, int):
                    addrs.append(line)
                    continue
                addr = getattr(arg, "addr", None)
                if isinstance(addr, int):
                    addrs.append(addr)
            label = getattr(self.callback, "__qualname__", "")
            self._footprint = (node, tuple(addrs), label)
        return self._footprint

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} p={self.priority} #{self.seq}{state}>"


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._live = 0

    def push(
        self,
        time: int,
        callback: Callable[..., None],
        args: tuple = (),
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        event = Event(time, priority, self._seq, callback, args)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[int]:
        """Return the firing time of the next live event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if self._heap:
            return self._heap[0].time
        return None

    def candidates(self) -> List[Event]:
        """Every live event tied for the head of the queue.

        "Tied" means equal ``(time, priority)`` to the next event the
        kernel would pop: exactly the set whose relative order is decided
        only by scheduling sequence, i.e. the same-cycle tie-breaking a
        model checker may legally permute.  Returned in sequence order
        (the default firing order), deterministically.
        """
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return []
        head = self._heap[0]
        ties = [
            event
            for event in self._heap
            if not event.cancelled
            and event.time == head.time
            and event.priority == head.priority
        ]
        ties.sort(key=lambda event: event.seq)
        return ties

    def extract(self, event: Event) -> Event:
        """Remove a specific live event so the caller can fire it.

        Used by the tie-break hook to pop a chosen candidate out of
        order.  The heap entry is lazily discarded via the cancellation
        marker; the caller owns firing the callback.
        """
        if event.cancelled:
            raise ValueError(f"cannot extract dead event {event!r}")
        event.cancelled = True
        self._live -= 1
        return event

    def signature(self, now: int) -> tuple:
        """A hashable digest of the live queue, relative to ``now``.

        Part of the model checker's state fingerprint: two simulations
        whose pending work has the same shape (same callbacks at the same
        relative offsets) are exploring the same future.
        """
        return tuple(
            sorted(
                (
                    event.time - now,
                    event.priority,
                    getattr(event.callback, "__qualname__", ""),
                    len(event.args),
                )
                for event in self._heap
                if not event.cancelled
            )
        )

    def summarize(self, limit: int = 8) -> str:
        """A human-readable digest of the pending events (diagnostics)."""
        live = sorted(
            (event for event in self._heap if not event.cancelled),
            key=lambda event: (event.time, event.priority, event.seq),
        )
        lines = [f"{self._live} pending event(s)"]
        for event in live[:limit]:
            callback = event.callback
            name = getattr(callback, "__qualname__", repr(callback))
            args = ", ".join(_brief(arg) for arg in event.args)
            lines.append(f"  t={event.time} {name}({args})")
        if len(live) > limit:
            lines.append(f"  ... and {len(live) - limit} more")
        return "\n".join(lines)

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

"""Statistics collection for simulation components.

Components register named counters, histograms and windowed counters
with a shared :class:`StatsRegistry`; the harness reads them out at the
end of a run to compute the paper's metrics (network transactions,
failed SC sequences, deferral delays, hand-off latencies, and so on).

:class:`Histogram` is *log-bucketed*: besides the exact moments (count,
total, min, max, mean) it keeps one counter per power-of-two magnitude
bucket, which bounds memory at ~70 buckets for any 64-bit sample stream
while supporting p50/p90/p99 estimates — the distributional view the
paper's bounded-delay argument rests on.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


def _bucket_index(sample: int) -> int:
    """Signed log2 bucket: 0 holds exactly 0; b>0 holds [2^(b-1), 2^b)."""
    if sample > 0:
        return sample.bit_length()
    if sample < 0:
        return -((-sample).bit_length())
    return 0


def _bucket_upper(index: int) -> int:
    """The largest sample a bucket can hold (its percentile estimate)."""
    if index > 0:
        return (1 << index) - 1
    if index < 0:
        # Negative buckets mirror positive ones: bucket -b holds
        # (-2^b, -2^(b-1)]; its upper (closest-to-zero) bound.
        return -(1 << (-index - 1))
    return 0


class Histogram:
    """Log-bucketed sample accumulator with exact moments.

    Memory is bounded (one int per occupied power-of-two bucket), so it
    is safe for multi-million-event runs.  ``min``/``max`` are ``None``
    until the first sample — a first negative or zero sample is
    recorded faithfully rather than fighting a ``0`` sentinel.

    Percentiles are estimates: the reported value is the upper bound of
    the bucket containing the requested rank, clamped to the exact
    observed ``[min, max]``.  The relative error is therefore < 2x,
    which is ample for the order-of-magnitude latency distributions the
    harness reports.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self._buckets: Dict[int, int] = {}

    def add(self, sample: int) -> None:
        if self.min is None or sample < self.min:
            self.min = sample
        if self.max is None or sample > self.max:
            self.max = sample
        self.count += 1
        self.total += sample
        index = _bucket_index(sample)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> Optional[int]:
        """Estimated value at ``fraction`` (0..1] of the distribution."""
        if self.count == 0:
            return None
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction {fraction} outside (0, 1]")
        rank = fraction * self.count
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                estimate = _bucket_upper(index)
                assert self.min is not None and self.max is not None
                return max(self.min, min(self.max, estimate))
        return self.max  # pragma: no cover - defensive (rank <= count)

    @property
    def p50(self) -> Optional[int]:
        return self.percentile(0.50)

    @property
    def p90(self) -> Optional[int]:
        return self.percentile(0.90)

    @property
    def p99(self) -> Optional[int]:
        return self.percentile(0.99)

    def bucket_counts(self) -> Dict[int, int]:
        """Occupied log2 buckets (index -> count), for export."""
        return dict(self._buckets)

    def summary(self) -> Dict[str, object]:
        """A JSON-encodable digest (the metrics-export shape)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "buckets": {str(k): v for k, v in sorted(self._buckets.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram({self.name}: n={self.count} mean={self.mean:.1f} "
            f"p50={self.p50} p99={self.p99})"
        )


class WindowedCounter:
    """Counts per fixed-width simulated-time window.

    Backs throughput-over-time curves (hand-offs per 10k cycles, bus
    transactions per window, ...).  Windows are sparse: only windows
    that saw events occupy memory.
    """

    __slots__ = ("name", "window", "_counts")

    def __init__(self, name: str, window: int = 10_000) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.name = name
        self.window = window
        self._counts: Dict[int, int] = {}

    def record(self, time: int, amount: int = 1) -> None:
        index = time // self.window
        self._counts[index] = self._counts.get(index, 0) + amount

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    def series(self) -> List[Tuple[int, int]]:
        """(window_start_cycle, count) pairs in time order."""
        return [
            (index * self.window, self._counts[index])
            for index in sorted(self._counts)
        ]

    def peak(self) -> int:
        """The busiest window's count (0 when empty)."""
        return max(self._counts.values(), default=0)

    def summary(self) -> Dict[str, object]:
        return {
            "window": self.window,
            "total": self.total,
            "peak": self.peak(),
            "series": [[start, count] for start, count in self.series()],
        }


class StatsRegistry:
    """Flat namespace of counters and histograms, keyed by dotted names.

    Names follow ``component.metric`` (e.g. ``bus.transactions``,
    ``cpu3.sc_failures``) so the harness can aggregate per component or per
    metric with simple prefix/suffix matching.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._windowed: Dict[str, WindowedCounter] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(name)
            self._histograms[name] = histogram
        return histogram

    def windowed(self, name: str, window: int = 10_000) -> WindowedCounter:
        counter = self._windowed.get(name)
        if counter is None:
            counter = WindowedCounter(name, window)
            self._windowed[name] = counter
        return counter

    def value(self, name: str) -> int:
        """Return a counter's value, 0 when it was never touched."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def sum_matching(self, suffix: str) -> int:
        """Sum every counter whose name ends with ``suffix``.

        Used to aggregate per-CPU metrics, e.g. ``sum_matching('.sc_failures')``.
        """
        return sum(
            counter.value
            for name, counter in self._counters.items()
            if name.endswith(suffix)
        )

    def counters(self) -> Iterator[Tuple[str, int]]:
        for name in sorted(self._counters):
            yield name, self._counters[name].value

    def histograms(self) -> Iterator[Histogram]:
        for name in sorted(self._histograms):
            yield self._histograms[name]

    def windowed_counters(self) -> Iterator[WindowedCounter]:
        for name in sorted(self._windowed):
            yield self._windowed[name]

    def snapshot(self) -> Dict[str, int]:
        """A plain dict of all counter values (for reports and tests)."""
        return {name: counter.value for name, counter in self._counters.items()}

    def histogram_snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-encodable digests of every histogram and windowed counter."""
        out: Dict[str, Dict[str, object]] = {
            name: histogram.summary()
            for name, histogram in sorted(self._histograms.items())
        }
        for name, windowed in sorted(self._windowed.items()):
            out[name] = windowed.summary()
        return out

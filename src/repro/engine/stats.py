"""Statistics collection for simulation components.

Components register named counters and histograms with a shared
:class:`StatsRegistry`; the harness reads them out at the end of a run to
compute the paper's metrics (network transactions, failed SC sequences,
deferral delays, and so on).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Accumulates samples; reports count/total/mean/min/max.

    Stores only moments, not samples, so it is safe for multi-million-event
    runs.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.min: int = 0
        self.max: int = 0

    def add(self, sample: int) -> None:
        if self.count == 0:
            self.min = sample
            self.max = sample
        else:
            if sample < self.min:
                self.min = sample
            if sample > self.max:
                self.max = sample
        self.count += 1
        self.total += sample

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class StatsRegistry:
    """Flat namespace of counters and histograms, keyed by dotted names.

    Names follow ``component.metric`` (e.g. ``bus.transactions``,
    ``cpu3.sc_failures``) so the harness can aggregate per component or per
    metric with simple prefix/suffix matching.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(name)
            self._histograms[name] = histogram
        return histogram

    def value(self, name: str) -> int:
        """Return a counter's value, 0 when it was never touched."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def sum_matching(self, suffix: str) -> int:
        """Sum every counter whose name ends with ``suffix``.

        Used to aggregate per-CPU metrics, e.g. ``sum_matching('.sc_failures')``.
        """
        return sum(
            counter.value
            for name, counter in self._counters.items()
            if name.endswith(suffix)
        )

    def counters(self) -> Iterator[Tuple[str, int]]:
        for name in sorted(self._counters):
            yield name, self._counters[name].value

    def histograms(self) -> Iterator[Histogram]:
        for name in sorted(self._histograms):
            yield self._histograms[name]

    def snapshot(self) -> Dict[str, int]:
        """A plain dict of all counter values (for reports and tests)."""
        return {name: counter.value for name, counter in self._counters.items()}

"""Memory substrate: addressing, cache lines, arrays, hierarchy, DRAM."""

from repro.mem.address import WORD_BYTES, AddressMap
from repro.mem.cache import CacheArray
from repro.mem.hierarchy import NodeCacheHierarchy
from repro.mem.line import (
    DIRTY_STATES,
    OWNER_STATES,
    READABLE_STATES,
    WRITABLE_STATES,
    CacheLine,
    State,
)
from repro.mem.mainmemory import MainMemory

__all__ = [
    "AddressMap",
    "CacheArray",
    "CacheLine",
    "DIRTY_STATES",
    "MainMemory",
    "NodeCacheHierarchy",
    "OWNER_STATES",
    "READABLE_STATES",
    "State",
    "WORD_BYTES",
    "WRITABLE_STATES",
]

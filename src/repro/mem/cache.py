"""Set-associative cache array with LRU replacement.

This is the tag/data array used for both L1 and L2; coherence decisions
live in the controller, not here.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.mem.line import CacheLine


class CacheArray:
    """A set-associative array of :class:`CacheLine` frames.

    Capacity and associativity are in lines.  Lookup, insertion, and victim
    selection are O(associativity).  Pinned lines (lines with outstanding
    misses or active deferrals) are never chosen as victims.
    """

    def __init__(self, n_sets: int, assoc: int, line_bytes: int) -> None:
        if n_sets <= 0 or n_sets & (n_sets - 1):
            raise ValueError(f"set count must be a power of two, got {n_sets}")
        if assoc <= 0:
            raise ValueError(f"associativity must be positive, got {assoc}")
        self.n_sets = n_sets
        self.assoc = assoc
        self.line_bytes = line_bytes
        self._sets: List[Dict[int, CacheLine]] = [{} for _ in range(n_sets)]
        self._tick = 0

    @classmethod
    def from_size(cls, size_bytes: int, assoc: int, line_bytes: int) -> "CacheArray":
        """Build an array from a total capacity in bytes (e.g. 64 KB)."""
        n_lines = size_bytes // line_bytes
        n_sets = n_lines // assoc
        return cls(n_sets, assoc, line_bytes)

    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) & (self.n_sets - 1)

    def lookup(self, line_addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line for ``line_addr``, updating LRU state."""
        # _set_index inlined: this runs a few times per memory operation.
        index = (line_addr // self.line_bytes) & (self.n_sets - 1)
        line = self._sets[index].get(line_addr)
        if line is not None and touch:
            self._tick += 1
            line.last_used = self._tick
        return line

    def insert(self, line: CacheLine, force: bool = False) -> None:
        """Install a line.  The set must have room (evict first if needed).

        ``force=True`` permits temporary over-occupancy; a real controller
        would stall the fill instead.  The coherence controller uses this
        only when every frame in the set is pinned by outstanding misses,
        and counts the occurrences.
        """
        bucket = self._sets[self._set_index(line.addr)]
        if line.addr not in bucket and len(bucket) >= self.assoc and not force:
            raise RuntimeError(
                f"set for {line.addr:#x} is full; select_victim/remove first"
            )
        self._tick += 1
        line.last_used = self._tick
        bucket[line.addr] = line

    def remove(self, line_addr: int) -> Optional[CacheLine]:
        """Remove and return the line, or None if absent."""
        return self._sets[self._set_index(line_addr)].pop(line_addr, None)

    def needs_eviction(self, line_addr: int) -> bool:
        """True when installing ``line_addr`` requires evicting a resident."""
        bucket = self._sets[self._set_index(line_addr)]
        return line_addr not in bucket and len(bucket) >= self.assoc

    def select_victim(self, line_addr: int) -> Optional[CacheLine]:
        """Pick the LRU non-pinned line of the target set, or None.

        Returns None either when no eviction is needed or when every frame
        in the set is pinned (the caller must then stall or bypass).
        """
        bucket = self._sets[self._set_index(line_addr)]
        if line_addr in bucket or len(bucket) < self.assoc:
            return None
        candidates = [line for line in bucket.values() if not line.pinned]
        if not candidates:
            return None
        return min(candidates, key=lambda line: line.last_used)

    def lines(self) -> Iterator[CacheLine]:
        for bucket in self._sets:
            yield from bucket.values()

    def resident_count(self) -> int:
        return sum(len(bucket) for bucket in self._sets)

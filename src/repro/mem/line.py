"""Cache line storage and coherence states.

States follow the MOESI protocol used by the paper's L2/system bus
(Table 1), plus TEAROFF — the speculative read-only copy introduced by
IQOLB (paper §3.3).  A TEAROFF line carries a data snapshot but confers no
coherence permission: it satisfies loads/LLs to that line only, is never
written, and is silently discarded or overwritten when real data arrives.
"""

from __future__ import annotations

import enum
from typing import List


class State(enum.Enum):
    """MOESI coherence states plus the IQOLB tear-off pseudo-state."""

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"
    MODIFIED = "M"
    OWNED = "O"
    TEAROFF = "T"

    def __repr__(self) -> str:
        return self.value


#: States that permit a store (or a successful SC) without a bus transaction.
WRITABLE_STATES = frozenset({State.EXCLUSIVE, State.MODIFIED})

#: States that permit a local load hit.
READABLE_STATES = frozenset(
    {State.SHARED, State.EXCLUSIVE, State.MODIFIED, State.OWNED, State.TEAROFF}
)

#: States in which this cache is responsible for supplying data to the bus.
OWNER_STATES = frozenset({State.EXCLUSIVE, State.MODIFIED, State.OWNED})

#: States holding dirty data that must be written back on eviction.
DIRTY_STATES = frozenset({State.MODIFIED, State.OWNED})


class CacheLine:
    """One line frame: tag, coherence state, data words, replacement info."""

    __slots__ = ("addr", "state", "data", "last_used", "pinned")

    def __init__(self, addr: int, state: State, data: List[int]) -> None:
        self.addr = addr
        self.state = state
        self.data = data
        self.last_used = 0
        self.pinned = False

    # The permission predicates are identity chains rather than frozenset
    # membership: hashing an enum per call shows up measurably when the
    # simulator fires millions of events.  The *_STATES sets above remain
    # the canonical definitions; test_mem_line pins these to them.

    @property
    def valid(self) -> bool:
        return self.state is not State.INVALID

    @property
    def writable(self) -> bool:
        state = self.state
        return state is State.EXCLUSIVE or state is State.MODIFIED

    @property
    def readable(self) -> bool:
        return self.state is not State.INVALID

    @property
    def is_owner(self) -> bool:
        state = self.state
        return (
            state is State.EXCLUSIVE
            or state is State.MODIFIED
            or state is State.OWNED
        )

    @property
    def dirty(self) -> bool:
        state = self.state
        return state is State.MODIFIED or state is State.OWNED

    def read_word(self, index: int) -> int:
        return self.data[index]

    def write_word(self, index: int, value: int) -> None:
        self.data[index] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Line {self.addr:#x} {self.state.value}>"

"""Per-node two-level cache hierarchy.

The paper's nodes have split 64-KB L1 caches (1-cycle hit) and a unified
512-KB L2 (6-cycle hit), with the L1s inclusive in the L2 (Table 1).

Modelling note: the L1 array holds *references to the same*
:class:`~repro.mem.line.CacheLine` objects as the L2, so coherence state
and data are always consistent between levels by construction; the L1
exists to provide hit/miss timing and capacity/conflict behaviour.
Instruction fetches are not simulated (the paper reports negligible
I-cache miss rates), so only the L1-D is modelled.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.stats import StatsRegistry
from repro.mem.cache import CacheArray
from repro.mem.line import CacheLine, State


class NodeCacheHierarchy:
    """L1-D + unified L2 for one node, sharing line objects."""

    def __init__(
        self,
        node_id: int,
        l1: CacheArray,
        l2: CacheArray,
        l1_hit_cycles: int,
        l2_hit_cycles: int,
        stats: StatsRegistry,
    ) -> None:
        self.node_id = node_id
        self.l1 = l1
        self.l2 = l2
        self.l1_hit_cycles = l1_hit_cycles
        self.l2_hit_cycles = l2_hit_cycles
        self._stats = stats
        self._prefix = f"cache{node_id}"
        # Pre-resolved counters: lookup() runs once per memory operation,
        # so the registry's name-keyed dict probe is hoisted out of it.
        self._c_l1_hits = stats.counter(f"{self._prefix}.l1_hits")
        self._c_l2_hits = stats.counter(f"{self._prefix}.l2_hits")
        self._c_misses = stats.counter(f"{self._prefix}.misses")

    # ------------------------------------------------------------------
    # Lookup with timing
    # ------------------------------------------------------------------
    def lookup(self, line_addr: int) -> Tuple[Optional[CacheLine], int]:
        """Find a line; return (line or None, access latency in cycles).

        An L1 hit costs ``l1_hit_cycles``; an L1 miss that hits in L2 costs
        the L1 probe plus the L2 hit time and refills the L1; a full miss
        costs the same probe path before the controller goes to the bus.
        """
        line = self.l1.lookup(line_addr)
        if line is not None and line.state is not State.INVALID:
            self._c_l1_hits.value += 1
            return line, self.l1_hit_cycles
        latency = self.l1_hit_cycles + self.l2_hit_cycles
        line = self.l2.lookup(line_addr)
        if line is not None and line.state is not State.INVALID:
            self._c_l2_hits.value += 1
            self._fill_l1(line)
            return line, latency
        self._c_misses.value += 1
        return None, latency

    def peek(self, line_addr: int) -> Optional[CacheLine]:
        """Find a line without timing or LRU effects (for snooping)."""
        line = self.l2.lookup(line_addr, touch=False)
        if line is not None and line.valid:
            return line
        return None

    # ------------------------------------------------------------------
    # Installation and eviction
    # ------------------------------------------------------------------
    def install(self, line: CacheLine) -> List[CacheLine]:
        """Install a freshly filled line in L2 (and L1).

        Returns the evicted L2 victims (usually none or one; more after a
        set was over-occupied by a pinned overflow) — the controller is
        responsible for writing back dirty victims and for any queue
        hand-off tied to them.  Victim selection never picks pinned
        lines; if the whole set is pinned the line is force-installed and
        the event counted.
        """
        victims: List[CacheLine] = []
        # A set may be over-occupied from an earlier pinned overflow, in
        # which case a single eviction is not enough to make room.
        while self.l2.needs_eviction(line.addr):
            candidate = self.l2.select_victim(line.addr)
            if candidate is None:
                self._stats.counter(f"{self._prefix}.pinned_overflows").inc()
                self.l2.insert(line, force=True)
                self._fill_l1(line)
                return victims
            self.l2.remove(candidate.addr)
            self.l1.remove(candidate.addr)
            self._stats.counter(f"{self._prefix}.l2_evictions").inc()
            victims.append(candidate)
        self.l2.insert(line)
        self._fill_l1(line)
        return victims

    def drop(self, line_addr: int) -> None:
        """Remove a line from both levels (invalidation)."""
        self.l2.remove(line_addr)
        self.l1.remove(line_addr)

    def _fill_l1(self, line: CacheLine) -> None:
        """Refill the L1 with a line already resident in L2.

        L1 evictions are silent: the L2 is inclusive and shares the line
        object, so no data movement is needed.
        """
        if self.l1.lookup(line.addr, touch=False) is line:
            return
        if self.l1.needs_eviction(line.addr):
            victim = self.l1.select_victim(line.addr)
            if victim is None:
                return  # every L1 frame pinned; serve from L2
            self.l1.remove(victim.addr)
        self.l1.insert(line)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def lines(self) -> List[CacheLine]:
        return list(self.l2.lines())

    def state_of(self, line_addr: int) -> State:
        line = self.peek(line_addr)
        return line.state if line is not None else State.INVALID

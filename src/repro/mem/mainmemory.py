"""Main memory model.

A flat word-addressed store with the paper's DRAM timing: 40 cycles for the
first 8 bytes of a line and 4 cycles for each subsequent 8-byte chunk
(Table 1), so a 64-byte line costs 40 + 7*4 = 68 cycles of access time
before it enters the data network.
"""

from __future__ import annotations

from typing import Dict, List

from repro.mem.address import WORD_BYTES, AddressMap


class MainMemory:
    """Backing store plus access-latency calculation."""

    def __init__(
        self,
        amap: AddressMap,
        first_chunk_cycles: int = 40,
        next_chunk_cycles: int = 4,
        chunk_bytes: int = 8,
    ) -> None:
        self.amap = amap
        self.first_chunk_cycles = first_chunk_cycles
        self.next_chunk_cycles = next_chunk_cycles
        self.chunk_bytes = chunk_bytes
        self._words: Dict[int, int] = {}

    def line_latency(self) -> int:
        """Cycles to read or write one full cache line."""
        chunks = self.amap.line_bytes // self.chunk_bytes
        return self.first_chunk_cycles + (chunks - 1) * self.next_chunk_cycles

    # ------------------------------------------------------------------
    # Data access (functional; timing handled by callers/bus)
    # ------------------------------------------------------------------
    def read_line(self, line_addr: int) -> List[int]:
        """Return a copy of the line's words (missing words read as 0)."""
        base = line_addr // WORD_BYTES
        return [self._words.get(base + i, 0) for i in range(self.amap.words_per_line)]

    def write_line(self, line_addr: int, data: List[int]) -> None:
        """Write back a full line."""
        if len(data) != self.amap.words_per_line:
            raise ValueError("line data has wrong word count")
        base = line_addr // WORD_BYTES
        for i, value in enumerate(data):
            self._words[base + i] = value

    def read_word(self, addr: int) -> int:
        """Direct word read (used by the harness to initialise/inspect)."""
        return self._words.get(addr // WORD_BYTES, 0)

    def write_word(self, addr: int, value: int) -> None:
        """Direct word write (used by the harness to initialise memory)."""
        self._words[addr // WORD_BYTES] = value

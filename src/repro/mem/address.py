"""Address arithmetic helpers.

The simulator uses byte addresses, 4-byte words, and a configurable cache
line size (64 bytes by default, as in the paper's Table 1).
"""

from __future__ import annotations

WORD_BYTES = 4


class AddressMap:
    """Line/word arithmetic for a fixed line size."""

    def __init__(self, line_bytes: int = 64) -> None:
        if line_bytes <= 0 or line_bytes & (line_bytes - 1):
            raise ValueError(f"line size must be a power of two, got {line_bytes}")
        if line_bytes % WORD_BYTES:
            raise ValueError("line size must be a multiple of the word size")
        self.line_bytes = line_bytes
        self.words_per_line = line_bytes // WORD_BYTES
        self._line_mask = ~(line_bytes - 1)
        self._offset_mask = line_bytes - 1

    def line_addr(self, addr: int) -> int:
        """The line-aligned base address containing ``addr``."""
        return addr & self._line_mask

    def word_index(self, addr: int) -> int:
        """Index of the word within its line (0..words_per_line-1)."""
        return (addr & self._offset_mask) // WORD_BYTES

    def word_addr(self, line_addr: int, word_index: int) -> int:
        """Inverse of :meth:`word_index`."""
        return line_addr + word_index * WORD_BYTES

    def same_line(self, addr_a: int, addr_b: int) -> bool:
        return self.line_addr(addr_a) == self.line_addr(addr_b)

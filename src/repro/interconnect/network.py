"""Contention-modeled point-to-point interconnect (2-D mesh).

The scalable fabric behind the directory protocol backend
(``SystemConfig(interconnect="directory")``).  Unlike the broadcast bus,
nothing here is a shared medium: nodes sit on a near-square 2-D mesh,
messages follow dimension-ordered (XY) routes, and contention appears on
the individual directed links a route crosses.

Timing model, per message::

    t = now
    for each directed link (u, v) on the route:
        t = max(t, link_free[u, v, vc])     # wait out earlier traffic
        link_free[u, v, vc] = t + ser       # serialization occupancy
        t += hop_cycles                     # propagation to the next hop

``ser`` depends on the payload — a full cache line occupies a link far
longer than a control flit — so line transfers interleave badly on a
shared path while short messages slip through.  Requests and responses
travel in separate *virtual channels* (independent ``link_free`` books),
the standard protocol-deadlock-avoidance split: a burst of requests can
never delay the responses that would retire them.

The class is send-compatible with :class:`~repro.interconnect.crossbar.
Crossbar`, so :class:`~repro.coherence.controller.CacheController` uses
either without modification.  Ownership-carrying deliveries are reported
to an attached listener — the home directory keeps its owner pointers
current by watching the fabric (the analogue of the directory-update
messages a real protocol would piggyback on transfers).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.simulator import Simulator
from repro.engine.stats import Counter, StatsRegistry
from repro.interconnect.messages import DataKind, DataMessage, GrantState

#: virtual channel names
VC_REQ = "req"
VC_RESP = "resp"


class MeshNetwork:
    """Point-to-point 2-D mesh with per-link occupancy and two VCs."""

    def __init__(
        self,
        sim: Simulator,
        stats: StatsRegistry,
        n_nodes: int,
        hop_cycles: int = 4,
        line_ser_cycles: int = 16,
        word_ser_cycles: int = 4,
    ) -> None:
        self.sim = sim
        self.stats = stats
        self.n_nodes = n_nodes
        self.hop_cycles = hop_cycles
        self.line_ser_cycles = line_ser_cycles
        self.word_ser_cycles = word_ser_cycles
        self.width = max(1, math.ceil(math.sqrt(n_nodes)))
        #: (src, dst, vc) -> cycle the directed link frees up
        self._link_free: Dict[Tuple[int, int, str], int] = {}
        self._receivers: Dict[int, Callable[[DataMessage], None]] = {}
        #: called with (line_addr, node) when an ownership-carrying
        #: message is committed to a node (see ``send``)
        self.ownership_listener: Optional[Callable[[int, int], None]] = None
        # Per-message counters, pre-resolved once (route() runs for every
        # coherence request; send() for every data transfer)
        self._c_messages = stats.counter("net.messages")
        self._c_hops = stats.counter("net.hops")
        self._h_latency = stats.histogram("net.latency")
        #: per-kind send counters ("net.line", ...), filled on first use
        self._c_by_kind: Dict[DataKind, Counter] = {}
        #: optional fault injector (repro.check.faults).  Entry delays are
        #: applied *before* a message books any link, so per-link FIFO and
        #: the occupancy books stay consistent; drops are vetoed per
        #: message at ``send`` and never touch the fabric.
        self.fault_hook = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def coords(self, node: int) -> Tuple[int, int]:
        return node % self.width, node // self.width

    def distance(self, src: int, dst: int) -> int:
        """Manhattan hop count between two nodes."""
        (x0, y0), (x1, y1) = self.coords(src), self.coords(dst)
        return abs(x1 - x0) + abs(y1 - y0)

    def _route_nodes(self, src: int, dst: int) -> List[int]:
        """XY (dimension-ordered) route, inclusive of both endpoints."""
        x, y = self.coords(src)
        x1, y1 = self.coords(dst)
        path = [src]
        while x != x1:
            x += 1 if x1 > x else -1
            path.append(y * self.width + x)
        while y != y1:
            y += 1 if y1 > y else -1
            path.append(y * self.width + x)
        return path

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def route(
        self,
        src: int,
        dst: int,
        line: bool,
        vc: str,
        callback: Callable[[], None],
    ) -> int:
        """Schedule ``callback`` at the message's delivery time.

        ``line`` selects the serialization cost (full line vs. control
        flit); ``vc`` selects the virtual channel's occupancy book.
        """
        ser = self.line_ser_cycles if line else self.word_ser_cycles
        path = self._route_nodes(src, dst)
        t = self.sim.now
        if self.fault_hook is not None:
            # Injection-point delay: the message sits at the source's
            # network interface before entering the mesh proper.
            t += self.fault_hook.route_delay(src, dst, vc)
        if len(path) == 1:
            # Local delivery (e.g. the home node answering itself): no
            # link crossed, but the switch traversal still costs a hop.
            t += self.hop_cycles
        for u, v in zip(path, path[1:]):
            start = max(t, self._link_free.get((u, v, vc), 0))
            self._link_free[(u, v, vc)] = start + ser
            t = start + ser + self.hop_cycles
        self._c_messages.value += 1
        self._c_hops.value += len(path) - 1
        self._h_latency.add(t - self.sim.now)
        self.sim.schedule_at(t, callback)
        return t

    def send(self, msg: DataMessage, origin: Optional[int] = None) -> int:
        """Deliver a data message point-to-point (Crossbar-compatible).

        ``origin`` overrides the routing source for messages whose
        logical ``src`` is not a mesh node (memory supplies carry
        ``src=MEMORY_NODE`` but enter the fabric at the home node).
        """
        if msg.dst not in self._receivers:
            raise KeyError(f"no receiver attached for node {msg.dst}")
        # Drop decision comes first: a dropped message must not commit
        # ownership or book links.  The injector only drops messages the
        # protocol can recover from (tear-offs re-fetched via the queue).
        if self.fault_hook is not None and self.fault_hook.drop(msg):
            self.stats.counter("net.faulted_drops").inc()
            return -1
        src = origin if origin is not None else msg.src
        if src < 0:
            src = msg.dst  # memory with no stated origin: model as local
        kind = msg.kind
        line = kind is DataKind.LINE or kind is DataKind.PUSH
        kind_counter = self._c_by_kind.get(kind)
        if kind_counter is None:
            kind_counter = self._c_by_kind[kind] = self.stats.counter(
                f"net.{kind.value}"
            )
        kind_counter.value += 1

        # Ownership bookkeeping for the directory (see module docstring).
        listener = self.ownership_listener
        exclusive = (
            msg.kind is DataKind.LINE and msg.grant is GrantState.EXCLUSIVE
        )
        loan_return = msg.kind is DataKind.LOAN_RETURN and msg.data is not None
        if listener is not None and (exclusive or loan_return):
            # Committed at send time: while the line is in flight the
            # receiver already answers for it (its MSHR replies retry).
            listener(msg.line_addr, msg.dst)

        def deliver() -> None:
            if (
                listener is not None
                and msg.kind is DataKind.PUSH
            ):
                # A push lands unsolicited; until delivery the *sender*
                # answers for the line (its ``forwarded`` marker), so the
                # ownership move is recorded only now.
                self._receivers[msg.dst](msg)
                listener(msg.line_addr, msg.dst)
                return
            self._receivers[msg.dst](msg)

        return self.route(src, msg.dst, line=line, vc=VC_RESP, callback=deliver)

    def attach(self, node_id: int, receiver: Callable[[DataMessage], None]) -> None:
        """Register the delivery callback for a node (or memory)."""
        self._receivers[node_id] = receiver

"""Split-transaction broadcast snooping address bus.

Models the Gigaplane-style address bus of the paper's target (Table 1):

* split address/data — the address phase establishes global coherence
  order; data moves separately on the crossbar;
* broadcast snooping — every controller observes every transaction, which
  is what lets the delayed-response/IQOLB protocols build their
  distributed queue purely from locally observed bus order (paper 3.2);
* 12-cycle address access latency and a bounded number of outstanding
  transactions (117 in Table 1).

The *issue order* of transactions is the system's global coherence order.

Per-line blocking: while a (non-deferred) fill for a line is in flight,
further transactions for that same line wait — this models the
snoop-hit-on-pending-MSHR retry of real buses, and is what makes
concurrent misses to one line coherent.  A *deferred* response releases
the line block immediately: the owner retains the line and keeps
answering snoops, so subsequent LPRFOs broadcast freely and the
distributed queue can form (paper 3.2).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.engine.simulator import Simulator
from repro.engine.stats import Counter, StatsRegistry
from repro.interconnect.crossbar import Crossbar
from repro.interconnect.messages import (
    MEMORY_NODE,
    BusOp,
    BusTransaction,
    DataKind,
    DataMessage,
    GrantState,
    SnoopReply,
)
from repro.mem.mainmemory import MainMemory

#: transactions that move a cache line to the requester
DATA_OPS = frozenset({BusOp.GETS, BusOp.GETX, BusOp.LPRFO, BusOp.QOLB_ENQ})


class AddressBus:
    """Arbitrates, broadcasts, and resolves who supplies data."""

    def __init__(
        self,
        sim: Simulator,
        stats: StatsRegistry,
        memory: MainMemory,
        crossbar: Crossbar,
        addr_latency: int = 12,
        issue_interval: int = 2,
        max_outstanding: int = 117,
        retry_delay: int = 20,
    ) -> None:
        self.sim = sim
        self.stats = stats
        self.memory = memory
        self.crossbar = crossbar
        self.addr_latency = addr_latency
        self.issue_interval = issue_interval
        self.max_outstanding = max_outstanding
        self.retry_delay = retry_delay
        self._clients: Dict[int, "BusClient"] = {}
        self._snoop_order: List = []
        self._queue: Deque[BusTransaction] = deque()
        self._next_issue_time = 0
        self._issue_scheduled = False
        self._outstanding = 0
        #: line -> txn_id of the in-flight fill blocking that line
        self._line_blocked: Dict[int, int] = {}
        #: transactions parked behind a blocked line, in arrival order
        self._line_wait: Dict[int, Deque[BusTransaction]] = {}
        #: optional trace hook: observer(time, txn, supplier, shared, deferred)
        self.observer: Optional[Callable[..., None]] = None
        #: per-bus transaction numbering, deterministic run to run
        self._next_txn_id = 0
        #: optional fault injector (repro.check.faults) — may stretch the
        #: address phase of individual transactions by a bounded jitter.
        self.fault_hook = None
        self._next_resolve_time = 0
        # Per-transaction counters, pre-resolved once; rare outcome
        # counters (cancellations, stalls, conflicts) stay lazy.
        self._c_requests = stats.counter("bus.requests")
        self._c_transactions = stats.counter("bus.transactions")
        self._h_arb_wait = stats.histogram("bus.arb_wait")
        self._w_txn_rate = stats.windowed("bus.txn_rate")
        #: per-op issue counters ("bus.gets", ...), filled on first use
        self._c_by_op: Dict[BusOp, Counter] = {}

    def attach(self, node_id: int, client: "BusClient") -> None:
        self._clients[node_id] = client
        self._snoop_order = sorted(self._clients.items())

    # ------------------------------------------------------------------
    # Request side
    # ------------------------------------------------------------------
    def request(self, txn: BusTransaction) -> None:
        """Enqueue a transaction for arbitration (FIFO)."""
        if txn.request_time is None:
            txn.request_time = self.sim.now
            txn.txn_id = self._next_txn_id
            self._next_txn_id += 1
        self._queue.append(txn)
        self._c_requests.value += 1
        self._pump()

    def transaction_complete(self, txn: BusTransaction) -> None:
        """Called by the requester when the response data has arrived."""
        self._outstanding -= 1
        self._unblock_line(txn)
        self._pump()

    # ------------------------------------------------------------------
    # Arbitration and issue
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        if self._issue_scheduled or not self._queue:
            return
        if self._outstanding >= self.max_outstanding:
            self.stats.counter("bus.outstanding_stalls").inc()
            return
        when = max(self.sim.now, self._next_issue_time)
        self._issue_scheduled = True
        self.sim.schedule_at(when, self._issue_next)

    def _issue_next(self) -> None:
        self._issue_scheduled = False
        if self._outstanding >= self.max_outstanding:
            return
        txn = self._pick_issuable()
        if txn is None:
            return
        self._next_issue_time = self.sim.now + self.issue_interval
        txn.issue_time = self.sim.now
        if txn.request_time is not None:
            self._h_arb_wait.add(self.sim.now - txn.request_time)
        self._c_transactions.value += 1
        op_counter = self._c_by_op.get(txn.op)
        if op_counter is None:
            op_counter = self._c_by_op[txn.op] = self.stats.counter(
                f"bus.{txn.op.value}"
            )
        op_counter.value += 1
        self._w_txn_rate.record(self.sim.now)
        if txn.op in DATA_OPS:
            self._outstanding += 1
            # Block the line until the fill lands (or the response turns
            # out to be deferred, which unblocks at resolve time).
            self._line_blocked[txn.line_addr] = txn.txn_id
        # Snoop resolution happens after the address access latency.  A
        # fault injector may stretch individual address phases, but the
        # bus resolves strictly in issue order — that *is* the coherence
        # order — so resolve times are clamped monotonically.
        latency = self.addr_latency
        if self.fault_hook is not None:
            latency += self.fault_hook.bus_jitter(txn)
        resolve_at = max(self.sim.now + latency, self._next_resolve_time)
        self._next_resolve_time = resolve_at
        self.sim.schedule_at(resolve_at, self._resolve, txn)
        if self._queue:
            self._pump()

    def _pick_issuable(self) -> Optional[BusTransaction]:
        """Pop the first live transaction whose line is not blocked."""
        while self._queue:
            txn = self._queue.popleft()
            if txn.cancelled:
                self.stats.counter("bus.cancelled").inc()
                # A retried transaction may already hold its line's block
                # (e.g. its requester was satisfied by a pushed line in
                # the meantime); dropping it must release the block.
                self._unblock_line(txn)
                continue
            blocker = self._line_blocked.get(txn.line_addr)
            if (
                blocker is not None
                and blocker != txn.txn_id
                and txn.op is not BusOp.WRITEBACK
            ):
                # Ownership-granting and data ops alike wait out an
                # in-flight fill: an UPGRADE crossing a pending fill
                # would let stale data be installed over a newer write.
                # (A transaction blocked by itself is a retry; let it in.)
                self._line_wait.setdefault(txn.line_addr, deque()).append(txn)
                self.stats.counter("bus.line_conflicts").inc()
                continue
            return txn
        return None

    def _unblock_line(self, txn: BusTransaction) -> None:
        if self._line_blocked.get(txn.line_addr) != txn.txn_id:
            return
        del self._line_blocked[txn.line_addr]
        waiters = self._line_wait.pop(txn.line_addr, None)
        if waiters:
            # Re-enter at the front, preserving arrival order.
            self._queue.extendleft(reversed(waiters))

    # ------------------------------------------------------------------
    # Snoop resolution
    # ------------------------------------------------------------------
    def _resolve(self, txn: BusTransaction) -> None:
        """Broadcast the snoop and determine the data supplier."""
        if txn.cancelled:
            # Withdrawn after issue (e.g. an UPGRADE whose SC already
            # failed): it must not reach the snoopers — a stale upgrade
            # would invalidate the rightful owner.
            self.stats.counter("bus.cancelled_in_flight").inc()
            if txn.op in DATA_OPS:
                self._outstanding -= 1
                self._unblock_line(txn)
            self._pump()
            return
        supply_node: Optional[int] = None
        defer_node: Optional[int] = None
        retry = False
        shared = False
        for node_id, client in self._snoop_order:
            if node_id == txn.requester:
                continue
            reply = client.snoop(txn)
            if reply.shared:
                shared = True
            if reply.supply:
                if supply_node is not None:
                    raise RuntimeError(
                        f"two owners answered {txn}: P{supply_node} and P{node_id}"
                    )
                supply_node = node_id
            if reply.defer and defer_node is None:
                defer_node = node_id
            if reply.retry:
                retry = True

        if supply_node is None and retry:
            # The line is in flight between caches; NACK and reissue — the
            # retry mechanism of real snooping buses.
            self._retry(txn)
            return

        deferred = supply_node is None and defer_node is not None
        supplier = supply_node if supply_node is not None else defer_node

        # Second snoop phase: outcome-dependent reactions (queue breakdown
        # happens only when an owner actually supplied a regular RFO).
        if txn.op in (BusOp.GETX, BusOp.UPGRADE):
            supplied = supply_node is not None
            for node_id, client in self._snoop_order:
                if node_id != txn.requester:
                    client.post_snoop(txn, supplied=supplied, deferred=deferred)

        if deferred:
            # The responsible node keeps answering snoops; later same-line
            # requests must broadcast so the queue can form.
            self._unblock_line(txn)
            self._pump()

        if txn.op is BusOp.WRITEBACK:
            if txn.data is None:
                raise RuntimeError(f"writeback {txn} carries no data")
            self.memory.write_line(txn.line_addr, txn.data)
            self._notify_requester(txn, supplier, shared, deferred)
            self._observe(txn, supplier, shared, deferred)
            return

        if txn.op is BusOp.UPGRADE:
            # Permission-only: sharers invalidated during snoop; no data.
            self._notify_requester(txn, supplier, shared, deferred)
            self._observe(txn, supplier, shared, deferred)
            return

        if supply_node is None and not deferred:
            self._supply_from_memory(txn, shared)
        # else: the owning controller supplies (now or deferred) — it
        # learned so from its own snoop return and schedules the send.
        self._notify_requester(txn, supplier, shared, deferred)
        self._observe(txn, supplier, shared, deferred)

    def _retry(self, txn: BusTransaction) -> None:
        """NACK: reissue the transaction after a short delay."""
        txn.retries += 1
        self.stats.counter("bus.retries").inc()
        if txn.retries > 10_000:
            raise RuntimeError(f"{txn} retried {txn.retries} times; wedged")
        if txn.op in DATA_OPS:
            self._outstanding -= 1  # re-incremented at the next issue
        # The line block (keyed by this txn) is retained so parked
        # same-line transactions keep waiting behind us.
        self.sim.schedule(self.retry_delay, self._requeue, txn)

    def _requeue(self, txn: BusTransaction) -> None:
        self._queue.append(txn)
        self._pump()

    def _notify_requester(
        self,
        txn: BusTransaction,
        supplier: Optional[int],
        shared: bool,
        deferred: bool,
    ) -> None:
        client = self._clients.get(txn.requester)
        if client is not None:
            client.on_own_issue(txn, supplier, shared, deferred)

    def _observe(
        self,
        txn: BusTransaction,
        supplier: Optional[int],
        shared: bool,
        deferred: bool,
    ) -> None:
        if self.observer is not None:
            self.observer(self.sim.now, txn, supplier, shared, deferred)

    def _supply_from_memory(self, txn: BusTransaction, shared: bool) -> None:
        """No cache owner: main memory provides the line."""
        if txn.op is BusOp.GETS:
            grant = GrantState.SHARED if shared else GrantState.EXCLUSIVE
        else:
            grant = GrantState.EXCLUSIVE
        data = self.memory.read_line(txn.line_addr)
        msg = DataMessage(
            DataKind.LINE,
            txn.line_addr,
            src=MEMORY_NODE,
            dst=txn.requester,
            data=data,
            grant=grant,
            txn_id=txn.txn_id,
        )
        self.stats.counter("bus.memory_supplies").inc()
        self.sim.schedule(self.memory.line_latency(), self.crossbar.send, msg)


class BusClient:
    """Interface controllers implement to sit on the address bus."""

    def snoop(self, txn: BusTransaction) -> SnoopReply:  # pragma: no cover
        raise NotImplementedError

    def post_snoop(
        self, txn: BusTransaction, supplied: bool, deferred: bool
    ) -> None:  # pragma: no cover
        """Second phase: reactions that depend on the snoop outcome."""
        raise NotImplementedError

    def on_own_issue(
        self,
        txn: BusTransaction,
        supplier: Optional[int],
        shared: bool,
        deferred: bool,
    ) -> None:  # pragma: no cover
        raise NotImplementedError

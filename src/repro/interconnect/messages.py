"""Message and transaction types for the bus and data network.

The address bus carries :class:`BusTransaction` broadcasts; the crossbar
carries :class:`DataMessage` point-to-point responses.  LPRFO — the
low-priority read-for-ownership introduced in paper §3.2 — is a first-class
bus operation: it is an RFO whose response the owner may defer for a
bounded time, and whose broadcast is what lets every controller build the
distributed queue of waiting requestors.
"""

from __future__ import annotations

import enum
from typing import List, Optional


class BusOp(enum.Enum):
    """Address-bus transaction types."""

    GETS = "GetS"          # read, shared permission
    GETX = "GetX"          # read for ownership (RFO), high priority
    UPGRADE = "Upgrade"    # S -> M permission, no data needed
    LPRFO = "LPRFO"        # low-priority read-for-ownership (paper 3.2)
    QOLB_ENQ = "QolbEnq"   # explicit QOLB enqueue (EnQOLB instruction)
    WRITEBACK = "WB"       # dirty eviction to memory

    def __repr__(self) -> str:
        return self.value


#: Bus operations that request ownership (write permission).
OWNERSHIP_OPS = frozenset({BusOp.GETX, BusOp.UPGRADE, BusOp.LPRFO, BusOp.QOLB_ENQ})

#: Bus operations whose response the owner may legally defer.
DEFERRABLE_OPS = frozenset({BusOp.LPRFO, BusOp.QOLB_ENQ})


class BusTransaction:
    """One address-bus broadcast.

    ``op`` may be rewritten by the requester while the transaction is still
    queued (an UPGRADE whose shared copy gets invalidated before issue must
    become a GETX) — the bus reads ``op`` at issue time.
    """

    _next_id = 0

    __slots__ = (
        "txn_id",
        "op",
        "line_addr",
        "requester",
        "request_time",
        "issue_time",
        "data",
        "cancelled",
        "retries",
    )

    def __init__(self, op: BusOp, line_addr: int, requester: int) -> None:
        # Provisional id; the bus re-stamps a per-run sequence number at
        # first request() so ids are deterministic run to run.
        self.txn_id = BusTransaction._next_id
        BusTransaction._next_id += 1
        self.op = op
        self.line_addr = line_addr
        self.requester = requester
        self.request_time: Optional[int] = None  # stamped at bus.request()
        self.issue_time: Optional[int] = None
        self.data: Optional[List[int]] = None  # payload for writebacks
        #: set by the requester to withdraw a queued transaction (e.g. an
        #: UPGRADE whose SC already failed); the bus drops it at issue time.
        self.cancelled = False
        #: times this transaction was NACKed and reissued
        self.retries = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Txn#{self.txn_id} {self.op.value} {self.line_addr:#x} "
            f"from P{self.requester}>"
        )


class SnoopReply:
    """One controller's reaction to a snooped transaction.

    ``supply``: I own the line and will send data promptly (unique).
    ``defer``: the response is delayed — either I am the deferring owner,
    or I am a queued waiter and the distributed queue will eventually
    serve this requestor.  Multiple nodes may defer; any defer suppresses
    the memory supply.
    ``retry``: the line is in flight (hand-off, loan return); the bus must
    reissue this transaction shortly — the NACK/retry of real snooping
    buses.  Ignored when some node supplies.
    ``shared``: I retain a shared copy.
    """

    __slots__ = ("supply", "defer", "shared", "retry")

    def __init__(
        self,
        supply: bool = False,
        defer: bool = False,
        shared: bool = False,
        retry: bool = False,
    ) -> None:
        self.supply = supply
        self.defer = defer
        self.shared = shared
        self.retry = retry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = [
            name
            for name in ("supply", "defer", "shared", "retry")
            if getattr(self, name)
        ]
        return f"<Snoop {' '.join(flags) or 'ignore'}>"


class DataKind(enum.Enum):
    """Kinds of crossbar messages."""

    LINE = "line"            # full line with a coherence grant
    TEAROFF = "tearoff"      # speculative value, no ownership (paper 3.3)
    LOAN_RETURN = "loanret"  # borrowed line returned (queue retention)
    PUSH = "push"            # protected-data forward (Generalized IQOLB, paper 6)
    PUSH_ACK = "pushack"     # receipt acknowledgement for a PUSH

    def __repr__(self) -> str:
        return self.value


class GrantState(enum.Enum):
    """Coherence permission carried by a LINE message."""

    SHARED = "S"
    EXCLUSIVE = "E"

    def __repr__(self) -> str:
        return self.value


class DataMessage:
    """A point-to-point response on the data network."""

    __slots__ = (
        "kind",
        "line_addr",
        "src",
        "dst",
        "data",
        "grant",
        "loan",
        "lock_free",
        "txn_id",
    )

    def __init__(
        self,
        kind: DataKind,
        line_addr: int,
        src: int,
        dst: int,
        data: Optional[List[int]] = None,
        grant: Optional[GrantState] = None,
        loan: bool = False,
        lock_free: bool = False,
        txn_id: Optional[int] = None,
    ) -> None:
        self.kind = kind
        self.line_addr = line_addr
        self.src = src
        self.dst = dst
        self.data = data
        self.grant = grant
        #: the bus transaction this message answers; None for distributed-
        #: queue chain transfers (hand-offs, eviction transfers).  The
        #: receiver drops responses whose txn_id no longer matches its
        #: MSHR — stale answers to superseded requests must not install.
        self.txn_id = txn_id
        #: queue-retention marker: receiver must return ownership to ``src``
        #: immediately after its write completes (paper 3.2/3.3).
        self.loan = loan
        #: QOLB hand-off hint: the lock arrives free (receiver may acquire).
        self.lock_free = lock_free

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Data {self.kind.value} {self.line_addr:#x} "
            f"P{self.src}->P{self.dst}>"
        )


#: Pseudo node id used as the source of memory-supplied data.
MEMORY_NODE = -1

"""Interconnect: snooping address bus, crossbar data network, messages."""

from repro.interconnect.bus import AddressBus, BusClient
from repro.interconnect.crossbar import Crossbar
from repro.interconnect.messages import (
    DEFERRABLE_OPS,
    MEMORY_NODE,
    OWNERSHIP_OPS,
    BusOp,
    BusTransaction,
    DataKind,
    DataMessage,
    GrantState,
    SnoopReply,
)

__all__ = [
    "AddressBus",
    "BusClient",
    "BusOp",
    "BusTransaction",
    "Crossbar",
    "DataKind",
    "DataMessage",
    "DEFERRABLE_OPS",
    "GrantState",
    "MEMORY_NODE",
    "OWNERSHIP_OPS",
    "SnoopReply",
]

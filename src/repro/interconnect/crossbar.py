"""Point-to-point crossbar data network.

Models the Gigaplane-XB-style data crossbar of the paper's target system
(Table 1): 40 cycles of latency per cache-line transfer, with transfers
from the same source port — and transfers *to* the same destination
port — serialized (a crossbar has no shared medium, so contention
appears at the ports, on both sides of the switch).  Short messages —
tear-off words and ownership-return tokens — cost less than full lines.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.engine.simulator import Simulator
from repro.engine.stats import StatsRegistry
from repro.interconnect.messages import DataKind, DataMessage


class Crossbar:
    """Data network connecting cache controllers and memory."""

    def __init__(
        self,
        sim: Simulator,
        stats: StatsRegistry,
        line_transfer_cycles: int = 40,
        word_transfer_cycles: int = 10,
    ) -> None:
        self.sim = sim
        self.stats = stats
        self.line_transfer_cycles = line_transfer_cycles
        self.word_transfer_cycles = word_transfer_cycles
        #: input (source-side) and output (destination-side) port
        #: occupancy; a node's two port directions are distinct hardware.
        self._port_free: Dict[int, int] = {}
        self._out_free: Dict[int, int] = {}
        self._receivers: Dict[int, Callable[[DataMessage], None]] = {}
        #: optional fault injector (repro.check.faults) — may delay a
        #: message before it claims its ports, or drop it outright.
        self.fault_hook = None

    def attach(self, node_id: int, receiver: Callable[[DataMessage], None]) -> None:
        """Register the delivery callback for a node (or memory)."""
        self._receivers[node_id] = receiver

    def send(self, msg: DataMessage) -> int:
        """Queue a message; returns its delivery time.

        Both ports are busy for the duration of the transfer: back-to-back
        sends from one node serialize at the source port, and transfers
        converging on one node serialize at its output port.  Only
        transfers between disjoint port pairs proceed concurrently, as on
        a real crossbar.
        """
        if msg.dst not in self._receivers:
            raise KeyError(f"no receiver attached for node {msg.dst}")
        # Fault injection happens *before* the ports are booked: a dropped
        # message never occupies the fabric, and an entry delay pushes the
        # whole transfer back without reordering either port's FIFO.
        entry_delay = 0
        if self.fault_hook is not None:
            if self.fault_hook.drop(msg):
                self.stats.counter("xbar.faulted_drops").inc()
                return -1
            entry_delay = self.fault_hook.data_delay(msg)
        cost = (
            self.line_transfer_cycles
            if msg.kind in (DataKind.LINE, DataKind.PUSH)
            else self.word_transfer_cycles
        )
        start = max(
            self.sim.now + entry_delay,
            self._port_free.get(msg.src, 0),
            self._out_free.get(msg.dst, 0),
        )
        delivery = start + cost
        self._port_free[msg.src] = delivery
        self._out_free[msg.dst] = delivery
        self.stats.counter("xbar.messages").inc()
        self.stats.counter(f"xbar.{msg.kind.value}").inc()
        self.stats.histogram("xbar.queueing").add(start - self.sim.now)
        self.sim.schedule_at(delivery, self._deliver, msg)
        return delivery

    def _deliver(self, msg: DataMessage) -> None:
        self._receivers[msg.dst](msg)

"""The delayed-response scheme (paper §3.2).

An LL miss issues a *low-priority* read-for-ownership (LPRFO).  While a
processor has an LL/SC sequence in flight on a line it owns (its link flag
covers the line), it defers responses to incoming LPRFOs until its own SC
completes — bounded by the time-out.  Regular RFOs (plain stores, lock
releases) are always served promptly; that priority split is exactly what
the paper introduces to fix lock hand-off latency.

The deferred LPRFOs observed on the broadcast bus form the distributed
queue; with ``queue_retention=False`` a regular RFO breaks the queue down
(waiters squash and reissue), with ``queue_retention=True`` the owner
loans the line out and gets it back after the write.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policy import SUPPLY_NOW, DeferDecision, ProtocolPolicy
from repro.cpu.ops import Op
from repro.interconnect.messages import BusOp, BusTransaction
from repro.mem.line import CacheLine

#: Deferral bound.  Architectural specs insist on few instructions between
#: LL and SC, so the SC nearly always completes well before this fires.
DEFAULT_TIMEOUT = 1_000


class DelayedResponsePolicy(ProtocolPolicy):
    """Aggressive baseline + delayed responses using LPRFO."""

    name = "delayed"

    def __init__(
        self,
        timeout_cycles: int = DEFAULT_TIMEOUT,
        queue_retention: bool = False,
    ) -> None:
        super().__init__()
        self.timeout_cycles: Optional[int] = timeout_cycles
        self.queue_retention = queue_retention
        if queue_retention:
            self.name = "delayed+retention"

    def ll_miss_op(self, op: Op) -> BusOp:
        return BusOp.LPRFO

    def should_defer(self, txn: BusTransaction, line: CacheLine) -> DeferDecision:
        ctrl = self.ctrl
        assert ctrl is not None
        line_addr = txn.line_addr
        # Already deferring this line: later requestors chain behind the
        # existing queue; no extra obligation is created.
        if line_addr in ctrl.obligations:
            return DeferDecision(defer=True, tearoff=False)
        # An LL/SC of our own is in flight on this line: delay the
        # response until our SC completes (paper §3.2).
        if ctrl.link_valid and ctrl.amap.line_addr(ctrl.link_addr) == line_addr:
            return DeferDecision(defer=True, tearoff=False)
        return SUPPLY_NOW

    def on_sc_success(self, addr: int, pc: int) -> bool:
        # The read-modify-write is done: forward the queue now.
        return True

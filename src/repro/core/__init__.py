"""The paper's contribution: protocol policies, prediction, delays.

This package holds the speculative decision layer (paper §3) that sits
alongside the MOESI protocol in :mod:`repro.coherence`.
"""

from repro.core.baseline import (
    AdaptiveBaselinePolicy,
    AggressiveBaselinePolicy,
    BaselinePolicy,
)
from repro.core.delayed import DelayedResponsePolicy
from repro.core.iqolb import IqolbPolicy
from repro.core.policy import SUPPLY_NOW, DeferDecision, ProtocolPolicy
from repro.core.predictor import HeldLock, HeldLockTable, LockPredictor
from repro.core.qolb import QolbPolicy
from repro.core.registry import (
    PRIMITIVE_SPECS,
    PrimitiveSpec,
    get_primitive,
    make_policy,
    policy_names,
    primitive_names,
    unknown_choice,
)

__all__ = [
    "AdaptiveBaselinePolicy",
    "AggressiveBaselinePolicy",
    "BaselinePolicy",
    "DeferDecision",
    "DelayedResponsePolicy",
    "HeldLock",
    "HeldLockTable",
    "IqolbPolicy",
    "LockPredictor",
    "PRIMITIVE_SPECS",
    "PrimitiveSpec",
    "ProtocolPolicy",
    "QolbPolicy",
    "SUPPLY_NOW",
    "get_primitive",
    "make_policy",
    "policy_names",
    "primitive_names",
    "unknown_choice",
]

"""Implicit QOLB (paper §3.3–3.4) — the paper's primary contribution.

IQOLB extends the delayed-response scheme with speculation on *how* the
LL/SC sequence is being used:

* if the LL's PC is predicted to be a **lock acquire**, the owner holds
  the line past its SC, all the way to the **release store**, and answers
  waiting requestors with **tear-off copies** so they spin locally — a
  hardware queue-based lock with one line transfer per acquire/release
  pair, and no software or ISA change;
* otherwise the sequence is treated as a plain **Fetch&Phi** and the line
  is forwarded as soon as the SC completes (the delayed-response
  behaviour).

Training follows §3.4: a successful LL/SC to an address followed some
time later by a plain store to the same address marks the LL's PC as a
lock; the held-lock table recognizes the release store and keeps writes
to collocated data from being misread as releases; timeouts while holding
feed the accuracy counter that disables pathological entries.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policy import SUPPLY_NOW, DeferDecision, ProtocolPolicy
from repro.core.predictor import HeldLockTable, LockPredictor
from repro.cpu.ops import Op
from repro.interconnect.messages import BusOp, BusTransaction
from repro.mem.line import CacheLine

#: Deferral bound while a lock is held: must comfortably cover the small,
#: lowest-level critical sections the speculation targets.
DEFAULT_LOCK_TIMEOUT = 5_000


class IqolbPolicy(ProtocolPolicy):
    """Delayed response + speculation on LL/SC use (Implicit QOLB)."""

    name = "iqolb"

    def __init__(
        self,
        timeout_cycles: int = DEFAULT_LOCK_TIMEOUT,
        queue_retention: bool = False,
        held_capacity: int = 8,
        predictor: Optional[LockPredictor] = None,
        generalized: bool = False,
        protected_capacity: int = 4,
    ) -> None:
        super().__init__()
        self.timeout_cycles: Optional[int] = timeout_cycles
        self.queue_retention = queue_retention
        if queue_retention:
            self.name = "iqolb+retention"
        #: Generalized IQOLB (paper 6): learn which data lines each
        #: critical section writes and forward them with the lock.
        self.generalized = generalized
        if generalized:
            self.name = "iqolb+gen"
        self.protected_capacity = protected_capacity
        #: learned lock-word -> recently written data lines (insertion order)
        self._protected: dict = {}
        #: set during a release so the controller can ask what to push
        self._releasing_word: Optional[int] = None
        self.predictor = predictor if predictor is not None else LockPredictor()
        self._held_capacity = held_capacity
        self.held: Optional[HeldLockTable] = None  # built at bind (needs amap)

    def bind(self, ctrl) -> None:  # type: ignore[override]
        super().bind(ctrl)
        self.held = HeldLockTable(ctrl.amap, capacity=self._held_capacity)

    # ------------------------------------------------------------------
    # Request side
    # ------------------------------------------------------------------
    def ll_miss_op(self, op: Op) -> BusOp:
        return BusOp.LPRFO

    # ------------------------------------------------------------------
    # Snoop side
    # ------------------------------------------------------------------
    def _held_lock_in_line(self, line_addr: int) -> bool:
        """A *predicted* lock in this line is currently held.

        Held-table entries whose PC has not (yet) been classified as a
        lock exist only for training — a plain Fetch&Phi must not be
        treated as held, or its line would sit waiting for a release
        store that never comes (and would only move on a timeout).
        """
        assert self.held is not None
        entry = self.held.lookup_line(line_addr)
        return entry is not None and self.predictor.predict_lock(entry.pc)

    def should_defer(self, txn: BusTransaction, line: CacheLine) -> DeferDecision:
        ctrl = self.ctrl
        assert ctrl is not None and self.held is not None
        line_addr = txn.line_addr
        if line_addr in ctrl.obligations:
            # Already deferring this line; later requestors chain behind
            # the queue but still receive a tear-off to spin on.
            return DeferDecision(
                defer=True, tearoff=self._held_lock_in_line(line_addr)
            )
        if self._held_lock_in_line(line_addr):
            # We hold a lock in this line: delay until the release store
            # and hand the requestor a tear-off copy (paper §3.3).
            return DeferDecision(defer=True, tearoff=True)
        if ctrl.link_valid and ctrl.amap.line_addr(ctrl.link_addr) == line_addr:
            # Our own LL/SC is in flight.  Predict its use: a lock acquire
            # will be held through the critical section (tear-off); a
            # Fetch&Phi forwards right after the SC (no tear-off).
            is_lock = self.predictor.predict_lock(ctrl.current_ll_pc)
            self.trace(
                "predict",
                line_addr,
                pc=ctrl.current_ll_pc,
                lock=is_lock,
                site="defer",
            )
            return DeferDecision(defer=True, tearoff=is_lock)
        return SUPPLY_NOW

    def tearoff_for_read(self, line_addr: int) -> bool:
        # Reads of a held lock are speculatively satisfied with tear-offs
        # so readers need not join the queue (paper §3.3).
        return self._held_lock_in_line(line_addr)

    # ------------------------------------------------------------------
    # Release points
    # ------------------------------------------------------------------
    def on_sc_success(self, addr: int, pc: int) -> bool:
        ctrl = self.ctrl
        assert ctrl is not None and self.held is not None
        # Track the successful RMW so a future store to the same address
        # is recognized as a release (this is also how training happens
        # on the very first encounter, paper §3.4).
        discarded = self.held.insert(addr, pc, ctrl.sim.now)
        if discarded is not None:
            ctrl.stats.counter(f"ctrl{ctrl.node_id}.held_discards").inc()
        is_lock = self.predictor.predict_lock(pc)
        self.trace(
            "predict",
            ctrl.amap.line_addr(addr),
            pc=pc,
            lock=is_lock,
            site="sc",
        )
        if is_lock:
            # Predicted lock acquire: keep the line; delay requestors
            # until the release store.
            return False
        # Predicted Fetch&Phi: forward the queue now.
        return True

    def on_store_complete(self, addr: int, pc: int) -> bool:
        assert self.held is not None and self.ctrl is not None
        entry = self.held.release(addr)
        if entry is None:
            if self.generalized:
                self._record_protected_store(addr)
            return False
        self._releasing_word = entry.addr
        # A store to a previously RMW-ed address: this is a lock release.
        if entry.timed_out:
            # The speculative hold expired before this release arrived; it
            # already counted as a misprediction and the late release does
            # not redeem it.
            pass
        elif self.predictor.predict_lock(entry.pc):
            self.predictor.record_correct(entry.pc)
        else:
            self.predictor.train_lock(entry.pc)
        return True

    def _record_protected_store(self, addr: int) -> None:
        """Associate a CS store with the most recently acquired lock."""
        assert self.held is not None and self.ctrl is not None
        holder = self.held.most_recent()
        if holder is None:
            return
        amap = self.ctrl.amap
        data_line = amap.line_addr(addr)
        if data_line == amap.line_addr(holder.addr):
            return  # collocated data rides the lock line anyway
        lines = self._protected.setdefault(holder.addr, {})
        lines.pop(data_line, None)
        lines[data_line] = True
        while len(lines) > self.protected_capacity:
            oldest = next(iter(lines))
            del lines[oldest]

    def protected_lines(self, lock_line: int) -> list:
        if not self.generalized or self._releasing_word is None:
            return []
        assert self.ctrl is not None
        if self.ctrl.amap.line_addr(self._releasing_word) != lock_line:
            return []
        lines = self._protected.get(self._releasing_word, {})
        return list(lines)

    def on_timeout(self, line_addr: int) -> None:
        # A timeout fired while we held a lock in this line: the critical
        # section outlived the deferral bound — count it against the
        # predictor entry that put us here (the pathological-case detector
        # of paper §3.4).
        assert self.held is not None
        entry = self.held.lookup_line(line_addr)
        if entry is not None:
            entry.timed_out = True
            self.predictor.record_misprediction(entry.pc)

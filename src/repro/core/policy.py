"""Protocol policy interface.

A *policy* is the paper's contribution distilled: it sits alongside the
cache-coherence protocol and "guides the decisions the protocol makes with
respect to lock (and associated data) transfers" (paper §1/abstract).  The
mechanics — MOESI states, MSHRs, the distributed queue, timers, tear-off
installation — live in :class:`repro.coherence.controller.CacheController`;
each policy only answers the speculative questions:

* what bus operation should an LL miss issue? (GetS / GetX / LPRFO)
* should an incoming deferrable request be delayed, and should the
  requestor receive a tear-off copy meanwhile?
* when is a deferral released — at SC completion (Fetch&Phi), at the
  release store (lock), or at an explicit DeQOLB?

One policy instance is created per controller, so per-node predictor state
lives naturally on the policy object.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, NamedTuple, Optional

from repro.cpu.ops import Op
from repro.interconnect.messages import BusOp, BusTransaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.coherence.controller import CacheController
    from repro.mem.line import CacheLine


class DeferDecision(NamedTuple):
    """Answer to "may this deferrable request be delayed?"."""

    defer: bool
    tearoff: bool


SUPPLY_NOW = DeferDecision(defer=False, tearoff=False)


class ProtocolPolicy:
    """Base policy: conventional MOESI behaviour, nothing speculative.

    Subclasses override the hooks below.  Defaults reproduce the paper's
    *Baseline* method: LL fetches shared, SC pays a second transaction,
    nothing is ever deferred.
    """

    #: identifier used in configs, stats and reports
    name = "base"
    #: preserve the distributed queue across regular RFOs? (paper §3.2/3.3)
    queue_retention = False
    #: maximum deferral before the timeout forwards the line (None = never
    #: defer, so no timer is needed)
    timeout_cycles: Optional[int] = None

    def __init__(self) -> None:
        self.ctrl: Optional["CacheController"] = None

    def bind(self, ctrl: "CacheController") -> None:
        """Attach this policy instance to its controller."""
        self.ctrl = ctrl

    def trace(self, kind: str, line_addr: int, **info: object) -> None:
        """Emit a telemetry event through the controller's dispatch point.

        Free when no tracer is attached (a single ``is None`` check), so
        policies may narrate speculative decisions unconditionally.
        """
        if self.ctrl is not None:
            self.ctrl._trace(kind, line_addr, **info)

    # ------------------------------------------------------------------
    # Request-side speculation
    # ------------------------------------------------------------------
    def ll_miss_op(self, op: Op) -> BusOp:
        """Bus operation an LL miss issues (paper Figure 1 progression)."""
        return BusOp.GETS

    # ------------------------------------------------------------------
    # Snoop-side speculation (only consulted when this node owns the line)
    # ------------------------------------------------------------------
    def should_defer(self, txn: BusTransaction, line: "CacheLine") -> DeferDecision:
        """May the response to this LPRFO/QOLB_ENQ be delayed?"""
        return SUPPLY_NOW

    def tearoff_for_read(self, line_addr: int) -> bool:
        """Serve an external GETS with a tear-off instead of downgrading?"""
        return False

    # ------------------------------------------------------------------
    # Release-point hooks (return True to discharge deferrals on the line)
    # ------------------------------------------------------------------
    def on_sc_success(self, addr: int, pc: int) -> bool:
        """SC completed.  True → forward any deferred queue now."""
        return True

    def on_sc_fail(self, addr: int, pc: int) -> None:
        """SC failed (prediction bookkeeping only)."""

    def on_store_complete(self, addr: int, pc: int) -> bool:
        """A plain store completed.  True → it released a lock; forward."""
        return False

    def on_enqolb_acquired(self, addr: int) -> None:
        """An EnQOLB observed the lock free with ownership (QOLB only)."""

    def on_deqolb(self, addr: int) -> None:
        """DeQOLB released the lock (QOLB only)."""

    def on_timeout(self, line_addr: int) -> None:
        """The deferral timer expired (prediction-accuracy bookkeeping)."""

    def protected_lines(self, lock_line: int) -> list:
        """Data lines to forward along with a released lock line.

        Generalized IQOLB (paper §6) overrides this; everyone else
        forwards nothing.
        """
        return []

"""Policy, primitive, and interconnect registries: build each by name.

Policy names follow the paper's Figure 1 taxonomy::

    baseline            Conventional LL/SC
    aggressive          Baseline + RFO on LL
    delayed             Delayed response (queue breaks down on RFO)
    delayed+retention   Delayed response with queue retention
    iqolb               Implicit QOLB (queue breaks down on RFO)
    iqolb+retention     Implicit QOLB with queue retention
    iqolb+gen           Generalized implicit QOLB (forwards protected data)
    adaptive            Conservative hybrid: RFO on first LL after an SC
    qolb                Explicit QOLB (EnQOLB/DeQOLB instructions)

A *primitive* (paper §4) pairs a synchronization library implementation
(the ``lock_kind`` the workloads instantiate) with the protocol policy
it runs on.  :data:`PRIMITIVE_SPECS` is the single source of truth: the
experiment runner's primitive table, the workloads' lock-kind list, the
prediction model's taxonomy classes, and the test suites' parameter
grids are all derived from it, so registering a primitive here is the
one step that wires it through the whole stack (and through the
conformance suite, which fails loudly on unregistered kinds).

Interconnects select the coherence fabric the ladder runs on::

    bus        broadcast MOESI snooping bus + data crossbar (paper Table 1)
    directory  home-node MOESI directory over a contention-modeled 2-D mesh
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Tuple

from repro.core.baseline import (
    AdaptiveBaselinePolicy,
    AggressiveBaselinePolicy,
    BaselinePolicy,
)
from repro.core.delayed import DelayedResponsePolicy
from repro.core.iqolb import IqolbPolicy
from repro.core.policy import ProtocolPolicy
from repro.core.qolb import QolbPolicy

if TYPE_CHECKING:  # pragma: no cover — type-only imports
    from repro.engine.simulator import Simulator
    from repro.engine.stats import StatsRegistry
    from repro.harness.config import SystemConfig
    from repro.mem.mainmemory import MainMemory

def unknown_choice(kind: str, value: Any, known: Iterable[str]) -> ValueError:
    """The registry rejection error: names the bad value AND the valid
    choices, so a typo'd CLI flag or spec field is self-diagnosing."""
    return ValueError(
        f"unknown {kind} {value!r}; known: {', '.join(known)}"
    )


_FACTORIES: Dict[str, Callable[..., ProtocolPolicy]] = {
    "baseline": BaselinePolicy,
    "aggressive": AggressiveBaselinePolicy,
    "delayed": lambda **kw: DelayedResponsePolicy(queue_retention=False, **kw),
    "delayed+retention": lambda **kw: DelayedResponsePolicy(
        queue_retention=True, **kw
    ),
    "iqolb": lambda **kw: IqolbPolicy(queue_retention=False, **kw),
    "iqolb+retention": lambda **kw: IqolbPolicy(queue_retention=True, **kw),
    "iqolb+gen": lambda **kw: IqolbPolicy(generalized=True, **kw),
    "adaptive": AdaptiveBaselinePolicy,
    "qolb": QolbPolicy,
}


def policy_names() -> List[str]:
    """All registered policy names, in taxonomy order."""
    return list(_FACTORIES)


def make_policy(name: str, **kwargs: Any) -> ProtocolPolicy:
    """Instantiate a fresh policy (one instance per controller)."""
    factory = _FACTORIES.get(name)
    if factory is None:
        raise unknown_choice("policy", name, _FACTORIES)
    return factory(**kwargs)


@dataclasses.dataclass(frozen=True)
class PrimitiveSpec:
    """One registered synchronization primitive.

    ``policy``
        Protocol policy name (a :func:`make_policy` choice).
    ``lock_kind``
        Software lock the workloads instantiate (a
        :data:`repro.workloads.base.LOCK_KINDS` choice).
    ``taxonomy``
        Throughput-model class: ``storm`` (centralized spinning),
        ``deferred`` (delay-bounded storm), ``queued`` (hardware
        queue), ``swqueue`` (software queue).
    ``fifo``
        Whether the primitive *claims* FIFO grant order — asserted by
        the conformance suite only where claimed (reciprocating and
        fissile trade FIFO for throughput by design).
    """

    name: str
    policy: str
    lock_kind: str
    taxonomy: str
    fifo: bool
    description: str = ""


def _spec(name, policy, lock_kind, taxonomy, fifo, description):
    return name, PrimitiveSpec(
        name, policy, lock_kind, taxonomy, fifo, description
    )


#: primitive name -> spec, in ladder order (single source of truth for
#: the experiment runner, workloads, prediction model, and test grids)
PRIMITIVE_SPECS: Dict[str, PrimitiveSpec] = dict([
    _spec("tts", "baseline", "tts", "storm", False,
          "test&test&set via LL/SC on the conventional protocol"),
    _spec("qolb", "qolb", "qolb", "queued", False,
          "explicit QOLB (EnQOLB/DeQOLB) on the QOLB protocol"),
    _spec("iqolb", "iqolb", "tts", "queued", False,
          "the TTS binary, unmodified, on the IQOLB protocol"),
    _spec("iqolb+retention", "iqolb+retention", "tts", "queued", False,
          "IQOLB with queue retention across RFOs"),
    _spec("iqolb+gen", "iqolb+gen", "tts", "queued", False,
          "generalized IQOLB forwarding protected data"),
    _spec("adaptive", "adaptive", "tts", "storm", False,
          "conservative hybrid: RFO on first LL after an SC"),
    _spec("delayed", "delayed", "tts", "deferred", False,
          "delayed-response protocol under the TTS binary"),
    _spec("delayed+retention", "delayed+retention", "tts", "deferred",
          False, "delayed response with queue retention"),
    _spec("aggressive", "aggressive", "tts", "storm", False,
          "baseline plus RFO on LL"),
    _spec("ticket", "baseline", "ticket", "swqueue", True,
          "counting-splice ticket lock on a global grant word"),
    _spec("mcs", "baseline", "mcs", "swqueue", True,
          "pointer-splice queue lock spinning on own node"),
    _spec("anderson", "baseline", "anderson", "swqueue", True,
          "counting-splice array lock spinning on a slot"),
    _spec("clh", "baseline", "clh", "swqueue", True,
          "pointer-splice queue lock spinning on predecessor node"),
    _spec("ts", "baseline", "ts", "storm", False,
          "plain test&set via LL/SC"),
    _spec("reciprocating", "baseline", "reciprocating", "swqueue", False,
          "single-word palindromic-admission stack lock "
          "(Dice & Kogan 2025)"),
    _spec("fissile", "baseline", "fissile", "swqueue", False,
          "test&set fast path behind an MCS anti-collapse queue "
          "(Dice & Kogan 2020)"),
])


def primitive_names() -> List[str]:
    """All registered primitive names, in ladder order."""
    return list(PRIMITIVE_SPECS)


def get_primitive(name: str) -> PrimitiveSpec:
    """Look up a primitive spec; rejection lists the valid choices."""
    spec = PRIMITIVE_SPECS.get(name)
    if spec is None:
        raise unknown_choice("primitive", name, PRIMITIVE_SPECS)
    return spec


INTERCONNECTS: Tuple[str, ...] = ("bus", "directory")


def interconnect_names() -> List[str]:
    """All registered interconnect backends."""
    return list(INTERCONNECTS)


def make_interconnect(
    cfg: "SystemConfig",
    sim: "Simulator",
    stats: "StatsRegistry",
    memory: "MainMemory",
    queue_retention: bool = False,
) -> Tuple[Any, Any]:
    """Build the configured coherence fabric.

    Returns ``(address_fabric, data_fabric)`` — the address-side object
    controllers ``request`` transactions on (AddressBus or
    DirectoryInterconnect) and the data-side object they ``send`` lines
    on (Crossbar or MeshNetwork).  Both pairs expose the same
    controller-facing surface, so :class:`CacheController` is agnostic.

    ``queue_retention`` mirrors the policy variant's protocol property
    into the directory, which must know whether a supplied RFO dissolves
    the waiter queue (paper §3.3's breakdown-vs-retention split).
    """
    if cfg.interconnect == "bus":
        from repro.interconnect.bus import AddressBus
        from repro.interconnect.crossbar import Crossbar

        crossbar = Crossbar(
            sim,
            stats,
            line_transfer_cycles=cfg.xbar_line_cycles,
            word_transfer_cycles=cfg.xbar_word_cycles,
        )
        bus = AddressBus(
            sim,
            stats,
            memory,
            crossbar,
            addr_latency=cfg.bus_addr_latency,
            issue_interval=cfg.bus_issue_interval,
            max_outstanding=cfg.bus_max_outstanding,
        )
        return bus, crossbar
    if cfg.interconnect == "directory":
        from repro.coherence.directory import DirectoryInterconnect
        from repro.interconnect.network import MeshNetwork

        network = MeshNetwork(
            sim,
            stats,
            cfg.n_processors,
            hop_cycles=cfg.net_hop_cycles,
            line_ser_cycles=cfg.net_line_ser_cycles,
            word_ser_cycles=cfg.net_word_ser_cycles,
        )
        directory = DirectoryInterconnect(
            sim,
            stats,
            memory,
            network,
            n_nodes=cfg.n_processors,
            lookup_cycles=cfg.dir_lookup_cycles,
            queue_retention=queue_retention,
        )
        return directory, network
    raise unknown_choice("interconnect", cfg.interconnect, INTERCONNECTS)

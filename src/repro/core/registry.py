"""Policy and interconnect registries: build both by name.

Policy names follow the paper's Figure 1 taxonomy::

    baseline            Conventional LL/SC
    aggressive          Baseline + RFO on LL
    delayed             Delayed response (queue breaks down on RFO)
    delayed+retention   Delayed response with queue retention
    iqolb               Implicit QOLB (queue breaks down on RFO)
    iqolb+retention     Implicit QOLB with queue retention
    iqolb+gen           Generalized implicit QOLB (forwards protected data)
    adaptive            Conservative hybrid: RFO on first LL after an SC
    qolb                Explicit QOLB (EnQOLB/DeQOLB instructions)

Interconnects select the coherence fabric the ladder runs on::

    bus        broadcast MOESI snooping bus + data crossbar (paper Table 1)
    directory  home-node MOESI directory over a contention-modeled 2-D mesh
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Tuple

from repro.core.baseline import (
    AdaptiveBaselinePolicy,
    AggressiveBaselinePolicy,
    BaselinePolicy,
)
from repro.core.delayed import DelayedResponsePolicy
from repro.core.iqolb import IqolbPolicy
from repro.core.policy import ProtocolPolicy
from repro.core.qolb import QolbPolicy

if TYPE_CHECKING:  # pragma: no cover — type-only imports
    from repro.engine.simulator import Simulator
    from repro.engine.stats import StatsRegistry
    from repro.harness.config import SystemConfig
    from repro.mem.mainmemory import MainMemory

_FACTORIES: Dict[str, Callable[..., ProtocolPolicy]] = {
    "baseline": BaselinePolicy,
    "aggressive": AggressiveBaselinePolicy,
    "delayed": lambda **kw: DelayedResponsePolicy(queue_retention=False, **kw),
    "delayed+retention": lambda **kw: DelayedResponsePolicy(
        queue_retention=True, **kw
    ),
    "iqolb": lambda **kw: IqolbPolicy(queue_retention=False, **kw),
    "iqolb+retention": lambda **kw: IqolbPolicy(queue_retention=True, **kw),
    "iqolb+gen": lambda **kw: IqolbPolicy(generalized=True, **kw),
    "adaptive": AdaptiveBaselinePolicy,
    "qolb": QolbPolicy,
}


def policy_names() -> List[str]:
    """All registered policy names, in taxonomy order."""
    return list(_FACTORIES)


def make_policy(name: str, **kwargs: Any) -> ProtocolPolicy:
    """Instantiate a fresh policy (one instance per controller)."""
    factory = _FACTORIES.get(name)
    if factory is None:
        known = ", ".join(_FACTORIES)
        raise ValueError(f"unknown policy {name!r}; known: {known}")
    return factory(**kwargs)


INTERCONNECTS: Tuple[str, ...] = ("bus", "directory")


def interconnect_names() -> List[str]:
    """All registered interconnect backends."""
    return list(INTERCONNECTS)


def make_interconnect(
    cfg: "SystemConfig",
    sim: "Simulator",
    stats: "StatsRegistry",
    memory: "MainMemory",
    queue_retention: bool = False,
) -> Tuple[Any, Any]:
    """Build the configured coherence fabric.

    Returns ``(address_fabric, data_fabric)`` — the address-side object
    controllers ``request`` transactions on (AddressBus or
    DirectoryInterconnect) and the data-side object they ``send`` lines
    on (Crossbar or MeshNetwork).  Both pairs expose the same
    controller-facing surface, so :class:`CacheController` is agnostic.

    ``queue_retention`` mirrors the policy variant's protocol property
    into the directory, which must know whether a supplied RFO dissolves
    the waiter queue (paper §3.3's breakdown-vs-retention split).
    """
    if cfg.interconnect == "bus":
        from repro.interconnect.bus import AddressBus
        from repro.interconnect.crossbar import Crossbar

        crossbar = Crossbar(
            sim,
            stats,
            line_transfer_cycles=cfg.xbar_line_cycles,
            word_transfer_cycles=cfg.xbar_word_cycles,
        )
        bus = AddressBus(
            sim,
            stats,
            memory,
            crossbar,
            addr_latency=cfg.bus_addr_latency,
            issue_interval=cfg.bus_issue_interval,
            max_outstanding=cfg.bus_max_outstanding,
        )
        return bus, crossbar
    if cfg.interconnect == "directory":
        from repro.coherence.directory import DirectoryInterconnect
        from repro.interconnect.network import MeshNetwork

        network = MeshNetwork(
            sim,
            stats,
            cfg.n_processors,
            hop_cycles=cfg.net_hop_cycles,
            line_ser_cycles=cfg.net_line_ser_cycles,
            word_ser_cycles=cfg.net_word_ser_cycles,
        )
        directory = DirectoryInterconnect(
            sim,
            stats,
            memory,
            network,
            n_nodes=cfg.n_processors,
            lookup_cycles=cfg.dir_lookup_cycles,
            queue_retention=queue_retention,
        )
        return directory, network
    known = ", ".join(INTERCONNECTS)
    raise ValueError(
        f"unknown interconnect {cfg.interconnect!r}; known: {known}"
    )

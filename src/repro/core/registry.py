"""Policy registry: build protocol policies by name.

Names follow the paper's Figure 1 taxonomy::

    baseline            Conventional LL/SC
    aggressive          Baseline + RFO on LL
    delayed             Delayed response (queue breaks down on RFO)
    delayed+retention   Delayed response with queue retention
    iqolb               Implicit QOLB (queue breaks down on RFO)
    iqolb+retention     Implicit QOLB with queue retention
    iqolb+gen           Generalized implicit QOLB (forwards protected data)
    adaptive            Conservative hybrid: RFO on first LL after an SC
    qolb                Explicit QOLB (EnQOLB/DeQOLB instructions)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.core.baseline import (
    AdaptiveBaselinePolicy,
    AggressiveBaselinePolicy,
    BaselinePolicy,
)
from repro.core.delayed import DelayedResponsePolicy
from repro.core.iqolb import IqolbPolicy
from repro.core.policy import ProtocolPolicy
from repro.core.qolb import QolbPolicy

_FACTORIES: Dict[str, Callable[..., ProtocolPolicy]] = {
    "baseline": BaselinePolicy,
    "aggressive": AggressiveBaselinePolicy,
    "delayed": lambda **kw: DelayedResponsePolicy(queue_retention=False, **kw),
    "delayed+retention": lambda **kw: DelayedResponsePolicy(
        queue_retention=True, **kw
    ),
    "iqolb": lambda **kw: IqolbPolicy(queue_retention=False, **kw),
    "iqolb+retention": lambda **kw: IqolbPolicy(queue_retention=True, **kw),
    "iqolb+gen": lambda **kw: IqolbPolicy(generalized=True, **kw),
    "adaptive": AdaptiveBaselinePolicy,
    "qolb": QolbPolicy,
}


def policy_names() -> List[str]:
    """All registered policy names, in taxonomy order."""
    return list(_FACTORIES)


def make_policy(name: str, **kwargs: Any) -> ProtocolPolicy:
    """Instantiate a fresh policy (one instance per controller)."""
    factory = _FACTORIES.get(name)
    if factory is None:
        known = ", ".join(_FACTORIES)
        raise ValueError(f"unknown policy {name!r}; known: {known}")
    return factory(**kwargs)

"""Lock prediction tables (paper §3.4).

Two small hardware tables drive IQOLB's speculation:

* :class:`LockPredictor` — indexed by the *instruction PC* of an LL.  An
  entry is trained to "lock" when a successful LL/SC to an address is
  followed, some time later, by a plain store to the *same* address (the
  release).  "Once a lock operation is seen, one can predict with high
  confidence that this will be true for all future executions of the
  code."  A per-entry accuracy counter detects the pathological case and
  turns the entry off.

* :class:`HeldLockTable` — tracks locks this processor currently holds
  (address + acquiring PC), so the release store is recognized quickly
  and writes to collocated or falsely-shared words are not misread as
  releases (the table is keyed by the exact word address).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.mem.address import AddressMap


class PredictorEntry:
    """Per-PC prediction state with a confidence shut-off."""

    __slots__ = ("is_lock", "correct", "wrong", "enabled")

    def __init__(self) -> None:
        self.is_lock = False
        self.correct = 0
        self.wrong = 0
        self.enabled = True


class LockPredictor:
    """PC-indexed lock/Fetch&Phi predictor."""

    def __init__(
        self,
        capacity: int = 256,
        disable_threshold: float = 0.5,
        min_samples: int = 4,
    ) -> None:
        self.capacity = capacity
        self.disable_threshold = disable_threshold
        self.min_samples = min_samples
        self._entries: "OrderedDict[int, PredictorEntry]" = OrderedDict()

    def _entry(self, pc: int) -> PredictorEntry:
        entry = self._entries.get(pc)
        if entry is None:
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
            entry = PredictorEntry()
            self._entries[pc] = entry
        else:
            self._entries.move_to_end(pc)
        return entry

    def predict_lock(self, pc: int) -> bool:
        """Is the LL at ``pc`` believed to be a lock acquire?"""
        entry = self._entries.get(pc)
        return entry is not None and entry.enabled and entry.is_lock

    def train_lock(self, pc: int) -> None:
        """A release store confirmed the LL at ``pc`` acquires a lock."""
        entry = self._entry(pc)
        entry.is_lock = True
        entry.correct += 1

    def record_correct(self, pc: int) -> None:
        """A hold-until-release speculation paid off (released in time)."""
        entry = self._entries.get(pc)
        if entry is not None:
            entry.correct += 1

    def record_misprediction(self, pc: int) -> None:
        """The speculation for ``pc`` went wrong (e.g. timeout while held).

        After ``min_samples`` outcomes, entries whose accuracy drops below
        ``disable_threshold`` are switched off ("the pathological case can
        be detected by determining the accuracy of prediction and turning
        the predictor off", paper §3.4).
        """
        entry = self._entries.get(pc)
        if entry is None:
            return
        entry.wrong += 1
        total = entry.correct + entry.wrong
        if total >= self.min_samples:
            accuracy = entry.correct / total
            if accuracy < self.disable_threshold:
                entry.enabled = False

    def stats(self) -> Dict[str, int]:
        lock_entries = sum(1 for e in self._entries.values() if e.is_lock)
        disabled = sum(1 for e in self._entries.values() if not e.enabled)
        return {
            "entries": len(self._entries),
            "lock_entries": lock_entries,
            "disabled": disabled,
        }


class HeldLock:
    """One held-lock record: word address, acquiring PC, acquire time."""

    __slots__ = ("addr", "pc", "acquired_at", "timed_out")

    def __init__(self, addr: int, pc: int, acquired_at: int) -> None:
        self.addr = addr
        self.pc = pc
        self.acquired_at = acquired_at
        #: the deferral for this hold expired before the release store; a
        #: late release must not count as a successful speculation.
        self.timed_out = False


class HeldLockTable:
    """Small table of locks this processor currently holds.

    The table needs very few entries: speculation targets the lowest-level
    critical sections, and when a nested section enters a full table the
    oldest speculation is discarded (paper §3.3).
    """

    def __init__(self, amap: AddressMap, capacity: int = 8) -> None:
        self.amap = amap
        self.capacity = capacity
        self._by_addr: "OrderedDict[int, HeldLock]" = OrderedDict()
        self._line_count: Dict[int, int] = {}

    def insert(self, addr: int, pc: int, now: int) -> Optional[HeldLock]:
        """Record a held lock; returns any entry discarded for capacity."""
        discarded: Optional[HeldLock] = None
        if addr in self._by_addr:
            self._remove(addr)
        if len(self._by_addr) >= self.capacity:
            oldest_addr = next(iter(self._by_addr))
            discarded = self._remove(oldest_addr)
        entry = HeldLock(addr, pc, now)
        self._by_addr[addr] = entry
        line = self.amap.line_addr(addr)
        self._line_count[line] = self._line_count.get(line, 0) + 1
        return discarded

    def release(self, addr: int) -> Optional[HeldLock]:
        """A store to ``addr`` completed; pop and return the entry."""
        if addr not in self._by_addr:
            return None
        return self._remove(addr)

    def _remove(self, addr: int) -> HeldLock:
        entry = self._by_addr.pop(addr)
        line = self.amap.line_addr(addr)
        remaining = self._line_count.get(line, 0) - 1
        if remaining <= 0:
            self._line_count.pop(line, None)
        else:
            self._line_count[line] = remaining
        return entry

    def contains_line(self, line_addr: int) -> bool:
        """Is any lock in this cache line currently held?"""
        return line_addr in self._line_count

    def most_recent(self) -> Optional[HeldLock]:
        """The most recently inserted held lock, or None."""
        if not self._by_addr:
            return None
        return next(reversed(self._by_addr.values()))

    def lookup_line(self, line_addr: int) -> Optional[HeldLock]:
        """Return a held entry living in this line, if any."""
        for entry in self._by_addr.values():
            if self.amap.line_addr(entry.addr) == line_addr:
                return entry
        return None

    def __len__(self) -> int:
        return len(self._by_addr)

"""Explicit QOLB (paper §2, the comparison point).

QOLB [Goodman, Vernon & Woest 1989] keeps a hardware queue of processors
waiting on a lock, driven by *explicit* EnQOLB/DeQOLB instructions:

* ``EnQOLB`` allocates local (shadow) space and requests the lock line,
  or joins the queue if the lock is held; waiters spin on the local
  shadow copy with zero network traffic;
* ``DeQOLB`` releases: the lock line travels to the next queued processor
  in a single message.

Here the same distributed-queue/deferral machinery that implements IQOLB
implements QOLB — the difference is that deferral and release are
commanded by the instructions instead of inferred by prediction, which is
exactly the paper's framing (IQOLB = QOLB's benefits without the software
and ISA support).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.core.policy import SUPPLY_NOW, DeferDecision, ProtocolPolicy
from repro.cpu.ops import Op
from repro.interconnect.messages import BusOp, BusTransaction
from repro.mem.line import CacheLine


class QolbPolicy(ProtocolPolicy):
    """Hardware queue-based locking with explicit enqueue/dequeue."""

    name = "qolb"
    #: QOLB needs no speculative timer: releases are explicit.  (Evictions
    #: still hand the line to the successor, as for every scheme.)
    timeout_cycles: Optional[int] = None

    def __init__(self) -> None:
        super().__init__()
        #: word addresses of locks this node currently holds
        self.held_words: Set[int] = set()
        #: line addresses covering held locks
        self.held_lines: Set[int] = set()

    # Plain LL/SC under the QOLB system behaves like the baseline.
    def ll_miss_op(self, op: Op) -> BusOp:
        return BusOp.GETS

    def should_defer(self, txn: BusTransaction, line: CacheLine) -> DeferDecision:
        ctrl = self.ctrl
        assert ctrl is not None
        if txn.op is not BusOp.QOLB_ENQ:
            return SUPPLY_NOW
        line_addr = txn.line_addr
        if line_addr in ctrl.obligations:
            return DeferDecision(defer=True, tearoff=True)
        if line_addr in self.held_lines:
            # Lock held: the requestor joins the queue and receives the
            # shadow (tear-off) copy to spin on locally.
            return DeferDecision(defer=True, tearoff=True)
        return SUPPLY_NOW

    def tearoff_for_read(self, line_addr: int) -> bool:
        return line_addr in self.held_lines

    def on_enqolb_acquired(self, addr: int) -> None:
        ctrl = self.ctrl
        assert ctrl is not None
        self.held_words.add(addr)
        self.held_lines.add(ctrl.amap.line_addr(addr))

    def on_deqolb(self, addr: int) -> None:
        ctrl = self.ctrl
        assert ctrl is not None
        self.held_words.discard(addr)
        line_addr = ctrl.amap.line_addr(addr)
        if not any(
            ctrl.amap.line_addr(word) == line_addr for word in self.held_words
        ):
            self.held_lines.discard(line_addr)

"""Baseline and aggressive-baseline LL/SC implementations (paper §3.1).

* :class:`BaselinePolicy` — the conventional scheme: an LL fetches the
  line in a shared state; a successful SC then needs a second network
  transaction (an upgrade) to obtain exclusivity.  At least one processor
  always succeeds, but every contended read-modify-write costs two bus
  transactions.

* :class:`AggressiveBaselinePolicy` — read-for-ownership on the LL.  One
  transaction per RMW when uncontended, but under contention processors
  steal each other's exclusive copies between the LL and the SC, so SC
  failure rates explode and livelock becomes possible (paper Figure 1,
  second frame).
"""

from __future__ import annotations

from repro.core.policy import ProtocolPolicy
from repro.cpu.ops import Op
from repro.interconnect.messages import BusOp


class BaselinePolicy(ProtocolPolicy):
    """Traditional LL/SC: LL reads shared, SC upgrades."""

    name = "baseline"


class AggressiveBaselinePolicy(ProtocolPolicy):
    """Baseline + RFO on LL: single transaction per RMW, livelock-prone."""

    name = "aggressive"

    def ll_miss_op(self, op: Op) -> BusOp:
        return BusOp.GETX


class AdaptiveBaselinePolicy(ProtocolPolicy):
    """The paper's conservative hybrid (§3.1).

    "It might choose to request ownership on the first LL instruction
    encountered after a successful SC instruction.  This would prohibit
    live-lock by ensuring that the failure would only occur once."

    The first LL after a successful SC issues an RFO (one transaction per
    uncontended RMW); if that optimistic attempt fails, subsequent LLs
    fall back to the baseline GetS+upgrade path until an SC succeeds and
    re-arms the speculation.  Never slower than the baseline, better in
    the common case — exactly the paper's conjecture, which the
    ``bench_fig1_taxonomy`` bench measures.
    """

    name = "adaptive"

    def __init__(self) -> None:
        super().__init__()
        self._rfo_armed = True

    def ll_miss_op(self, op: Op) -> BusOp:
        if self._rfo_armed:
            self._rfo_armed = False
            return BusOp.GETX
        return BusOp.GETS

    def on_sc_success(self, addr: int, pc: int) -> bool:
        self._rfo_armed = True
        return True

"""Anderson's array-based queue lock (paper §2 related work, ref [3]).

T. E. Anderson, "The Performance of Spin Lock Alternatives for
Shared-Memory Multiprocessors", IEEE TPDS 1(1), 1990.

Acquire takes a slot with an atomic fetch&increment on the tail counter
and spins on its own flag word; release sets the next slot's flag.  Each
slot lives in its own cache line so waiters spin without interfering —
the software ancestor of the hardware queues this paper builds.

The slot array must have at least as many slots as there are concurrent
contenders (threads), as in Anderson's original design.
"""

from __future__ import annotations

from typing import List

from repro.cpu.ops import Compute, Read, Write
from repro.sync.fetchop import fetch_and_add
from repro.sync.primitives import Lock, synthetic_pc

SPIN_PAUSE = 24

#: slot flag values
HAS_LOCK = 1
MUST_WAIT = 0


class AndersonLock(Lock):
    """Array-based queue lock.

    ``tail_addr`` holds the next free slot index; ``slot_addrs`` are the
    per-slot flag words (one cache line each).  Slot 0 must be
    initialised to ``HAS_LOCK`` (the lock starts free); the system
    builder or caller does that with ``initialise``.
    """

    name = "anderson"

    def __init__(self, tail_addr: int, slot_addrs: List[int]) -> None:
        super().__init__(tail_addr)
        if len(slot_addrs) < 2:
            raise ValueError("Anderson lock needs at least two slots")
        self.tail_addr = tail_addr
        self.slot_addrs = slot_addrs
        self.n_slots = len(slot_addrs)
        self.pc_spin = synthetic_pc("anderson.spin")

    def initialise(self, write_word) -> None:
        """Set up initial memory state (slot 0 holds the lock)."""
        write_word(self.slot_addrs[0], HAS_LOCK)
        for addr in self.slot_addrs[1:]:
            write_word(addr, MUST_WAIT)
        write_word(self.tail_addr, 0)

    def acquire_slot(self):
        """Generator: acquire; returns the slot index (keep for release)."""
        ticket = yield from fetch_and_add(self.tail_addr, 1, "anderson.grab")
        slot = ticket % self.n_slots
        while True:
            flag = yield Read(self.slot_addrs[slot], pc=self.pc_spin)
            if flag == HAS_LOCK:
                return slot
            yield Compute(SPIN_PAUSE)

    def release_slot(self, slot: int):
        """Generator: release from the given slot."""
        # Reset our slot for its next wrap-around use, then pass the
        # lock to the next slot.
        yield Write(self.slot_addrs[slot], MUST_WAIT)
        yield Write(self.slot_addrs[(slot + 1) % self.n_slots], HAS_LOCK)

"""Anderson's array-based queue lock (paper §2 related work, ref [3]).

T. E. Anderson, "The Performance of Spin Lock Alternatives for
Shared-Memory Multiprocessors", IEEE TPDS 1(1), 1990.

In the :mod:`repro.sync.qcore` decomposition, Anderson's lock is the
*counting* splice (fetch&increment on a tail counter, the ticket taken
modulo the slot count) with the wait block pointed at a ticket-indexed
slot word and a two-store signal: reset your slot for its next
wrap-around use, then open the next slot.  Each slot lives in its own
cache line so waiters spin without interfering — the software ancestor
of the hardware queues this paper builds.

The slot array must have at least as many slots as there are concurrent
contenders (threads), as in Anderson's original design.
"""

from __future__ import annotations

from typing import List

from repro.sync import qcore
from repro.sync.primitives import Lock, synthetic_pc

SPIN_PAUSE = qcore.SPIN_PAUSE

#: slot flag values
HAS_LOCK = 1
MUST_WAIT = 0


class AndersonLock(Lock):
    """Array-based queue lock.

    ``tail_addr`` holds the next free slot index; ``slot_addrs`` are the
    per-slot flag words (one cache line each).  Slot 0 must be
    initialised to ``HAS_LOCK`` (the lock starts free); the system
    builder or caller does that with ``initialise``.
    """

    name = "anderson"

    def __init__(self, tail_addr: int, slot_addrs: List[int]) -> None:
        super().__init__(tail_addr)
        if len(slot_addrs) < 2:
            raise ValueError("Anderson lock needs at least two slots")
        self.tail_addr = tail_addr
        self.slot_addrs = slot_addrs
        self.n_slots = len(slot_addrs)
        self.pc_spin = synthetic_pc("anderson.spin")

    def initialise(self, write_word) -> None:
        """Set up initial memory state (slot 0 holds the lock)."""
        write_word(self.slot_addrs[0], HAS_LOCK)
        for addr in self.slot_addrs[1:]:
            write_word(addr, MUST_WAIT)
        write_word(self.tail_addr, 0)

    def acquire_slot(self):
        """Generator: acquire; returns the slot index (keep for release)."""
        ticket = yield from qcore.splice_count(self.tail_addr, "anderson.grab")
        slot = ticket % self.n_slots
        yield from qcore.wait_until(
            self.slot_addrs[slot], HAS_LOCK, pc=self.pc_spin
        )
        return slot

    def release_slot(self, slot: int):
        """Generator: release from the given slot."""
        # Reset our slot for its next wrap-around use, then pass the
        # lock to the next slot.
        yield from qcore.signal(self.slot_addrs[slot], MUST_WAIT)
        yield from qcore.signal(
            self.slot_addrs[(slot + 1) % self.n_slots], HAS_LOCK
        )

"""Reciprocating lock (Dice & Kogan, "Reciprocating Locks", 2025).

A modern contention-tolerant software queue lock built from the same
:mod:`repro.sync.qcore` blocks as MCS/CLH — the proof that Golab's
splice/wait/signal decomposition expresses designs its author never saw.

The entire lock state is **one word** (``arrivals``):

* ``0`` — unlocked.
* ``LOCKED_EMPTY`` (1) — locked, no pending arrivals.
* otherwise — locked, pointing at the top of a LIFO *arrival stack* of
  waiter nodes (each node's splice returned its predecessor).

Arriving threads splice themselves onto the stack with a single swap
(the uncontended path is that one atomic, like test&set).  The holder
serves waiters in *segments*: when the current segment is exhausted it
detaches the whole pending stack with one swap and admits it top-first
— so admission within a segment is the **reverse** of arrival order,
and successive segments alternate against arrival order (the eponymous
palindromic, "reciprocating" schedule).  Every waiter is admitted
before any thread that arrived after the segment detached, which bounds
bypass at one segment — starvation-free, though deliberately not FIFO.

Hand-off conveys two values into the successor's node before opening
its gate:

* ``eos`` (end-of-segment boundary): the stack value the segment's
  bottom node spliced onto.  A holder whose splice predecessor equals
  the boundary is the segment's terminal holder.
* ``res`` (residue): what the detaching swap left in ``arrivals`` —
  the value the terminal holder must CAS back to ``0`` to free the
  lock, and the boundary of the *next* segment.

Node layout (one line per node, fields collocated so the three hand-off
stores ride one line transfer): ``gate`` (base), ``eos`` (base+4),
``res`` (base+8).  A thread passes its splice predecessor and the
conveyed pair from acquire to release in generator locals, like CLH's
recycling protocol; nodes are reusable immediately after release (a
released node is referenced by no live chain — boundary values are
compared, never dereferenced).
"""

from __future__ import annotations

from repro.mem.address import WORD_BYTES
from repro.sync import qcore
from repro.sync.primitives import Lock, synthetic_pc

SPIN_PAUSE = qcore.SPIN_PAUSE

#: ``arrivals`` states (node addresses are line-aligned, so never 0/1)
FREE = 0
LOCKED_EMPTY = 1

#: node field offsets
GATE_OFFSET = 0
EOS_OFFSET = WORD_BYTES
RES_OFFSET = 2 * WORD_BYTES

#: gate states
GATE_CLOSED = 0
GATE_OPEN = 1


class ReciprocatingLock(Lock):
    """Palindromic-admission queue lock; ``addr`` is the arrivals word."""

    name = "reciprocating"

    def __init__(self, arrivals_addr: int) -> None:
        super().__init__(arrivals_addr)
        self.arrivals_addr = arrivals_addr
        self.pc_gate = synthetic_pc("recip.gate")

    def acquire_with(self, node_addr: int):
        """Generator: acquire using ``node_addr``.

        Returns ``(pred, eos, res)`` — the splice predecessor and the
        conveyed segment pair — which must be passed, with the same
        node, to :meth:`release_with`.
        """
        if node_addr in (FREE, LOCKED_EMPTY):
            raise ValueError(
                "reciprocating node cannot live at a reserved address"
            )
        # Close our gate before the splice publishes the node.
        yield from qcore.signal(node_addr + GATE_OFFSET, GATE_CLOSED)
        pred = yield from qcore.splice_swap(self.arrivals_addr, node_addr)
        if pred == FREE:
            # Uncontended: our node stays spliced as the segment
            # boundary; nothing arrived before us, so we are our own
            # segment's terminal holder (eos == pred == FREE) and the
            # residue to clear at release is our own node.
            return pred, FREE, node_addr
        # Contended: wait for a holder to open our gate, then read the
        # conveyed segment pair off our own line.
        yield from qcore.wait_until(
            node_addr + GATE_OFFSET, GATE_OPEN, pc=self.pc_gate
        )
        eos = yield from qcore.probe(node_addr + EOS_OFFSET)
        res = yield from qcore.probe(node_addr + RES_OFFSET)
        return pred, eos, res

    def _admit(self, succ: int, eos: int, res: int):
        """Convey the segment pair into ``succ``'s node, then open its
        gate — the ownership hand-off."""
        yield from qcore.signal(succ + EOS_OFFSET, eos)
        yield from qcore.signal(succ + RES_OFFSET, res)
        yield from qcore.signal(succ + GATE_OFFSET, GATE_OPEN)

    def release_with(self, node_addr: int, pred: int, eos: int, res: int):
        """Generator: release the lock acquired via ``node_addr``."""
        if pred != eos:
            # Mid-segment: reciprocate — admit the thread that arrived
            # immediately *before* us.
            yield from self._admit(pred, eos, res)
            return
        # Terminal holder of the segment: if nothing new arrived, one
        # CAS clears the residue and frees the lock.
        freed = yield from qcore.unsplice(
            self.arrivals_addr, res, "recip.release_cas"
        )
        if freed:
            return
        # New arrivals stacked up meanwhile: detach them all with one
        # swap (leaving LOCKED_EMPTY as the next residue) and admit the
        # stack top-first.  The detached segment's boundary is the old
        # residue — the value its bottom node spliced onto.
        top = yield from qcore.splice_swap(self.arrivals_addr, LOCKED_EMPTY)
        yield from self._admit(top, res, LOCKED_EMPTY)

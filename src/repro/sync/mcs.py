"""MCS queue lock (paper §2 related work: Mellor-Crummey & Scott).

The classic software queue lock: each thread enqueues its own node with
an atomic swap on the tail pointer and spins on a flag in its *own* node,
so waiting generates no traffic on the lock word.  This is the software
analogue of what QOLB/IQOLB build in hardware, included for the wider
primitive comparison benches.

Addressing: nodes are identified by their base address; ``0`` means nil,
so callers must never place a node at address 0.  Each node occupies two
words: ``flag`` (base) and ``next`` (base + 4).
"""

from __future__ import annotations

from repro.cpu.ops import Compute, Read, Swap, Write
from repro.mem.address import WORD_BYTES
from repro.sync.fetchop import compare_and_swap
from repro.sync.primitives import Lock, synthetic_pc

SPIN_PAUSE = 24

FLAG_OFFSET = 0
NEXT_OFFSET = WORD_BYTES


class McsLock(Lock):
    """MCS list-based queue lock; ``addr`` is the tail pointer word."""

    name = "mcs"

    def __init__(self, tail_addr: int) -> None:
        super().__init__(tail_addr)
        self.tail_addr = tail_addr
        self.pc_spin = synthetic_pc("mcs.spin")

    def acquire_with(self, node_addr: int):
        """Acquire using the caller's queue node at ``node_addr``."""
        if node_addr == 0:
            raise ValueError("MCS node cannot live at address 0")
        yield Write(node_addr + NEXT_OFFSET, 0)
        yield Write(node_addr + FLAG_OFFSET, 0)
        predecessor = yield Swap(self.tail_addr, node_addr)
        if predecessor == 0:
            return
        yield Write(predecessor + NEXT_OFFSET, node_addr)
        while True:
            flag = yield Read(node_addr + FLAG_OFFSET, pc=self.pc_spin)
            if flag:
                return
            yield Compute(SPIN_PAUSE)

    def release_with(self, node_addr: int):
        """Release using the same node that acquired."""
        next_node = yield Read(node_addr + NEXT_OFFSET)
        if next_node == 0:
            swapped = yield from compare_and_swap(
                self.tail_addr, node_addr, 0, pc_label="mcs.release_cas"
            )
            if swapped:
                return
            # A successor is mid-enqueue: wait for it to link in.
            while True:
                next_node = yield Read(node_addr + NEXT_OFFSET)
                if next_node != 0:
                    break
                yield Compute(SPIN_PAUSE)
        yield Write(next_node + FLAG_OFFSET, 1)

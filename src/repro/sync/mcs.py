"""MCS queue lock (paper §2 related work: Mellor-Crummey & Scott).

The classic software queue lock, expressed as a composition over the
:mod:`repro.sync.qcore` building blocks: a pointer *splice* on the tail,
a *wait* on a flag in the thread's *own* node (so waiting generates no
traffic on the lock word), and a *signal* store opening the successor's
flag.  This is the software analogue of what QOLB/IQOLB build in
hardware, included for the wider primitive comparison benches.

Addressing: nodes are identified by their base address; ``0`` means nil,
so callers must never place a node at address 0.  Each node occupies two
words: ``flag`` (base) and ``next`` (base + 4).
"""

from __future__ import annotations

from repro.mem.address import WORD_BYTES
from repro.sync import qcore
from repro.sync.primitives import Lock, synthetic_pc
from repro.sync.qcore import SPIN_PAUSE  # noqa: F401  (re-export: scenarios)

FLAG_OFFSET = 0
NEXT_OFFSET = WORD_BYTES


class McsLock(Lock):
    """MCS list-based queue lock; ``addr`` is the tail pointer word."""

    name = "mcs"

    def __init__(self, tail_addr: int) -> None:
        super().__init__(tail_addr)
        self.tail_addr = tail_addr
        self.pc_spin = synthetic_pc("mcs.spin")

    def acquire_with(self, node_addr: int):
        """Acquire using the caller's queue node at ``node_addr``."""
        if node_addr == 0:
            raise ValueError("MCS node cannot live at address 0")
        yield from qcore.signal(node_addr + NEXT_OFFSET, 0)
        yield from qcore.signal(node_addr + FLAG_OFFSET, 0)
        predecessor = yield from qcore.splice_swap(self.tail_addr, node_addr)
        if predecessor == 0:
            return
        # Link into the predecessor's node, then wait on our *own* flag.
        yield from qcore.signal(predecessor + NEXT_OFFSET, node_addr)
        yield from qcore.wait_until(
            node_addr + FLAG_OFFSET, qcore.nonzero, pc=self.pc_spin
        )

    def release_with(self, node_addr: int):
        """Release using the same node that acquired."""
        next_node = yield from qcore.probe(node_addr + NEXT_OFFSET)
        if next_node == 0:
            swapped = yield from qcore.unsplice(
                self.tail_addr, node_addr, pc_label="mcs.release_cas"
            )
            if swapped:
                return
            # A successor is mid-enqueue: wait for it to link in.
            next_node = yield from qcore.wait_until(
                node_addr + NEXT_OFFSET, qcore.nonzero
            )
        yield from qcore.signal(next_node + FLAG_OFFSET, 1)

"""The explicit QOLB lock (paper §2).

Acquire enqueues with ``EnQOLB`` and spins locally on the shadow copy;
the value 0 arrives together with exclusive ownership of the lock line,
which *is* the acquisition.  The holder marks the lock taken with a local
store (the line is already exclusive, so this costs nothing on the
network), and ``DeQOLB`` releases — clearing the lock word and handing
the line to the next queued processor in a single message.

Requires a system built with the ``qolb`` policy; on other policies
EnQOLB/DeQOLB behave like their bus ops but nothing defers for them.
"""

from __future__ import annotations

from repro.cpu.ops import Compute, DeQOLB, EnQOLB, Write
from repro.sync.primitives import Lock, synthetic_pc

SPIN_PAUSE = 24


class QolbLock(Lock):
    """Queue-based lock using the EnQOLB/DeQOLB instructions."""

    name = "qolb"

    def __init__(self, addr: int) -> None:
        super().__init__(addr)
        self.pc_acquire = synthetic_pc("qolb.acquire")
        self.pc_release = synthetic_pc("qolb.release")

    def acquire(self):
        while True:
            value = yield EnQOLB(self.addr, pc=self.pc_acquire)
            if value == 0:
                # The lock arrived free, with exclusive ownership; mark it
                # held (a local write — the line is ours).
                yield Write(self.addr, 1, pc=self.pc_acquire)
                return
            yield Compute(SPIN_PAUSE)

    def release(self):
        yield DeQOLB(self.addr, pc=self.pc_release)

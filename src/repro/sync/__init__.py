"""Simulated synchronization library: locks, fetch&op, barriers."""

from repro.sync.anderson import AndersonLock
from repro.sync.barrier import Barrier
from repro.sync.clh import ClhLock
from repro.sync.fetchop import compare_and_swap, fetch_and_add, fetch_and_op
from repro.sync.mcs import McsLock
from repro.sync.primitives import Lock, synthetic_pc
from repro.sync.qolb_lock import QolbLock
from repro.sync.ticket import TicketLock
from repro.sync.tts import TSLock, TTSLock

__all__ = [
    "AndersonLock",
    "Barrier",
    "ClhLock",
    "Lock",
    "McsLock",
    "QolbLock",
    "TSLock",
    "TTSLock",
    "TicketLock",
    "compare_and_swap",
    "fetch_and_add",
    "fetch_and_op",
    "synthetic_pc",
]

"""Simulated synchronization library: locks, fetch&op, barriers.

Every queue-shaped lock here is a composition over the
:mod:`repro.sync.qcore` splice/wait/signal building blocks (Golab,
HPL-2012-100); see ``docs/protocols.md`` for the decomposition table.
"""

from repro.sync.anderson import AndersonLock
from repro.sync.barrier import Barrier
from repro.sync.clh import ClhLock
from repro.sync.fetchop import compare_and_swap, fetch_and_add, fetch_and_op
from repro.sync.fissile import FissileLock
from repro.sync.mcs import McsLock
from repro.sync.primitives import Lock, synthetic_pc
from repro.sync.qolb_lock import QolbLock
from repro.sync.reciprocating import ReciprocatingLock
from repro.sync.ticket import TicketLock
from repro.sync.tts import TSLock, TTSLock

__all__ = [
    "AndersonLock",
    "Barrier",
    "ClhLock",
    "FissileLock",
    "Lock",
    "McsLock",
    "QolbLock",
    "ReciprocatingLock",
    "TSLock",
    "TTSLock",
    "TicketLock",
    "compare_and_swap",
    "fetch_and_add",
    "fetch_and_op",
    "synthetic_pc",
]

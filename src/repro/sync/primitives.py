"""Common scaffolding for the simulated synchronization library.

Every primitive is written against the simulated ISA: its methods are
generators that yield :mod:`repro.cpu.ops` operations, to be driven with
``yield from`` inside a thread program::

    def worker(lock, counter):
        yield from lock.acquire()
        value = yield Read(counter)
        yield Write(counter, value + 1)
        yield from lock.release()

Synthetic program counters: the lock predictor (paper §3.4) indexes by
the PC of the LL instruction.  Each code location in this library gets a
stable synthetic PC derived from a label, shared by every lock instance —
just as every lock acquired through the same acquire routine shares that
routine's real PC.
"""

from __future__ import annotations

import zlib


def synthetic_pc(label: str) -> int:
    """A stable, deterministic PC for a named code location."""
    return zlib.crc32(label.encode("utf-8"))


class Lock:
    """Base class: a lock living at a word address."""

    name = "lock"

    def __init__(self, addr: int) -> None:
        self.addr = addr

    def acquire(self):  # pragma: no cover - interface
        """Generator performing the acquire; yields simulated ops."""
        raise NotImplementedError
        yield  # noqa: unreachable - marks this as a generator

    def release(self):  # pragma: no cover - interface
        """Generator performing the release; yields simulated ops."""
        raise NotImplementedError
        yield  # noqa: unreachable - marks this as a generator

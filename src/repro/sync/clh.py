"""The CLH queue lock (Craig; Landin & Hagersten).

A list-based queue lock like MCS but with the *wait* block pointed at
the **predecessor's** node: acquire is a pointer splice on the tail plus
a wait until the predecessor's flag clears; release is a single signal
on the thread's *own* node (no successor lookup at all — the successor
is already watching).  In Golab's decomposition the whole MCS/CLH split
is exactly this choice of wait location plus MCS's extra link/signal
pair.  Included, with MCS and Anderson, to place the paper's hardware
queues against the full software-queue landscape.

Node management: each thread owns a node and inherits its predecessor's
on release (the classic recycling trick), implemented here with a
per-thread "my node" register kept in the generator's locals.
"""

from __future__ import annotations

from repro.sync import qcore
from repro.sync.primitives import Lock, synthetic_pc

SPIN_PAUSE = qcore.SPIN_PAUSE

#: node flag values
PENDING = 1   # holder or waiter: successors must wait
GRANTED = 0   # released: successor may proceed


class ClhLock(Lock):
    """CLH list-based queue lock; ``addr`` is the tail pointer word.

    The tail must be initialised to a dummy node whose flag is GRANTED
    (``initialise``).  ``acquire_with(node)`` returns the *new* node the
    thread owns afterwards (its predecessor's), which it must pass to the
    next ``acquire_with`` — the recycling protocol.
    """

    name = "clh"

    def __init__(self, tail_addr: int, dummy_node: int) -> None:
        super().__init__(tail_addr)
        self.tail_addr = tail_addr
        self.dummy_node = dummy_node
        self.pc_spin = synthetic_pc("clh.spin")

    def initialise(self, write_word) -> None:
        write_word(self.dummy_node, GRANTED)
        write_word(self.tail_addr, self.dummy_node)

    def acquire_with(self, node_addr: int):
        """Generator: acquire using ``node_addr``; returns (held_node,
        predecessor_node) — release with these, then reuse
        ``predecessor_node`` for the next acquire."""
        if node_addr == 0:
            raise ValueError("CLH node cannot live at address 0")
        yield from qcore.signal(node_addr, PENDING)
        predecessor = yield from qcore.splice_swap(self.tail_addr, node_addr)
        yield from qcore.wait_until(predecessor, GRANTED, pc=self.pc_spin)
        return node_addr, predecessor

    def release_with(self, held_node: int):
        """Generator: release the lock held via ``held_node``."""
        yield from qcore.signal(held_node, GRANTED)

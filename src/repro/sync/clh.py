"""The CLH queue lock (Craig; Landin & Hagersten).

A list-based queue lock like MCS but spinning on the *predecessor's*
node: acquire swaps a fresh node into the tail and spins until the
predecessor clears its flag; release clears the own node's flag and
recycles the predecessor's node.  Included, with MCS and Anderson, to
place the paper's hardware queues against the full software-queue
landscape.

Node management: each thread owns a node and inherits its predecessor's
on release (the classic recycling trick), implemented here with a
per-thread "my node" register kept in the generator's locals.
"""

from __future__ import annotations

from repro.cpu.ops import Compute, Read, Swap, Write
from repro.sync.primitives import Lock, synthetic_pc

SPIN_PAUSE = 24

#: node flag values
PENDING = 1   # holder or waiter: successors must wait
GRANTED = 0   # released: successor may proceed


class ClhLock(Lock):
    """CLH list-based queue lock; ``addr`` is the tail pointer word.

    The tail must be initialised to a dummy node whose flag is GRANTED
    (``initialise``).  ``acquire_with(node)`` returns the *new* node the
    thread owns afterwards (its predecessor's), which it must pass to the
    next ``acquire_with`` — the recycling protocol.
    """

    name = "clh"

    def __init__(self, tail_addr: int, dummy_node: int) -> None:
        super().__init__(tail_addr)
        self.tail_addr = tail_addr
        self.dummy_node = dummy_node
        self.pc_spin = synthetic_pc("clh.spin")

    def initialise(self, write_word) -> None:
        write_word(self.dummy_node, GRANTED)
        write_word(self.tail_addr, self.dummy_node)

    def acquire_with(self, node_addr: int):
        """Generator: acquire using ``node_addr``; returns (held_node,
        predecessor_node) — release with these, then reuse
        ``predecessor_node`` for the next acquire."""
        if node_addr == 0:
            raise ValueError("CLH node cannot live at address 0")
        yield Write(node_addr, PENDING)
        predecessor = yield Swap(self.tail_addr, node_addr)
        while True:
            flag = yield Read(predecessor, pc=self.pc_spin)
            if flag == GRANTED:
                return node_addr, predecessor
            yield Compute(SPIN_PAUSE)

    def release_with(self, held_node: int):
        """Generator: release the lock held via ``held_node``."""
        yield Write(held_node, GRANTED)

"""Sense-reversing centralized barrier.

The SPLASH-2 applications the paper evaluates synchronize with barriers
as well as locks; the synthetic workload models need one.  Arrival uses
an atomic fetch&add on the count; the last arriver resets the count and
flips the sense word, which waiters spin-read.

Each participating thread keeps its own local sense, passed in and
returned so the generator protocol stays stateless.
"""

from __future__ import annotations

from repro.sync import qcore
from repro.sync.primitives import synthetic_pc

SPIN_PAUSE = 16
MAX_SPIN_PAUSE = 512


class Barrier:
    """Centralized sense-reversing barrier on two words."""

    def __init__(self, count_addr: int, sense_addr: int, parties: int) -> None:
        if parties <= 0:
            raise ValueError("barrier needs at least one party")
        self.count_addr = count_addr
        self.sense_addr = sense_addr
        self.parties = parties
        self.pc_spin = synthetic_pc("barrier.spin")

    def wait(self, local_sense: int):
        """Generator: block until all parties arrive; returns new sense."""
        new_sense = 1 - local_sense
        arrived = yield from qcore.splice_count(
            self.count_addr, "barrier.arrive"
        )
        if arrived + 1 == self.parties:
            # Last arriver: reset the count, then flip the global sense.
            yield from qcore.signal(self.count_addr, 0)
            yield from qcore.signal(self.sense_addr, new_sense)
            return new_sense
        # Exponential backoff: barrier waits can be long (serial
        # phases), and proportional backoff keeps the spin cheap.
        yield from qcore.wait_until(
            self.sense_addr,
            new_sense,
            pc=self.pc_spin,
            pause=SPIN_PAUSE,
            max_pause=MAX_SPIN_PAUSE,
        )
        return new_sense

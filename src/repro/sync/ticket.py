"""Ticket lock (paper §2 related work: Mellor-Crummey & Scott).

FIFO-fair, and in the :mod:`repro.sync.qcore` decomposition the
smallest possible queue lock: a counting splice (fetch&add on
``next_ticket``), a wait on the single global grant word
(``now_serving``), and a signal bumping that word.  The global wait
word is what separates it from Anderson/MCS/CLH — every waiter spins on
the *same* line, so each hand-off invalidates all spinners (the storm
the paper's taxonomy charges to centralized spinning).

The two words are placed by the caller; putting them in different cache
lines avoids the ticket-grab invalidating every spinner.
"""

from __future__ import annotations

from repro.sync import qcore
from repro.sync.primitives import Lock, synthetic_pc

SPIN_PAUSE = qcore.SPIN_PAUSE


class TicketLock(Lock):
    """FIFO ticket lock on two words."""

    name = "ticket"

    def __init__(self, ticket_addr: int, serving_addr: int) -> None:
        super().__init__(ticket_addr)
        self.ticket_addr = ticket_addr
        self.serving_addr = serving_addr
        self.pc_read = synthetic_pc("ticket.spin")
        self.pc_release = synthetic_pc("ticket.release")

    def acquire(self):
        my_ticket = yield from qcore.splice_count(
            self.ticket_addr, "ticket.grab"
        )
        yield from qcore.wait_until(
            self.serving_addr, my_ticket, pc=self.pc_read
        )

    def release(self):
        serving = yield from qcore.probe(self.serving_addr, pc=self.pc_release)
        yield from qcore.signal(
            self.serving_addr, serving + 1, pc=self.pc_release
        )

"""Ticket lock (paper §2 related work: Mellor-Crummey & Scott).

FIFO-fair: acquire takes a ticket with fetch&add on ``next_ticket`` and
spins reading ``now_serving``; release increments ``now_serving`` with a
plain store (only the holder writes it, so no atomicity is needed).

The two words are placed by the caller; putting them in different cache
lines avoids the ticket-grab invalidating every spinner.
"""

from __future__ import annotations

from repro.cpu.ops import Compute, Read, Write
from repro.sync.fetchop import fetch_and_add
from repro.sync.primitives import Lock, synthetic_pc

SPIN_PAUSE = 24


class TicketLock(Lock):
    """FIFO ticket lock on two words."""

    name = "ticket"

    def __init__(self, ticket_addr: int, serving_addr: int) -> None:
        super().__init__(ticket_addr)
        self.ticket_addr = ticket_addr
        self.serving_addr = serving_addr
        self.pc_read = synthetic_pc("ticket.spin")
        self.pc_release = synthetic_pc("ticket.release")
        self._my_ticket = 0  # per-generator state lives in the frame below

    def acquire(self):
        my_ticket = yield from fetch_and_add(
            self.ticket_addr, 1, pc_label="ticket.grab"
        )
        while True:
            serving = yield Read(self.serving_addr, pc=self.pc_read)
            if serving == my_ticket:
                return
            yield Compute(SPIN_PAUSE)

    def release(self):
        serving = yield Read(self.serving_addr, pc=self.pc_release)
        yield Write(self.serving_addr, serving + 1, pc=self.pc_release)

"""Fissile lock (Dice & Kogan, "Fissile Locks", NETYS 2020).

A composite primitive on the :mod:`repro.sync.qcore` substrate: a plain
test&set word (the *inner* lock, which is the actual mutual exclusion)
fronted by an MCS-style *outer* queue that throttles who may spin on it.

* **Fast path**: an arriving thread makes a small bounded number of
  ``grab`` attempts on the inner word.  Under no/light contention the
  lock behaves like test&set — one atomic, no queue traffic at all.
* **Slow path**: after the bounded barging budget is spent, the thread
  splices onto the outer queue and waits on its own node.  Only the
  *head* of the outer queue spins on the inner word, so at most the
  head plus a bounded number of bargers ever contend on the hot line —
  the "anti-collapse" property that prevents the test&set invalidation
  storm the paper's taxonomy charges to centralized spinning.
* **Anti-collapse hand-off**: the head, having won the inner lock,
  promotes its successor to head *before* entering the critical
  section, so the next waiter is already in position to take the inner
  lock the moment it is released.

Release is a single store clearing the inner word, whoever wins next.
Fairness is long-term (bounded bypass via the bounded fast path), not
FIFO.  The outer queue reuses the MCS node layout (``flag``/``next``).
"""

from __future__ import annotations

from repro.sync import qcore
from repro.sync.mcs import FLAG_OFFSET, NEXT_OFFSET
from repro.sync.primitives import Lock, synthetic_pc

SPIN_PAUSE = qcore.SPIN_PAUSE

#: bounded barging: inner-lock attempts before joining the outer queue
FAST_ATTEMPTS = 2

#: inner word states
UNLOCKED = 0
LOCKED = 1


class FissileLock(Lock):
    """Test&set inner lock behind an MCS-style anti-collapse queue.

    ``inner_addr`` is the test&set word; ``tail_addr`` the outer-queue
    tail pointer (separate lines).  Queue nodes use the MCS layout and,
    as with MCS, must never live at address 0.
    """

    name = "fissile"

    def __init__(self, inner_addr: int, tail_addr: int,
                 max_backoff: int = 256) -> None:
        super().__init__(inner_addr)
        self.inner_addr = inner_addr
        self.tail_addr = tail_addr
        self.max_backoff = max_backoff
        self.pc_fast = synthetic_pc("fissile.fast")
        self.pc_queue = synthetic_pc("fissile.queue")
        self.pc_head = synthetic_pc("fissile.head")
        self.pc_release = synthetic_pc("fissile.release")

    def acquire_with(self, node_addr: int):
        """Generator: acquire; ``node_addr`` is only touched on the
        slow path and is free for reuse once this generator returns."""
        if node_addr == 0:
            raise ValueError("fissile node cannot live at address 0")
        # Fast path: bounded barging on the inner word.
        backoff = SPIN_PAUSE
        for _attempt in range(FAST_ATTEMPTS):
            old = yield from qcore.grab(self.inner_addr, pc=self.pc_fast)
            if old == UNLOCKED:
                return
            yield from qcore.pause(backoff)
            backoff = min(backoff * 2, self.max_backoff)
        # Slow path: splice onto the outer queue, wait to become head.
        yield from qcore.signal(node_addr + NEXT_OFFSET, 0)
        yield from qcore.signal(node_addr + FLAG_OFFSET, 0)
        predecessor = yield from qcore.splice_swap(self.tail_addr, node_addr)
        if predecessor != 0:
            yield from qcore.signal(predecessor + NEXT_OFFSET, node_addr)
            yield from qcore.wait_until(
                node_addr + FLAG_OFFSET, qcore.nonzero, pc=self.pc_queue
            )
        # Head of the outer queue: test-and-test&set on the inner word.
        while True:
            value = yield from qcore.probe(self.inner_addr, pc=self.pc_head)
            if value == UNLOCKED:
                old = yield from qcore.grab(self.inner_addr, pc=self.pc_head)
                if old == UNLOCKED:
                    break
            yield from qcore.pause(SPIN_PAUSE)
        # Anti-collapse hand-off: promote the successor to head before
        # entering the critical section.
        yield from self._promote_successor(node_addr)

    def _promote_successor(self, node_addr: int):
        """MCS-style release of the *outer* queue position: the next
        waiter becomes head and starts contending on the inner word."""
        next_node = yield from qcore.probe(node_addr + NEXT_OFFSET)
        if next_node == 0:
            swapped = yield from qcore.unsplice(
                self.tail_addr, node_addr, pc_label="fissile.promote_cas"
            )
            if swapped:
                return
            next_node = yield from qcore.wait_until(
                node_addr + NEXT_OFFSET, qcore.nonzero
            )
        yield from qcore.signal(next_node + FLAG_OFFSET, 1)

    def release(self):
        """Generator: release — one store clearing the inner word."""
        yield from qcore.signal(
            self.inner_addr, UNLOCKED, pc=self.pc_release
        )

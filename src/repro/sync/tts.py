"""Test&set and test&test&set locks.

:class:`TTSLock` is the paper's base case (§4): "a simple implementation
of the test&test&set algorithm using the LL/SC primitive".  The test is
the LL itself — which is exactly what lets IQOLB speculate on it: the LL
miss becomes an LPRFO, waiting processors spin on tear-off copies, and
the line travels once per acquire/release pair.

:class:`TSLock` is the plain swap-based test&set with optional backoff,
provided for the wider primitive comparison (paper §2 related work).
"""

from __future__ import annotations

from repro.cpu.ops import LL, SC, Compute, Swap, Write
from repro.sync.primitives import Lock, synthetic_pc

#: cycles of local pause between failed lock tests (branch + loop cost)
SPIN_PAUSE = 24


class TTSLock(Lock):
    """Test&test&set built on LL/SC."""

    name = "tts"

    def __init__(self, addr: int) -> None:
        super().__init__(addr)
        self.pc_acquire = synthetic_pc("tts.acquire")
        self.pc_release = synthetic_pc("tts.release")

    def acquire(self):
        while True:
            value = yield LL(self.addr, pc=self.pc_acquire)
            if value != 0:
                # Lock held: spin on the LL (locally, when the protocol
                # gives us a cached or tear-off copy).
                yield Compute(SPIN_PAUSE)
                continue
            ok = yield SC(self.addr, 1, pc=self.pc_acquire)
            if ok:
                return
            yield Compute(SPIN_PAUSE)

    def release(self):
        yield Write(self.addr, 0, pc=self.pc_release)


class TSLock(Lock):
    """Plain test&set via atomic swap, with exponential backoff."""

    name = "ts"

    def __init__(self, addr: int, max_backoff: int = 1024) -> None:
        super().__init__(addr)
        self.max_backoff = max_backoff
        self.pc_acquire = synthetic_pc("ts.acquire")
        self.pc_release = synthetic_pc("ts.release")

    def acquire(self):
        backoff = SPIN_PAUSE
        while True:
            old = yield Swap(self.addr, 1, pc=self.pc_acquire)
            if old == 0:
                return
            yield Compute(backoff)
            backoff = min(backoff * 2, self.max_backoff)

    def release(self):
        yield Write(self.addr, 0, pc=self.pc_release)

"""Fetch&Phi operations built on LL/SC (paper §2).

The LL/SC pair implements any atomic read-modify-write; these helpers are
generators yielding simulated ops and returning the fetched value.  Under
the delayed-response and IQOLB protocols, a contended fetch&add completes
in a single network transaction — the scenario of paper Figure 3.
"""

from __future__ import annotations

from typing import Callable

from repro.cpu.ops import LL, SC, Compute
from repro.sync.primitives import synthetic_pc

#: modelled cost of the register arithmetic between LL and SC
ALU_CYCLES = 2


def fetch_and_op(addr: int, op: Callable[[int], int], pc_label: str = "fetchop"):
    """Atomically apply ``op`` to the word at ``addr``; return old value."""
    pc = synthetic_pc(pc_label)
    while True:
        old = yield LL(addr, pc=pc)
        yield Compute(ALU_CYCLES)
        ok = yield SC(addr, op(old), pc=pc)
        if ok:
            return old


def fetch_and_add(addr: int, delta: int = 1, pc_label: str = "fetchadd"):
    """Atomic fetch&add; returns the pre-increment value."""
    old = yield from fetch_and_op(addr, lambda v: v + delta, pc_label=pc_label)
    return old


def compare_and_swap(addr: int, expect: int, new: int, pc_label: str = "cas"):
    """One CAS attempt; returns True when the swap happened."""
    pc = synthetic_pc(pc_label)
    old = yield LL(addr, pc=pc)
    if old != expect:
        return False
    ok = yield SC(addr, new, pc=pc)
    return bool(ok)

"""Composable queue-lock core: Golab's splice / wait / signal blocks.

Golab's *Deconstructing Queue-Based Mutual Exclusion* (HPL-2012-100)
shows that the queue locks of the literature — MCS, CLH, Anderson,
ticket, and their descendants — are compositions of three reusable
building blocks:

``splice``
    Atomically join the wait queue and learn your position: either a
    pointer splice (atomic ``Swap`` on a tail pointer, returning the
    predecessor — MCS, CLH, reciprocating) or a counting splice
    (``fetch&add`` on a counter, returning a ticket — Anderson, ticket).

``wait``
    Spin on one word until it reaches an accepting value.  *Where* that
    word lives is the locks' key design split: your own node (MCS), the
    predecessor's node (CLH), a ticket-indexed slot (Anderson), or a
    global grant word (ticket) — and it decides the coherence traffic a
    waiter generates, which is exactly the axis the paper's taxonomy
    measures.

``signal``
    Publish a hand-off with a plain store: open the successor's flag,
    bump the grant word, clear your own node.

Every block is a generator over the simulated ISA (:mod:`repro.cpu.ops`)
so compositions drive them with ``yield from``, and every lock in
:mod:`repro.sync` is now a thin composition over this module — including
the modern primitives (reciprocating, fissile) the original queue-lock
authors never saw.  The compositions are *op-for-op identical* to the
hand-rolled loops they replaced: the conformance and perf suites hold
cycle counts bit-identical across the refactor.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.cpu.ops import Compute, Read, Swap, Write
from repro.sync.fetchop import compare_and_swap, fetch_and_add

#: default cycles of local pause between failed wait tests (branch +
#: loop cost) — shared by every composed lock, as before the refactor
SPIN_PAUSE = 24

#: an accepting predicate or the single accepted value
Accept = Union[int, Callable[[int], bool]]


# --------------------------------------------------------------------
# splice: atomically join the queue
# --------------------------------------------------------------------

def splice_swap(tail_addr: int, node_addr: int, pc: int = 0):
    """Pointer splice: swap ``node_addr`` into the tail, return the
    predecessor (``0`` = the queue was empty and the splice acquired)."""
    predecessor = yield Swap(tail_addr, node_addr, pc=pc)
    return predecessor


def splice_count(counter_addr: int, pc_label: str):
    """Counting splice: take the next ticket with an atomic fetch&add."""
    ticket = yield from fetch_and_add(counter_addr, 1, pc_label=pc_label)
    return ticket


def unsplice(tail_addr: int, expect: int, pc_label: str):
    """Leave the queue if still its only member: one CAS attempt moving
    the tail from ``expect`` back to empty; returns True on success."""
    swapped = yield from compare_and_swap(
        tail_addr, expect, 0, pc_label=pc_label
    )
    return swapped


# --------------------------------------------------------------------
# wait: spin on one word until it accepts
# --------------------------------------------------------------------

def _accepts(accept: Accept, value: int) -> bool:
    if callable(accept):
        return accept(value)
    return value == accept


def wait_until(
    addr: int,
    accept: Accept,
    pc: int = 0,
    pause: int = SPIN_PAUSE,
    max_pause: Optional[int] = None,
):
    """Spin-read ``addr`` until ``accept`` holds; return the accepted
    value.  ``accept`` is a value to match or a predicate.  With
    ``max_pause`` the inter-test pause backs off exponentially
    (proportional waits — barriers); otherwise it is constant."""
    while True:
        value = yield Read(addr, pc=pc)
        if _accepts(accept, value):
            return value
        yield Compute(pause)
        if max_pause is not None:
            pause = min(pause * 2, max_pause)


def nonzero(value: int) -> bool:
    """The accepting predicate of set-flag and link-arrival waits."""
    return value != 0


def probe(addr: int, pc: int = 0):
    """One read of a queue word — the non-spinning wait degenerate case
    (e.g. MCS's successor peek before deciding how to release)."""
    value = yield Read(addr, pc=pc)
    return value


def pause(cycles: int):
    """Local pause between attempts (backoff between failed grabs)."""
    yield Compute(cycles)


def grab(addr: int, pc: int = 0):
    """One test&set attempt: swap 1 into ``addr``; returns the old value
    (``0`` = the grab won).  The degenerate no-queue splice — fissile
    locks use it as the bounded-barging fast path in front of a real
    splice-based queue."""
    old = yield Swap(addr, 1, pc=pc)
    return old


# --------------------------------------------------------------------
# signal: publish a hand-off with a plain store
# --------------------------------------------------------------------

def signal(addr: int, value: int, pc: int = 0):
    """Store ``value`` to ``addr`` — open a flag, clear a node, grant a
    ticket.  Plain store: only the holder signals, so no atomicity is
    needed (the MCS/ticket release argument)."""
    yield Write(addr, value, pc=pc)

"""Minimal JSON-Schema validation for emitted telemetry artifacts.

CI validates every JSONL trace, Chrome trace and ``metrics.json`` the
pipeline emits against the checked-in schemas under ``tests/schemas/``.
The container ships no third-party ``jsonschema`` package, so this is a
small self-contained validator covering the subset those schemas use:

``type`` (including type lists), ``properties``, ``required``,
``items``, ``enum``, ``const``, ``minimum``, ``minItems``,
``additionalProperties`` (boolean or schema), and ``$defs``/``$ref``
(local ``#/$defs/...`` references only).
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, List, Union

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


class SchemaError(ValueError):
    """The instance does not conform to the schema."""


#: self-identifying artifact schemas: the document's top-level "schema"
#: field names one of these, mapping to its file under tests/schemas/
SCHEMA_REGISTRY = {
    "repro-metrics/1": "metrics.schema.json",
    "repro-metrics-summary/1": "metrics_summary.schema.json",
    "repro-predict-error/1": "predict_error.schema.json",
}


def _schema_dir() -> pathlib.Path:
    # src/repro/telemetry/schema.py -> repo root / tests / schemas
    return pathlib.Path(__file__).resolve().parents[3] / "tests" / "schemas"


def infer_schema_path(
    data_path: Union[str, os.PathLike],
) -> pathlib.Path:
    """The registered schema file for a self-identifying artifact.

    Reads the document's top-level ``"schema"`` field (gz-transparent)
    and resolves it through :data:`SCHEMA_REGISTRY`.  Raises
    :class:`SchemaError` when the document does not name a registered
    schema — callers then need an explicit schema path.
    """
    data_path = pathlib.Path(data_path)
    if data_path.suffix == ".gz":
        import gzip

        text = gzip.decompress(data_path.read_bytes()).decode("utf-8")
    else:
        text = data_path.read_text()
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{data_path}: not valid JSON: {exc}") from None
    identity = document.get("schema") if isinstance(document, dict) else None
    if not isinstance(identity, str):
        raise SchemaError(
            f"{data_path}: document has no top-level 'schema' field; "
            f"pass --schema explicitly"
        )
    filename = SCHEMA_REGISTRY.get(identity)
    if filename is None:
        known = ", ".join(sorted(SCHEMA_REGISTRY))
        raise SchemaError(
            f"{data_path}: schema {identity!r} is not registered "
            f"(known: {known}); pass --schema explicitly"
        )
    path = _schema_dir() / filename
    if not path.exists():
        raise SchemaError(f"registered schema file missing: {path}")
    return path


def _check_type(instance: Any, expected: Union[str, List[str]], path: str) -> None:
    names = [expected] if isinstance(expected, str) else list(expected)
    for name in names:
        python_type = _TYPES.get(name)
        if python_type is None:
            raise SchemaError(f"{path}: unsupported schema type {name!r}")
        if isinstance(instance, bool) and name in ("integer", "number"):
            continue  # bool is an int subclass; schema-wise it is not
        if isinstance(instance, python_type):
            return
    raise SchemaError(
        f"{path}: expected type {' | '.join(names)}, "
        f"got {type(instance).__name__}"
    )


def _resolve_ref(ref: str, root: Dict[str, Any], path: str) -> Dict[str, Any]:
    if not ref.startswith("#/"):
        raise SchemaError(f"{path}: only local $ref supported, got {ref!r}")
    node: Any = root
    for part in ref[2:].split("/"):
        if not isinstance(node, dict) or part not in node:
            raise SchemaError(f"{path}: unresolvable $ref {ref!r}")
        node = node[part]
    return node


def validate(
    instance: Any,
    schema: Dict[str, Any],
    path: str = "$",
    root: Any = None,
) -> None:
    """Raise :class:`SchemaError` if *instance* violates *schema*."""
    if root is None:
        root = schema
    if "$ref" in schema:
        validate(instance, _resolve_ref(schema["$ref"], root, path), path, root)
        return
    if "const" in schema and instance != schema["const"]:
        raise SchemaError(
            f"{path}: expected const {schema['const']!r}, got {instance!r}"
        )
    if "enum" in schema and instance not in schema["enum"]:
        raise SchemaError(
            f"{path}: {instance!r} not one of {schema['enum']!r}"
        )
    if "type" in schema:
        _check_type(instance, schema["type"], path)
    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema and instance < schema["minimum"]:
            raise SchemaError(
                f"{path}: {instance} < minimum {schema['minimum']}"
            )
    if isinstance(instance, dict):
        for name in schema.get("required", []):
            if name not in instance:
                raise SchemaError(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        for name, value in instance.items():
            if name in properties:
                validate(value, properties[name], f"{path}.{name}", root)
            else:
                additional = schema.get("additionalProperties", True)
                if additional is False:
                    raise SchemaError(f"{path}: unexpected property {name!r}")
                if isinstance(additional, dict):
                    validate(value, additional, f"{path}.{name}", root)
    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            raise SchemaError(
                f"{path}: {len(instance)} items < minItems {schema['minItems']}"
            )
        items = schema.get("items")
        if isinstance(items, dict):
            for index, item in enumerate(instance):
                validate(item, items, f"{path}[{index}]", root)


def validate_file(
    data_path: Union[str, os.PathLike],
    schema_path: Union[str, os.PathLike],
) -> int:
    """Validate a ``.json``/``.jsonl`` file; returns records checked.

    ``.jsonl`` files are validated line-by-line (the schema describes one
    record); anything else is validated as a single document.  A ``.gz``
    suffix is decompressed transparently, so archived artifacts
    (``BENCH_*.json.gz``) validate without an unpack step.
    """
    schema = json.loads(pathlib.Path(schema_path).read_text())
    data_path = pathlib.Path(data_path)
    effective = data_path
    if data_path.suffix == ".gz":
        import gzip

        text = gzip.decompress(data_path.read_bytes()).decode("utf-8")
        effective = data_path.with_suffix("")  # strip .gz for type sniffing
    else:
        text = data_path.read_text()
    if effective.suffix == ".jsonl":
        count = 0
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(
                    f"{data_path}:{lineno}: not valid JSON: {exc}"
                ) from None
            validate(record, schema, path=f"line {lineno}")
            count += 1
        if count == 0:
            raise SchemaError(f"{data_path}: no records")
        return count
    validate(json.loads(text), schema)
    return 1

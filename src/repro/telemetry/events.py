"""Structured trace events and their named categories.

Every instrumentation point in the simulator — the cache controller's
protocol actions, the address bus's transaction stream, the predictor's
decisions — reduces to one :class:`TelemetryEvent`.  The ``kind`` is the
fine-grained event name the component emits (``handoff``, ``tearoff``,
``bus:LPRFO``); the ``category`` is the coarse channel sinks and
consumers filter on (``deferral``, ``handoff``, ``bus``).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

#: The named event categories of the tracing backbone.
CAT_BUS = "bus"
CAT_COHERENCE = "coherence"
CAT_LLSC = "llsc"
CAT_DEFERRAL = "deferral"
CAT_TEAROFF = "tearoff"
CAT_HANDOFF = "handoff"
CAT_LOCK = "lock"
CAT_PREDICTOR = "predictor"
CAT_DIRECTORY = "directory"
CAT_FAULT = "fault"

CATEGORIES = (
    CAT_BUS,
    CAT_COHERENCE,
    CAT_LLSC,
    CAT_DEFERRAL,
    CAT_TEAROFF,
    CAT_HANDOFF,
    CAT_LOCK,
    CAT_PREDICTOR,
    CAT_DIRECTORY,
    CAT_FAULT,
)

#: controller/policy event kind -> category
_CATEGORY_OF: Dict[str, str] = {
    # LL/SC architectural events
    "ll": CAT_LLSC,
    "sc": CAT_LLSC,
    # plain coherence actions
    "store": CAT_COHERENCE,
    "swap": CAT_COHERENCE,
    "fill": CAT_COHERENCE,
    "loan": CAT_COHERENCE,
    "loan_return": CAT_COHERENCE,
    "loan_back": CAT_COHERENCE,
    "push": CAT_COHERENCE,
    "push_recv": CAT_COHERENCE,
    # deferral machinery (paper 3.2/3.3)
    "defer": CAT_DEFERRAL,
    "queued": CAT_DEFERRAL,
    "successor": CAT_DEFERRAL,
    "timeout": CAT_DEFERRAL,
    "queue_breakdown": CAT_DEFERRAL,
    "squash": CAT_DEFERRAL,
    # tear-off copies (paper 3.3)
    "tearoff": CAT_TEAROFF,
    "tearoff_recv": CAT_TEAROFF,
    # lock hand-offs
    "handoff": CAT_HANDOFF,
    "evict_handoff": CAT_HANDOFF,
    # lock semantics
    "release": CAT_LOCK,
    "enqolb": CAT_LOCK,
    "deqolb": CAT_LOCK,
    # prediction decisions (paper 3.4)
    "predict": CAT_PREDICTOR,
    # home-node directory protocol (directory interconnect backend)
    "dir_lookup": CAT_DIRECTORY,
    "dir_forward": CAT_DIRECTORY,
    "dir_inval": CAT_DIRECTORY,
    "dir_defer": CAT_DIRECTORY,
    "dir_breakdown": CAT_DIRECTORY,
    # checker fault injection (repro.check.faults)
    "fault_delay": CAT_FAULT,
    "fault_drop": CAT_FAULT,
}


def category_of(kind: str) -> str:
    """The event category for a ``kind`` emitted anywhere in the system."""
    if kind.startswith("bus:"):
        return CAT_BUS
    if kind.startswith("dir_"):
        return CAT_DIRECTORY
    return _CATEGORY_OF.get(kind, CAT_COHERENCE)


@dataclasses.dataclass
class TelemetryEvent:
    """One structured protocol event.

    ``node`` is the emitting processor (the requester, for bus events);
    ``info`` carries the kind-specific payload (requester, reason,
    value, ...) exactly as the emitter supplied it.
    """

    time: int
    node: int
    kind: str
    line_addr: int
    info: Dict[str, Any]
    category: str = ""

    def __post_init__(self) -> None:
        if not self.category:
            self.category = category_of(self.kind)

    def render(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.info.items()))
        return f"{self.time:>8}  P{self.node:<2} {self.kind:<16} {extra}"

    def to_json_obj(self) -> Dict[str, Any]:
        """A flat, JSON-encodable form (the JSONL sink's record shape)."""
        return {
            "ts": self.time,
            "node": self.node,
            "kind": self.kind,
            "cat": self.category,
            "line": self.line_addr,
            "info": {key: _jsonable(value) for key, value in self.info.items()},
        }


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)

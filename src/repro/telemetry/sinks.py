"""Trace sinks: in-memory ring buffer, JSONL file, Chrome trace_event.

Every sink consumes :class:`~repro.telemetry.events.TelemetryEvent`
records from a :class:`~repro.telemetry.tracer.TraceDispatcher`:

* :class:`RingBufferSink` — bounded, in-memory; for tests and the CLI's
  percentile reports.
* :class:`JsonlSink` — one JSON object per line, streamed to disk; the
  machine-readable archive format (schema:
  ``tests/schemas/trace_jsonl.schema.json``).
* :class:`ChromeTraceSink` — the Chrome ``trace_event`` JSON format;
  load the file in ``chrome://tracing`` or https://ui.perfetto.dev to
  inspect a run visually, one track per node, with deferral windows
  rendered as duration slices.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Deque, Dict, IO, List, Tuple, Union

from repro.telemetry.events import TelemetryEvent

#: Shared encoder for the JSONL hot path: ``json.dumps(sort_keys=True)``
#: builds a fresh ``JSONEncoder`` per call, which dominates emit cost.
_JSONL_ENCODE = json.JSONEncoder(sort_keys=True, separators=(",", ":")).encode


class TraceSink:
    """Interface: receive events, flush on close."""

    def emit(self, event: TelemetryEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Flush buffered output; idempotent.  Default: nothing to do."""


class RingBufferSink(TraceSink):
    """Keeps the most recent ``capacity`` events in memory (bounded)."""

    def __init__(self, capacity: int = 65536) -> None:
        self.capacity = capacity
        self._events: Deque[TelemetryEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, event: TelemetryEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    @property
    def events(self) -> List[TelemetryEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


class JsonlSink(TraceSink):
    """Streams events as JSON Lines to a path or open text file."""

    def __init__(self, target: Union[str, os.PathLike, IO[str]]) -> None:
        if hasattr(target, "write"):
            self._file: IO[str] = target  # type: ignore[assignment]
            self._owns_file = False
        else:
            self._file = open(target, "w", encoding="utf-8")
            self._owns_file = True
        self.events_written = 0

    def emit(self, event: TelemetryEvent) -> None:
        self._file.write(_JSONL_ENCODE(event.to_json_obj()) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()
        elif not self._file.closed:
            self._file.flush()


class ChromeTraceSink(TraceSink):
    """Exports the run as Chrome ``trace_event`` JSON.

    Layout: one process (the simulated machine), one thread *track per
    node* (``P0`` ... ``Pn``, plus a ``bus`` track for address-bus
    broadcasts).  Most events are instants (``ph: "i"``); a ``defer``
    that later resolves in a ``handoff``/``timeout``/``queue_breakdown``
    on the same (node, line) becomes a complete slice (``ph: "X"``)
    spanning the deferral window, so the bounded delays the paper
    inserts are directly visible as bars.

    Timestamps are simulated cycles reported in the format's
    microsecond field — 1 cycle renders as 1 us.
    """

    #: synthetic thread id for the bus track (after any realistic node)
    BUS_TRACK = 10_000

    def __init__(self, target: Union[str, os.PathLike, IO[str]]) -> None:
        self._target = target
        self._events: List[Dict[str, Any]] = []
        self._nodes_seen: set = set()
        #: (node, line_addr) -> (start_time, info) of an open deferral
        self._open_defers: Dict[Tuple[int, int], Tuple[int, dict]] = {}
        self._closed = False

    def emit(self, event: TelemetryEvent) -> None:
        tid = self.BUS_TRACK if event.category == "bus" else event.node
        self._nodes_seen.add(tid)
        args = {"line": hex(event.line_addr), **event.info}
        if event.kind == "defer":
            # Open a deferral window; closed by the matching discharge.
            self._open_defers[(event.node, event.line_addr)] = (
                event.time,
                dict(args),
            )
        elif event.kind in ("handoff", "timeout", "queue_breakdown"):
            opened = self._open_defers.pop((event.node, event.line_addr), None)
            if opened is not None:
                start, open_args = opened
                self._events.append(
                    {
                        "name": "deferral",
                        "cat": "deferral",
                        "ph": "X",
                        "ts": start,
                        "dur": max(1, event.time - start),
                        "pid": 0,
                        "tid": event.node,
                        "args": {**open_args, "resolved_by": event.kind},
                    }
                )
        self._events.append(
            {
                "name": event.kind,
                "cat": event.category,
                "ph": "i",
                "s": "t",
                "ts": event.time,
                "pid": 0,
                "tid": tid,
                "args": args,
            }
        )

    def _metadata(self) -> List[Dict[str, Any]]:
        meta: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "repro simulated multiprocessor"},
            }
        ]
        for tid in sorted(self._nodes_seen):
            label = "bus" if tid == self.BUS_TRACK else f"P{tid}"
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
        return meta

    def payload(self) -> Dict[str, Any]:
        """The complete trace document (also what ``close`` writes)."""
        return {
            "traceEvents": self._metadata() + self._events,
            "displayTimeUnit": "ms",
            "otherData": {"time_unit": "simulated processor cycles"},
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        payload = self.payload()
        if hasattr(self._target, "write"):
            json.dump(payload, self._target)  # type: ignore[arg-type]
        else:
            with open(self._target, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)


def replay(events, sink: TraceSink, close: bool = True) -> TraceSink:
    """Feed recorded events through a sink (e.g. re-export a recording)."""
    for event in events:
        sink.emit(event)
    if close:
        sink.close()
    return sink

"""The tracing backbone: one dispatch point, pluggable sinks.

The controller, bus, predictor and policies all emit through a single
:class:`TraceDispatcher`, whose hook methods match the two existing
instrumentation surfaces (``CacheController.tracer`` and
``AddressBus.observer``).  Sinks attach and detach at will; events fan
out to every attached sink in attach order.
"""

from __future__ import annotations

from typing import List

from repro.telemetry.events import TelemetryEvent
from repro.telemetry.sinks import TraceSink


class TraceDispatcher:
    """Fans structured events out to attached sinks.

    Components hold a reference to the dispatcher's bound hook methods,
    not to the sinks, so the sink set can change mid-run (e.g. a test
    swapping a ring buffer in) without re-wiring the system.
    """

    def __init__(self) -> None:
        self._sinks: List[TraceSink] = []
        self.events_dispatched = 0

    # ------------------------------------------------------------------
    # Sink management
    # ------------------------------------------------------------------
    def attach(self, sink: TraceSink) -> TraceSink:
        self._sinks.append(sink)
        return sink

    def detach(self, sink: TraceSink) -> None:
        self._sinks.remove(sink)

    @property
    def sinks(self) -> List[TraceSink]:
        return list(self._sinks)

    def close(self) -> None:
        """Flush and close every attached sink."""
        for sink in self._sinks:
            sink.close()

    # ------------------------------------------------------------------
    # Emit surfaces
    # ------------------------------------------------------------------
    def dispatch(self, event: TelemetryEvent) -> None:
        self.events_dispatched += 1
        for sink in self._sinks:
            sink.emit(event)

    def controller_hook(
        self, kind: str, time: int, node: int, line_addr: int, info: dict
    ) -> None:
        """Signature-compatible with ``CacheController.tracer``."""
        if not self._sinks:
            return
        self.dispatch(TelemetryEvent(time, node, kind, line_addr, dict(info)))

    def bus_hook(self, time, txn, supplier, shared, deferred) -> None:
        """Signature-compatible with ``AddressBus.observer``."""
        if not self._sinks:
            return
        self.dispatch(
            TelemetryEvent(
                time,
                txn.requester,
                f"bus:{txn.op.value}",
                txn.line_addr,
                {
                    "txn_id": txn.txn_id,
                    "supplier": supplier,
                    "shared": shared,
                    "deferred": deferred,
                },
            )
        )

"""The tracing backbone: one dispatch point, pluggable sinks.

The controller, bus, predictor and policies all emit through a single
:class:`TraceDispatcher`, whose hook methods match the two existing
instrumentation surfaces (``CacheController.tracer`` and
``AddressBus.observer``).  Sinks attach and detach at will; events fan
out to every attached sink in attach order.
"""

from __future__ import annotations

from typing import Callable, List

from repro.telemetry.events import TelemetryEvent
from repro.telemetry.sinks import TraceSink


class TraceDispatcher:
    """Fans structured events out to attached sinks.

    Components hold a reference to the dispatcher's bound hook methods,
    not to the sinks, so the sink set can change mid-run (e.g. a test
    swapping a ring buffer in) without re-wiring the system.

    With *no* sinks attached the dispatcher is a pre-resolved no-op:
    hosts that register a rewire callback (``subscribe_rewire``) are told
    whenever the sink set transitions between empty and non-empty, and
    respond by pointing emitter hooks at ``None`` — so an idle dispatcher
    costs the simulation hot paths nothing at all, not even the
    "any sinks?" check.  The checks in the hook methods below remain as
    a safety net for hosts that wire hooks unconditionally.
    """

    def __init__(self) -> None:
        self._sinks: List[TraceSink] = []
        self.events_dispatched = 0
        self._rewire_callbacks: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Sink management
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when at least one sink would receive dispatched events."""
        return bool(self._sinks)

    def subscribe_rewire(self, callback: Callable[[], None]) -> None:
        """Register to be called when :attr:`active` may have changed."""
        if callback not in self._rewire_callbacks:
            self._rewire_callbacks.append(callback)

    def unsubscribe_rewire(self, callback: Callable[[], None]) -> None:
        if callback in self._rewire_callbacks:
            self._rewire_callbacks.remove(callback)

    def _notify_rewire(self) -> None:
        for callback in list(self._rewire_callbacks):
            callback()

    def attach(self, sink: TraceSink) -> TraceSink:
        self._sinks.append(sink)
        if len(self._sinks) == 1:
            self._notify_rewire()
        return sink

    def detach(self, sink: TraceSink) -> None:
        self._sinks.remove(sink)
        if not self._sinks:
            self._notify_rewire()

    @property
    def sinks(self) -> List[TraceSink]:
        return list(self._sinks)

    def close(self) -> None:
        """Flush and close every attached sink."""
        for sink in self._sinks:
            sink.close()

    # ------------------------------------------------------------------
    # Emit surfaces
    # ------------------------------------------------------------------
    def dispatch(self, event: TelemetryEvent) -> None:
        self.events_dispatched += 1
        for sink in self._sinks:
            sink.emit(event)

    def controller_hook(
        self, kind: str, time: int, node: int, line_addr: int, info: dict
    ) -> None:
        """Signature-compatible with ``CacheController.tracer``."""
        if not self._sinks:
            return
        self.dispatch(TelemetryEvent(time, node, kind, line_addr, dict(info)))

    def bus_hook(self, time, txn, supplier, shared, deferred) -> None:
        """Signature-compatible with ``AddressBus.observer``."""
        if not self._sinks:
            return
        self.dispatch(
            TelemetryEvent(
                time,
                txn.requester,
                f"bus:{txn.op.value}",
                txn.line_addr,
                {
                    "txn_id": txn.txn_id,
                    "supplier": supplier,
                    "shared": shared,
                    "deferred": deferred,
                },
            )
        )

"""Unified telemetry: structured tracing, manifests, metrics export.

The paper's argument rests on *distributions* — deferral delays bounded
by timeouts, hand-off latencies per acquire/release pair, failed-SC
storms under contention — so the reproduction carries the observability
layer a serving stack would: every protocol component emits structured
:class:`~repro.telemetry.events.TelemetryEvent` records through one
:class:`~repro.telemetry.tracer.TraceDispatcher`, pluggable sinks write
them to memory, JSONL or Chrome ``trace_event`` files, and every run is
stamped with a :class:`~repro.telemetry.manifest.RunManifest` that the
harness aggregates into machine-readable ``metrics.json`` summaries.

With no dispatcher attached the hot paths see a single ``is None``
check, so an untraced run pays (near) zero overhead.

See ``docs/observability.md`` for the guided tour.
"""

from repro.telemetry.events import (
    CATEGORIES,
    TelemetryEvent,
    category_of,
)
from repro.telemetry.export import (
    metrics_payload,
    summary_payload,
    write_metrics,
    write_metrics_archive,
)
from repro.telemetry.manifest import (
    RunManifest,
    canonical,
    stable_hash,
)
from repro.telemetry.schema import (
    SchemaError,
    infer_schema_path,
    validate,
    validate_file,
)
from repro.telemetry.sinks import (
    ChromeTraceSink,
    JsonlSink,
    RingBufferSink,
    TraceSink,
    replay,
)
from repro.telemetry.tracer import TraceDispatcher

__all__ = [
    "CATEGORIES",
    "ChromeTraceSink",
    "JsonlSink",
    "RingBufferSink",
    "RunManifest",
    "SchemaError",
    "TelemetryEvent",
    "TraceDispatcher",
    "TraceSink",
    "canonical",
    "category_of",
    "infer_schema_path",
    "metrics_payload",
    "replay",
    "stable_hash",
    "validate",
    "validate_file",
    "summary_payload",
    "write_metrics",
    "write_metrics_archive",
]

"""Machine-readable metrics export (``metrics.json``).

Aggregates a batch of :class:`~repro.harness.experiment.RunResult`
objects — each carrying counters, log-bucketed histogram summaries and
a :class:`~repro.telemetry.manifest.RunManifest` — into one JSON
document the CI pipeline archives and downstream tooling (plots,
dashboards, regression checks) consumes.  Schema:
``tests/schemas/metrics.schema.json``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, Mapping, Optional, Union

#: bump when the payload shape changes incompatibly
METRICS_SCHEMA = "repro-metrics/1"


def _cell(key: Any, result: Any) -> Dict[str, Any]:
    manifest = getattr(result, "manifest", None)
    return {
        "key": list(key) if isinstance(key, (list, tuple)) else [str(key)],
        "workload": result.workload,
        "primitive": result.primitive,
        "n_processors": result.n_processors,
        "cycles": result.cycles,
        "bus_transactions": result.bus_transactions,
        "wall_time_s": result.wall_time_s,
        "counters": dict(result.stats),
        "histograms": dict(getattr(result, "histograms", {}) or {}),
        "manifest": manifest.to_dict() if manifest is not None else None,
    }


def metrics_payload(
    results: Union[Mapping[Any, Any], Iterable[Any]],
    runner_stats: Optional[Any] = None,
) -> Dict[str, Any]:
    """The ``metrics.json`` document for a batch of runs.

    ``results`` is either a grid (key -> RunResult, as returned by
    ``run_cells``) or a plain iterable of RunResults.
    """
    import repro

    if isinstance(results, Mapping):
        items = list(results.items())
    else:
        items = [((r.workload, r.primitive), r) for r in results]
    payload: Dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "version": repro.__version__,
        "cells": [_cell(key, result) for key, result in items],
    }
    if runner_stats is not None:
        payload["runner"] = {
            "total": runner_stats.total,
            "executed": runner_stats.executed,
            "cache_hits": runner_stats.cache_hits,
            "wall_time_s": runner_stats.wall_time_s,
            "n_jobs": runner_stats.n_jobs,
        }
    return payload


def write_metrics(
    path: Union[str, os.PathLike],
    results: Union[Mapping[Any, Any], Iterable[Any]],
    runner_stats: Optional[Any] = None,
) -> Dict[str, Any]:
    """Write ``metrics.json`` to *path*; returns the payload."""
    payload = metrics_payload(results, runner_stats)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload

"""Machine-readable metrics export (``metrics.json``).

Aggregates a batch of :class:`~repro.harness.experiment.RunResult`
objects — each carrying counters, log-bucketed histogram summaries and
a :class:`~repro.telemetry.manifest.RunManifest` — into one JSON
document the CI pipeline archives and downstream tooling (plots,
dashboards, regression checks) consumes.  Schema:
``tests/schemas/metrics.schema.json``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, Mapping, Optional, Union

#: bump when the payload shape changes incompatibly
METRICS_SCHEMA = "repro-metrics/1"

#: the compact per-cell digest kept in version control for large benches
SUMMARY_SCHEMA = "repro-metrics-summary/1"


def _cell(key: Any, result: Any) -> Dict[str, Any]:
    manifest = getattr(result, "manifest", None)
    return {
        "key": list(key) if isinstance(key, (list, tuple)) else [str(key)],
        "workload": result.workload,
        "primitive": result.primitive,
        "n_processors": result.n_processors,
        "cycles": result.cycles,
        "bus_transactions": result.bus_transactions,
        "wall_time_s": result.wall_time_s,
        "counters": dict(result.stats),
        "histograms": dict(getattr(result, "histograms", {}) or {}),
        "manifest": manifest.to_dict() if manifest is not None else None,
    }


def metrics_payload(
    results: Union[Mapping[Any, Any], Iterable[Any]],
    runner_stats: Optional[Any] = None,
) -> Dict[str, Any]:
    """The ``metrics.json`` document for a batch of runs.

    ``results`` is either a grid (key -> RunResult, as returned by
    ``run_cells``) or a plain iterable of RunResults.
    """
    import repro

    if isinstance(results, Mapping):
        items = list(results.items())
    else:
        items = [((r.workload, r.primitive), r) for r in results]
    payload: Dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "version": repro.__version__,
        "cells": [_cell(key, result) for key, result in items],
    }
    if runner_stats is not None:
        payload["runner"] = {
            "total": runner_stats.total,
            "executed": runner_stats.executed,
            "cache_hits": runner_stats.cache_hits,
            "wall_time_s": runner_stats.wall_time_s,
            "n_jobs": runner_stats.n_jobs,
        }
    return payload


def summary_payload(full: Dict[str, Any]) -> Dict[str, Any]:
    """The compact digest of a full metrics payload.

    Keeps the headline numbers (cycles, bus transactions, wall time,
    provenance hash) per cell and drops the per-node counter and
    histogram bodies — the review-able diff for version control, while
    the full document travels as a gzipped sidecar.
    """
    cells = []
    for cell in full["cells"]:
        manifest = cell.get("manifest") or {}
        cells.append(
            {
                "key": cell["key"],
                "workload": cell["workload"],
                "primitive": cell["primitive"],
                "n_processors": cell["n_processors"],
                "cycles": cell["cycles"],
                "bus_transactions": cell["bus_transactions"],
                "wall_time_s": cell["wall_time_s"],
                "events_fired": manifest.get("events_fired", 0),
                "events_per_host_s": manifest.get("events_per_host_s", 0.0),
                "n_counters": len(cell.get("counters") or {}),
                "n_histograms": len(cell.get("histograms") or {}),
                "config_hash": manifest.get("config_hash"),
            }
        )
    summary: Dict[str, Any] = {
        "schema": SUMMARY_SCHEMA,
        "version": full["version"],
        "cells": cells,
    }
    if "runner" in full:
        summary["runner"] = full["runner"]
    return summary


def write_metrics(
    path: Union[str, os.PathLike],
    results: Union[Mapping[Any, Any], Iterable[Any]],
    runner_stats: Optional[Any] = None,
) -> Dict[str, Any]:
    """Write ``metrics.json`` to *path*; returns the payload."""
    payload = metrics_payload(results, runner_stats)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def write_metrics_archive(
    base_path: Union[str, os.PathLike],
    results: Union[Mapping[Any, Any], Iterable[Any]],
    runner_stats: Optional[Any] = None,
) -> Dict[str, Any]:
    """Write ``<base>.summary.json`` + gzipped ``<base>.json.gz``.

    The two-file form for artifacts too large to commit raw: the compact
    summary is the committed, diffable record; the gzip carries every
    counter and histogram for CI upload and offline analysis
    (``repro validate`` reads ``.gz`` directly).  Returns the *full*
    payload.
    """
    import gzip

    base = os.fspath(base_path)
    if base.endswith(".json"):
        base = base[: -len(".json")]
    payload = metrics_payload(results, runner_stats)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    # mtime=0 keeps the archive byte-identical across regenerations of
    # identical content, so reruns do not dirty the working tree.
    with open(f"{base}.json.gz", "wb") as raw:
        with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as handle:
            handle.write(text.encode("utf-8"))
    with open(f"{base}.summary.json", "w", encoding="utf-8") as handle:
        json.dump(summary_payload(payload), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload

"""Run manifests: the provenance record attached to every result.

A :class:`RunManifest` answers "where did this number come from?" — the
exact configuration hash, package version, workload seed, host, wall
time, whether the result was simulated or served from the cache, and
the simulator's self-metrics (events fired per host second, event-queue
high-water mark).  The runner aggregates manifests into the
``metrics.json`` grid summary (:mod:`repro.telemetry.export`).

This module also owns :func:`canonical` and :func:`stable_hash` — the
deterministic content-hashing used both for manifest config hashes and
the result cache's keys (:mod:`repro.harness.cache` re-exports them).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import socket
from typing import Any, Dict, Optional


def canonical(obj: Any) -> Any:
    """Reduce *obj* to a JSON-encodable form with deterministic ordering.

    Dataclasses become tagged dicts, mappings are key-sorted, callables
    are named by module + qualname, and anything else falls back to
    ``repr``.  The encoding only needs to be *stable*, not invertible.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__qualname__, **fields}
    if isinstance(obj, dict):
        return {
            str(key): canonical(value)
            for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if callable(obj):
        module = getattr(obj, "__module__", "?")
        qualname = getattr(obj, "__qualname__", repr(obj))
        return f"{module}.{qualname}"
    return repr(obj)


def stable_hash(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of *payload*."""
    text = json.dumps(canonical(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def host_info() -> Dict[str, str]:
    """Where this run executed (folded into the manifest)."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "hostname": socket.gethostname(),
    }


@dataclasses.dataclass
class RunManifest:
    """Provenance and self-metrics for one simulated run."""

    config_hash: str
    version: str
    seed: Optional[int] = None
    wall_time_s: float = 0.0
    cache_hit: bool = False
    events_fired: int = 0
    events_per_host_s: float = 0.0
    queue_high_water: int = 0
    host: Dict[str, str] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> Optional["RunManifest"]:
        if data is None:
            return None
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def collect(
        cls,
        config: Any,
        version: str,
        seed: Optional[int] = None,
        wall_time_s: float = 0.0,
        events_fired: int = 0,
        queue_high_water: int = 0,
    ) -> "RunManifest":
        """Build a manifest for a freshly simulated run."""
        per_s = events_fired / wall_time_s if wall_time_s > 0 else 0.0
        return cls(
            config_hash=stable_hash(config),
            version=version,
            seed=seed,
            wall_time_s=wall_time_s,
            cache_hit=False,
            events_fired=events_fired,
            events_per_host_s=per_s,
            queue_high_water=queue_high_water,
            host=host_info(),
        )


def workload_seed(workload: Any) -> Optional[int]:
    """Best-effort extraction of a workload's RNG seed for the manifest."""
    seed = getattr(workload, "seed", None)
    if isinstance(seed, int):
        return seed
    model = getattr(workload, "model", None)
    if isinstance(model, dict):
        seed = model.get("seed")
    else:
        seed = getattr(model, "seed", None)
    return seed if isinstance(seed, int) else None

"""Coherence fault injection: adverse message timing, on purpose.

The injector perturbs the interconnect through the fabric fault hooks
(``AddressBus.fault_hook``, ``Crossbar.fault_hook``,
``MeshNetwork.fault_hook``) in three ways, all within the protocol's
legal envelope:

* **bounded extra delay** on data messages and mesh routes — messages
  sit at the source interface before entering the fabric, so per-link
  and per-port FIFO books stay consistent while cross-source arrival
  order gets adversarial;
* **address-phase jitter** on the bus — individual address phases
  stretch, with resolutions clamped to issue order (the coherence
  order);
* **dropped tear-off responses** — only tear-offs answering a queued
  deferrable request (LPRFO/QOLB_ENQ) are droppable: the requester holds
  a queue position and the real line still arrives at discharge, so the
  loss is recovered by the protocol's own timeout/hand-off machinery.
  Dropping anything else could orphan a requester, which would be an
  injected *protocol* bug rather than an injected *message* fault.

Decisions draw from one seeded :class:`random.Random` in simulation
event order, which is itself deterministic given a schedule — so a
faulted run replays exactly from ``(schedule, seed)``.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Callable, Dict, Optional

from repro.interconnect.messages import DEFERRABLE_OPS, DataKind


@dataclasses.dataclass
class FaultPlan:
    """Picklable description of one injection campaign."""

    seed: int = 0
    #: probability an individual data message / mesh route is delayed
    delay_prob: float = 0.25
    #: maximum injected entry delay, cycles (uniform 1..max)
    max_delay_cycles: int = 200
    #: probability an individual bus address phase is stretched
    bus_jitter_prob: float = 0.25
    max_bus_jitter_cycles: int = 60
    #: probability an eligible tear-off response is dropped
    drop_prob: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        return cls(**data)


class FaultInjector:
    """Implements every fabric fault hook from one seeded RNG."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.delays_injected = 0
        self.delay_cycles_injected = 0
        self.drops_injected = 0
        self.jitters_injected = 0
        self._system = None
        #: optional telemetry hook, ``CacheController.tracer``-compatible
        self.tracer: Optional[Callable[..., None]] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def install(self, system) -> "FaultInjector":
        """Attach to every fabric surface the system actually has."""
        self._system = system
        if hasattr(system.bus, "fault_hook"):
            system.bus.fault_hook = self  # AddressBus jitter
        system.crossbar.fault_hook = self  # Crossbar or MeshNetwork
        return self

    def _trace(self, kind: str, line_addr: int, **info: Any) -> None:
        if self.tracer is not None and self._system is not None:
            # line 0 stands in for "no particular line" (mesh route
            # faults); the JSONL schema requires a non-negative address.
            self.tracer(
                kind, self._system.sim.now, -1, max(line_addr, 0), info
            )

    # ------------------------------------------------------------------
    # Hook surface (called by the fabrics)
    # ------------------------------------------------------------------
    def bus_jitter(self, txn) -> int:
        if self.rng.random() >= self.plan.bus_jitter_prob:
            return 0
        jitter = self.rng.randint(1, self.plan.max_bus_jitter_cycles)
        self.jitters_injected += 1
        self._trace("fault_delay", txn.line_addr, cycles=jitter, where="bus")
        return jitter

    def data_delay(self, msg) -> int:
        return self._entry_delay(msg.line_addr, where="xbar")

    def route_delay(self, src: int, dst: int, vc: str) -> int:
        return self._entry_delay(-1, where=f"net:{vc}")

    def _entry_delay(self, line_addr: int, where: str) -> int:
        if self.rng.random() >= self.plan.delay_prob:
            return 0
        delay = self.rng.randint(1, self.plan.max_delay_cycles)
        self.delays_injected += 1
        self.delay_cycles_injected += delay
        self._trace("fault_delay", line_addr, cycles=delay, where=where)
        return delay

    def drop(self, msg) -> bool:
        if self.plan.drop_prob <= 0.0 or msg.kind is not DataKind.TEAROFF:
            return False
        if not self._droppable(msg):
            return False
        if self.rng.random() >= self.plan.drop_prob:
            return False
        self.drops_injected += 1
        self._trace("fault_drop", msg.line_addr, dst=msg.dst, src=msg.src)
        return True

    def _droppable(self, msg) -> bool:
        """Only tear-offs whose receiver holds a deferrable queue slot.

        A tear-off answering a plain GETS is the *only* data its reader
        will get for that request; losing it would wedge the system, so
        it stays out of the fault envelope.
        """
        if self._system is None:
            return False
        if not 0 <= msg.dst < len(self._system.controllers):
            return False
        controller = self._system.controllers[msg.dst]
        mshr = controller.mshrs.get(msg.line_addr)
        return (
            mshr is not None
            and mshr.bus_op is not None
            and mshr.bus_op in DEFERRABLE_OPS
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        return {
            "delays_injected": self.delays_injected,
            "delay_cycles_injected": self.delay_cycles_injected,
            "bus_jitters_injected": self.jitters_injected,
            "drops_injected": self.drops_injected,
        }

"""Bounded model checking by permuting same-cycle tie-breaks.

The kernel's event order is total: (time, priority, sequence).  Events
tied on (time, priority) fire in scheduling order purely by accident of
sequence numbering — any permutation of them is a legal hardware
outcome.  The explorer owns exactly that freedom: it installs a
``tie_breaker`` on the simulator and drives a depth-first search over
the choice tree.

The search is *stateless* (dBug/CHESS style): no simulator snapshots.
A schedule is the list of choice indices taken at successive choice
points; to explore a branch, the whole (deterministic, fast — these are
2-4 processor configs) simulation re-executes with the schedule prefix
forced and default-0 choices beyond it.  After each run the branching
factors observed along the way enumerate the unexplored siblings, which
are pushed LIFO for DFS order.

A state fingerprint — tracked cache lines, MSHR/queue state, per-thread
progress, and the relative shape of the pending event queue — prunes
re-branching from states already expanded via a different interleaving.

On top of the fingerprint pruning, the explorer offers **partial-order
reduction** over the tie-break choice tree (``Budget.reduction``):

* ``none`` — the exhaustive DFS above; stays available as the oracle
  that the reductions are checked against (equivalence property tests).
* ``sleep`` — sleep sets (Godefroid): after a sibling choice has been
  explored from a state, later siblings carry it in their *sleep set*
  and do not re-branch to it until some executed event conflicts with
  it (waking it).  Independence comes from each tied event's conflict
  footprint (:meth:`repro.engine.event.Event.footprint`): events on
  different nodes touching disjoint cache-line sets commute; same-line
  coherence events, same-node events, and events on shared components
  (bus, directory, crossbar — no ``node_id``) conflict conservatively.
* ``dpor`` — sleep sets plus dynamic backtrack seeding in the
  Flanagan–Godefroid style: a sibling is only pushed when its candidate
  event *conflicts* with the event actually fired at that choice point.
  Orderings that merely delay an independent event are reachable through
  later choice points of the same run (the un-fired ties stay tied), so
  the adjacent-transposition of an independent pair is provably
  redundant and skipped before execution.

Every run is also *checked*: state-scan oracles fire after each event,
event-stream oracles ride the synchronous telemetry dispatch, and
end-of-run oracles classify how the run terminated.  A violation
surfaces as a replayable :class:`~repro.check.report.Counterexample`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time as _time
from collections import Counter
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.check.faults import FaultInjector, FaultPlan
from repro.check.oracles import (
    OUTCOME_BUDGET,
    OUTCOME_FINISHED,
    OUTCOME_RUNAWAY,
    DataValueOracle,
    HandoffOracle,
    Oracle,
    OracleSink,
    ProgressOracle,
    SwmrOracle,
    Violation,
)
from repro.check.scenarios import build_scenario, install_mutation
from repro.engine.simulator import SimulationError
from repro.harness.experiment import PRIMITIVES
from repro.telemetry.tracer import TraceDispatcher


class BudgetExceeded(Exception):
    """Raised in-sim when a run passes its step budget (not a failure)."""


class ReplayDivergence(Exception):
    """A forced schedule did not match the replayed tree — a checker bug.

    The simulator is deterministic, so a schedule recorded from one run
    must replay identically; divergence means the explorer itself is
    broken and must not be reported as a protocol outcome.
    """


@dataclasses.dataclass
class RunSpec:
    """Picklable description of one checker cell."""

    scenario: str = "lock"
    primitive: str = "iqolb"
    interconnect: str = "bus"
    n_processors: int = 3
    acquires_per_proc: int = 2
    timeout_cycles: Optional[int] = 400
    max_cycles: int = 2_000_000
    #: simulation kernel ("fast" or "reference"); the explorer drives
    #: the queue through the same candidates/extract contract on both,
    #: so fingerprints are engine-independent (tests assert this).
    engine: str = "fast"
    mutation: Optional[str] = None
    fault_plan: Optional[FaultPlan] = None

    def label(self) -> str:
        tag = f"{self.scenario}/{self.primitive}/{self.interconnect}"
        if self.mutation:
            tag += f"+{self.mutation}"
        if self.fault_plan is not None:
            tag += f"+faults(seed={self.fault_plan.seed})"
        return tag

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        if self.fault_plan is not None:
            data["fault_plan"] = self.fault_plan.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        data = dict(data)
        if data.get("fault_plan") is not None:
            data["fault_plan"] = FaultPlan.from_dict(data["fault_plan"])
        return cls(**data)


#: the reduction strategies ``explore`` understands
REDUCTIONS = ("none", "sleep", "dpor")


@dataclasses.dataclass
class Budget:
    """How much exploration one cell may spend, and with what reduction."""

    max_schedules: int = 200
    max_steps: int = 60_000
    max_depth: int = 40
    stop_on_violation: bool = True
    #: partial-order reduction over the choice tree: none | sleep | dpor
    reduction: str = "none"

    def __post_init__(self) -> None:
        if self.reduction not in REDUCTIONS:
            raise ValueError(
                f"unknown reduction {self.reduction!r}; "
                f"known: {', '.join(REDUCTIONS)}"
            )


#: a candidate's conflict key: (node, frozenset of line addrs, label)
CandidateKey = Tuple[Optional[int], FrozenSet[int], str]


def independent(a: CandidateKey, b: CandidateKey) -> bool:
    """Do two tied-head candidates commute?

    Events on *different* nodes touching *disjoint, known* cache-line
    sets commute: each only mutates its own node's cache/MSHR state for
    lines the other never looks at.  Everything else — same node
    (program order, shared controller state), same line (coherence
    order), unknown node (bus/directory/crossbar events mutate shared
    arbitration state), or unknown footprint — conflicts conservatively.
    The relation is symmetric by construction.
    """
    node_a, lines_a, _ = a
    node_b, lines_b, _ = b
    if node_a is None or node_b is None or node_a == node_b:
        return False
    if not lines_a or not lines_b:
        return False
    return not (lines_a & lines_b)


@dataclasses.dataclass
class RunOutcome:
    """What one schedule's execution produced."""

    status: str  # finished | runaway | budget | violation
    violation: Optional[Dict[str, Any]] = None
    observed: List[int] = dataclasses.field(default_factory=list)
    branching: List[int] = dataclasses.field(default_factory=list)
    fingerprints: List[str] = dataclasses.field(default_factory=list)
    steps: int = 0
    cycles: int = 0
    handoffs: int = 0
    detail: str = ""
    fault_summary: Optional[Dict[str, int]] = None
    stats: Optional[Dict[str, int]] = None
    #: per choice point (conflict tracking only): each tied candidate's
    #: conflict key, its event sequence number, and the sleep set as it
    #: stood when the choice was taken
    candidates: List[List[CandidateKey]] = dataclasses.field(
        default_factory=list
    )
    candidate_seqs: List[List[int]] = dataclasses.field(default_factory=list)
    sleep_at: List[FrozenSet[CandidateKey]] = dataclasses.field(
        default_factory=list
    )


@dataclasses.dataclass
class ExploreReport:
    """The result of exploring one cell's schedule tree."""

    spec: RunSpec
    schedules_run: int = 0
    violations: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    statuses: Dict[str, int] = dataclasses.field(default_factory=dict)
    choice_points: int = 0
    pruned: int = 0
    frontier_left: int = 0
    max_depth_seen: int = 0
    handoffs: int = 0
    wall_time_s: float = 0.0
    #: summed protocol/fault counters across runs (fault cells only):
    #: dir.retries, dir.defer_nacks, timeouts, fault.delays, fault.drops...
    fault_stats: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: which reduction explored this cell (mirrors Budget.reduction)
    reduction: str = "none"
    #: siblings not pushed because their candidate slept (sleep/dpor)
    pruned_sleep: int = 0
    #: siblings not pushed because their candidate was independent of
    #: the event fired at that choice point (dpor backtrack seeding)
    pruned_dpor: int = 0
    #: every distinct state fingerprint seen at any choice point, across
    #: all schedules — the coverage metric the reductions are judged by
    state_fingerprints: Set[str] = dataclasses.field(
        default_factory=set, repr=False
    )

    @property
    def distinct_states(self) -> int:
        return len(self.state_fingerprints)

    @property
    def interleavings(self) -> int:
        """Distinct interleavings executed (one per schedule)."""
        return self.schedules_run


def _candidate_key(event, amap) -> CandidateKey:
    """A tied candidate's conflict key, with addresses folded to lines."""
    node, addrs, label = event.footprint()
    return (node, frozenset(amap.line_addr(a) for a in addrs), label)


def _fingerprint(system, tracked_lines: Sequence[int]) -> str:
    """Hash the protocol-relevant state at a choice point."""
    parts: List[Any] = []
    for controller in system.controllers:
        for line_addr in tracked_lines:
            line = controller.hierarchy.peek(line_addr)
            parts.append(
                (
                    line.state.value,
                    tuple(line.data),
                )
                if line is not None and line.valid
                else None
            )
            mshr = controller.mshrs.get(line_addr)
            parts.append(
                (
                    mshr.bus_op.value if mshr.bus_op is not None else "-",
                    mshr.issued,
                    mshr.queued,
                    mshr.tearoff_done,
                    mshr.has_waiter,
                )
                if mshr is not None
                else None
            )
            parts.append(controller.successor.get(line_addr))
            parts.append(line_addr in controller.obligations)
            parts.append(controller.loan_return_to.get(line_addr))
        parts.append((controller.link_valid, controller.link_addr))
    for line_addr in tracked_lines:
        parts.append(tuple(system.memory.read_line(line_addr)))
    for processor in system.processors:
        thread = processor.thread
        parts.append(thread.ops_executed if thread is not None else -1)
    parts.append(system.sim._queue.signature(system.sim.now))
    digest = hashlib.blake2b(repr(parts).encode(), digest_size=12)
    return digest.hexdigest()


def run_once(
    spec: RunSpec,
    schedule: Sequence[int],
    budget: Optional[Budget] = None,
    extra_sinks: Optional[List[Any]] = None,
    record_tree: bool = True,
    track_conflicts: bool = False,
    sleep: FrozenSet[CandidateKey] = frozenset(),
) -> RunOutcome:
    """Execute one schedule through a fresh system and check it.

    ``schedule`` forces the first ``len(schedule)`` tie-break choices;
    beyond it the default (sequence-order) choice is taken while the
    branching factors and state fingerprints are recorded for the DFS.
    ``extra_sinks`` attach to the run's telemetry dispatcher (e.g. a
    Chrome-trace sink during counterexample replay).

    With ``track_conflicts``, each choice point additionally records the
    tied candidates' conflict keys and the evolving sleep set.  ``sleep``
    seeds that set: it holds the choices already explored from the state
    where this schedule branched off its parent, and entries are *woken*
    (dropped) as soon as an executed event conflicts with them — waking
    only starts past the forced prefix, because everything before the
    branch point is a replay the parent already accounted for.
    """
    budget = budget if budget is not None else Budget()
    built = build_scenario(
        spec.scenario,
        spec.primitive,
        spec.interconnect,
        spec.n_processors,
        spec.acquires_per_proc,
        spec.timeout_cycles,
        spec.max_cycles,
        engine=spec.engine,
    )
    system = built.system
    install_mutation(spec.mutation, system, built.workload)

    policy, _ = PRIMITIVES[spec.primitive]
    retention = policy.endswith("+retention") or policy == "qolb"
    handoff_oracle = HandoffOracle(
        system, built.workload.handoff_lines(system), fifo=retention
    )
    oracles: List[Oracle] = [
        SwmrOracle(built.tracked_lines),
        DataValueOracle(built.tracked_lines),
        handoff_oracle,
        ProgressOracle(policy),
    ]
    oracles.extend(built.workload.extra_oracles(system))

    dispatcher = TraceDispatcher()
    dispatcher.attach(OracleSink(oracles))
    for sink in extra_sinks or []:
        dispatcher.attach(sink)
    system.attach_telemetry(dispatcher)

    injector: Optional[FaultInjector] = None
    if spec.fault_plan is not None:
        injector = FaultInjector(spec.fault_plan).install(system)
        injector.tracer = dispatcher.controller_hook

    outcome = RunOutcome(status=OUTCOME_FINISHED, observed=list(schedule))
    sim = system.sim
    tracked = built.tracked_lines
    amap = system.amap
    forced_len = len(schedule)
    current_sleep: Set[CandidateKey] = set(sleep)

    def tie_breaker(ties):
        depth = len(outcome.branching)
        if depth < len(schedule):
            choice = schedule[depth]
            if choice >= len(ties):
                raise ReplayDivergence(
                    f"schedule wanted choice {choice} of {len(ties)} ties "
                    f"at depth {depth}"
                )
        elif depth < budget.max_depth:
            choice = 0
        else:
            # Past the exploration horizon: follow defaults and record
            # nothing (the DFS will not branch beyond max_depth).
            current_sleep.clear()
            return 0
        if record_tree:
            outcome.branching.append(len(ties))
            outcome.fingerprints.append(_fingerprint(system, tracked))
            if track_conflicts:
                outcome.candidates.append(
                    [_candidate_key(e, amap) for e in ties]
                )
                outcome.candidate_seqs.append([e.seq for e in ties])
                # Snapshot the sleep set *before* this choice fires, so
                # the DFS can seed siblings with exactly what slept here.
                outcome.sleep_at.append(frozenset(current_sleep))
            if depth >= len(schedule):
                outcome.observed.append(choice)
        else:
            outcome.branching.append(len(ties))
        return choice

    def on_step():
        outcome.steps += 1
        if outcome.steps > budget.max_steps:
            raise BudgetExceeded()
        # Wake sleeping choices as soon as a conflicting event executes —
        # any event, not just chosen ties: an inter-choice event can
        # re-enable a reordering the parent never covered.  Waking only
        # applies past the forced prefix; the replayed prefix is history
        # the parent's own exploration already accounted for.
        if (
            track_conflicts
            and current_sleep
            and len(outcome.branching) >= forced_len
        ):
            fired = sim.last_event
            if fired is not None:
                fkey = _candidate_key(fired, amap)
                for skey in [
                    s for s in current_sleep if not independent(s, fkey)
                ]:
                    current_sleep.discard(skey)
        for oracle in oracles:
            oracle.on_step(system)

    sim.tie_breaker = tie_breaker
    sim.on_step = on_step

    violation: Optional[Violation] = None
    try:
        system.run()
    except Violation as exc:
        violation = exc
        outcome.status = "violation"
    except BudgetExceeded:
        outcome.status = OUTCOME_BUDGET
    except (SimulationError, RuntimeError) as exc:
        # Runaway guard, wedged-retry guard, or an unfinished-threads
        # report: the run did not complete.  End-of-run oracles decide
        # whether the policy was allowed to end this way.
        outcome.status = OUTCOME_RUNAWAY
        outcome.detail = str(exc).splitlines()[0]

    if violation is None:
        try:
            for oracle in oracles:
                oracle.at_end(system, outcome.status)
            if outcome.status == OUTCOME_FINISHED:
                built.workload.verify(system)
        except Violation as exc:
            violation = exc
            outcome.status = "violation"
        except AssertionError as exc:
            violation = Violation("workload-verify", str(exc), time=sim.now)
            outcome.status = "violation"

    if violation is not None:
        outcome.violation = {
            "oracle": violation.oracle,
            "message": violation.message,
            "time": violation.time,
        }

    outcome.cycles = sim.now
    outcome.handoffs = handoff_oracle.handoffs
    if injector is not None:
        outcome.fault_summary = injector.summary()
        outcome.stats = {
            "dir.retries": system.stats.value("dir.retries"),
            "dir.defer_nacks": system.stats.value("dir.defer_nacks"),
            "dir.deferred": system.stats.value("dir.deferred"),
            "bus.retries": system.stats.value("bus.retries"),
            "timeouts": system.total("timeouts"),
            "net.faulted_drops": system.stats.value("net.faulted_drops"),
            "xbar.faulted_drops": system.stats.value("xbar.faulted_drops"),
        }
    return outcome


def explore(spec: RunSpec, budget: Optional[Budget] = None) -> ExploreReport:
    """DFS over the tie-break choice tree of one cell."""
    budget = budget if budget is not None else Budget()
    report = ExploreReport(spec=spec, reduction=budget.reduction)
    started = _time.perf_counter()
    track = budget.reduction != "none"
    # Stack entries: (forced schedule prefix, sleep set seeded from the
    # choices already explored at the branch point).
    stack: List[Tuple[List[int], FrozenSet[CandidateKey]]] = [([], frozenset())]
    visited: set = set()
    while stack and report.schedules_run < budget.max_schedules:
        prefix, sleep0 = stack.pop()
        outcome = run_once(
            spec, prefix, budget, track_conflicts=track, sleep=sleep0
        )
        report.schedules_run += 1
        report.statuses[outcome.status] = (
            report.statuses.get(outcome.status, 0) + 1
        )
        report.choice_points += len(outcome.branching)
        report.handoffs += outcome.handoffs
        report.max_depth_seen = max(report.max_depth_seen, len(outcome.branching))
        report.state_fingerprints.update(outcome.fingerprints)
        if outcome.stats:
            for key, value in outcome.stats.items():
                report.fault_stats[key] = report.fault_stats.get(key, 0) + value
        if outcome.fault_summary:
            for key, value in outcome.fault_summary.items():
                key = f"fault.{key}"
                report.fault_stats[key] = report.fault_stats.get(key, 0) + value
        if outcome.violation is not None:
            report.violations.append(
                {
                    "schedule": outcome.observed[: len(outcome.branching)],
                    "violation": outcome.violation,
                    "steps": outcome.steps,
                    "cycles": outcome.cycles,
                }
            )
            if budget.stop_on_violation:
                break
        # Enumerate unexplored siblings of the new (non-forced) choice
        # points, deepest first so the stack pops in DFS order.
        horizon = min(len(outcome.branching), budget.max_depth)
        for depth in range(horizon - 1, len(prefix) - 1, -1):
            width = outcome.branching[depth]
            if width < 2:
                continue
            if depth < len(outcome.fingerprints):
                fp = outcome.fingerprints[depth]
                if fp in visited:
                    report.pruned += 1
                    continue
                visited.add(fp)
            if not track:
                for alt in range(1, width):
                    stack.append(
                        (list(outcome.observed[:depth]) + [alt], frozenset())
                    )
                continue
            keys = outcome.candidates[depth]
            counts = Counter(keys)
            base_sleep = outcome.sleep_at[depth]
            taken = keys[outcome.observed[depth]]
            # Choices explored from this state so far, in push order; each
            # later sibling sleeps on the earlier ones — but only keys that
            # uniquely identify one candidate here, else two distinct tied
            # events sharing a footprint would shadow each other.
            explored = [taken]
            for alt in range(1, width):
                key = keys[alt]
                if key in base_sleep and counts[key] == 1:
                    report.pruned_sleep += 1
                    continue
                if budget.reduction == "dpor" and independent(key, taken):
                    # The alt commutes with the event this run fired here,
                    # so firing it later (it stays tied at the next choice
                    # points) reaches the same states — no need to branch.
                    report.pruned_dpor += 1
                    continue
                new_sleep = base_sleep | frozenset(
                    k for k in explored if counts[k] == 1
                )
                stack.append(
                    (list(outcome.observed[:depth]) + [alt], new_sleep)
                )
                explored.append(key)
    report.frontier_left = len(stack)
    report.wall_time_s = _time.perf_counter() - started
    return report

"""Counterexample capture and replay.

A counterexample is everything needed to re-execute the exact failing
run: the cell description (scenario, primitive, fabric, sizes, fault
seed, mutation) plus the tie-break schedule.  The simulator is
deterministic, so that pair replays bit-identically — ``repro check
--replay ce.json`` re-runs it, and ``--trace out.json`` attaches a
Chrome-trace sink to the replay so the failing interleaving can be read
in ``chrome://tracing``/Perfetto.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, List, Optional

from repro.check.explore import Budget, RunOutcome, RunSpec, run_once
from repro.telemetry.sinks import ChromeTraceSink


@dataclasses.dataclass
class Counterexample:
    """A replayable invariant violation."""

    spec: RunSpec
    schedule: List[int]
    oracle: str
    message: str
    time: Optional[int]
    steps: int = 0
    cycles: int = 0

    def to_json_obj(self) -> Dict[str, Any]:
        return {
            "kind": "repro-check-counterexample",
            "spec": self.spec.to_dict(),
            "schedule": list(self.schedule),
            "violation": {
                "oracle": self.oracle,
                "message": self.message,
                "time": self.time,
            },
            "steps": self.steps,
            "cycles": self.cycles,
        }

    @classmethod
    def from_json_obj(cls, data: Dict[str, Any]) -> "Counterexample":
        violation = data["violation"]
        return cls(
            spec=RunSpec.from_dict(data["spec"]),
            schedule=list(data["schedule"]),
            oracle=violation["oracle"],
            message=violation["message"],
            time=violation.get("time"),
            steps=data.get("steps", 0),
            cycles=data.get("cycles", 0),
        )

    def save(self, path: str) -> str:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json_obj(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "Counterexample":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json_obj(json.load(fh))

    def describe(self) -> str:
        return (
            f"{self.spec.label()}: [{self.oracle}] {self.message} "
            f"(schedule depth {len(self.schedule)}, t={self.time})"
        )


def from_explore_violation(
    spec: RunSpec, record: Dict[str, Any]
) -> Counterexample:
    """Build a counterexample from an ExploreReport violation record."""
    violation = record["violation"]
    return Counterexample(
        spec=spec,
        schedule=list(record["schedule"]),
        oracle=violation["oracle"],
        message=violation["message"],
        time=violation.get("time"),
        steps=record.get("steps", 0),
        cycles=record.get("cycles", 0),
    )


def replay(
    counterexample: Counterexample,
    trace_out: Optional[str] = None,
    budget: Optional[Budget] = None,
) -> RunOutcome:
    """Re-execute a counterexample; optionally dump a Chrome trace.

    Returns the replayed :class:`RunOutcome` — its ``violation`` field
    reproduces the original failure (the caller asserts that).
    """
    if budget is None:
        # The replay must be allowed at least as many steps as the run
        # that produced the counterexample (plus slack for the tail).
        default = Budget()
        budget = Budget(
            max_steps=max(default.max_steps, counterexample.steps * 2),
            max_depth=max(default.max_depth, len(counterexample.schedule)),
        )
    sinks: List[Any] = []
    chrome: Optional[ChromeTraceSink] = None
    if trace_out is not None:
        chrome = ChromeTraceSink(trace_out)
        sinks.append(chrome)
    try:
        outcome = run_once(
            counterexample.spec,
            counterexample.schedule,
            budget=budget,
            extra_sinks=sinks,
        )
    finally:
        if chrome is not None:
            chrome.close()
    return outcome

"""The checker's configuration matrix, fanned out in parallel.

One :class:`CheckJob` = one cell (scenario x primitive x fabric, plus
optional faults/mutation) with its exploration budget.  Jobs are
independent deterministic processes, so they ride the same
worker-process machinery as the sweep runner
(:func:`repro.harness.runner.map_parallel`): ``repro check --jobs 8``
explores eight cells concurrently with bit-identical results.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from repro.check.explore import Budget, RunSpec, explore
from repro.check.faults import FaultPlan
from repro.check.scenarios import FABRICS, LADDER
from repro.harness.runner import map_parallel


@dataclasses.dataclass
class CheckJob:
    """One matrix cell plus its budget (picklable worker payload)."""

    spec: RunSpec
    budget: Budget


@dataclasses.dataclass
class JobResult:
    """One cell's exploration, summarized for aggregation."""

    label: str
    spec: RunSpec
    interleavings: int
    violations: List[Dict[str, Any]]
    statuses: Dict[str, int]
    choice_points: int
    pruned: int
    frontier_left: int
    max_depth_seen: int
    handoffs: int
    wall_time_s: float
    fault_stats: Dict[str, int]
    reduction: str = "none"
    distinct_states: int = 0
    pruned_sleep: int = 0
    pruned_dpor: int = 0


def run_job(job: CheckJob) -> JobResult:
    """Worker entry point: explore one cell."""
    report = explore(job.spec, job.budget)
    return JobResult(
        label=job.spec.label(),
        spec=job.spec,
        interleavings=report.interleavings,
        violations=report.violations,
        statuses=report.statuses,
        choice_points=report.choice_points,
        pruned=report.pruned,
        frontier_left=report.frontier_left,
        max_depth_seen=report.max_depth_seen,
        handoffs=report.handoffs,
        wall_time_s=report.wall_time_s,
        fault_stats=report.fault_stats,
        reduction=report.reduction,
        distinct_states=report.distinct_states,
        pruned_sleep=report.pruned_sleep,
        pruned_dpor=report.pruned_dpor,
    )


def run_matrix(jobs: List[CheckJob], n_jobs: int = 1) -> List[JobResult]:
    """Run every job, in parallel when asked, in job order."""
    return map_parallel(run_job, jobs, n_jobs)


def smoke_jobs(
    scenario: str = "lock",
    primitives: Optional[List[str]] = None,
    interconnects: Optional[List[str]] = None,
    n_processors: int = 4,
    acquires_per_proc: int = 2,
    max_schedules: int = 1200,
    max_steps: int = 80_000,
    max_depth: int = 60,
    fault_seeds: Optional[List[int]] = None,
    mutation: Optional[str] = None,
    stop_on_violation: bool = True,
    timeout_cycles: Optional[int] = 400,
    max_cycles: int = 2_000_000,
    reduction: str = "none",
) -> List[CheckJob]:
    """The policy-ladder x fabric matrix with uniform budgets.

    With ``fault_seeds``, each cell is repeated once per seed with the
    fault injector armed (drops only make sense where tear-offs exist,
    which the injector's own eligibility predicate enforces).
    """
    prims = primitives if primitives is not None else list(LADDER)
    fabrics = interconnects if interconnects is not None else list(FABRICS)
    budget = Budget(
        max_schedules=max_schedules,
        max_steps=max_steps,
        max_depth=max_depth,
        stop_on_violation=stop_on_violation,
        reduction=reduction,
    )
    jobs: List[CheckJob] = []
    for fabric in fabrics:
        for primitive in prims:
            base = RunSpec(
                scenario=scenario,
                primitive=primitive,
                interconnect=fabric,
                n_processors=n_processors,
                acquires_per_proc=acquires_per_proc,
                mutation=mutation,
                timeout_cycles=timeout_cycles,
                max_cycles=max_cycles,
            )
            jobs.append(CheckJob(spec=base, budget=budget))
            for seed in fault_seeds or []:
                # Fault cells tighten the timeout below the injector's
                # max delay so the timeout-recovery path actually fires.
                faulted = dataclasses.replace(
                    base,
                    timeout_cycles=(
                        min(timeout_cycles, 300)
                        if timeout_cycles is not None
                        else None
                    ),
                    fault_plan=FaultPlan(
                        seed=seed,
                        delay_prob=0.4,
                        max_delay_cycles=600,
                        bus_jitter_prob=0.3,
                        drop_prob=0.3,
                    ),
                )
                jobs.append(CheckJob(spec=faulted, budget=budget))
    return jobs

"""Invariant oracles: the machine-checkable form of the paper's claims.

Each oracle watches one invariant through whichever surface observes it
most directly:

* state-scan oracles (:class:`SwmrOracle`, :class:`DataValueOracle`)
  inspect the caches after every fired event via the kernel's ``on_step``
  hook;
* event-stream oracles (:class:`HandoffOracle`) consume the structured
  telemetry stream through an :class:`OracleSink` attached to the run's
  :class:`~repro.telemetry.tracer.TraceDispatcher` — dispatch is
  synchronous, so a violation raises *inside* the simulation at the
  exact step that broke the invariant;
* :class:`CsMonitor` is called directly from the scenario's generator
  programs at critical-section entry/exit;
* :class:`ProgressOracle` classifies how the run *ended* (finished,
  runaway, out of budget) against the policy's liveness promise.

All report through :class:`Violation`, which the explorer converts into
a replayable counterexample.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.mem.line import State
from repro.telemetry.events import TelemetryEvent

#: run outcomes handed to ``Oracle.at_end``
OUTCOME_FINISHED = "finished"
OUTCOME_RUNAWAY = "runaway"
OUTCOME_BUDGET = "budget"

#: telemetry kinds that mean "this node regained ownership of the line"
_REGAIN_KINDS = frozenset({"fill", "push_recv", "loan_back"})

#: policies whose hand-off latency is bounded (timeout or explicit
#: queue), so a runaway run is a liveness violation rather than the
#: genuine livelock the paper ascribes to the aggressive baseline.
BOUNDED_POLICIES = frozenset(
    {
        "delayed",
        "delayed+retention",
        "iqolb",
        "iqolb+retention",
        "iqolb+gen",
        "adaptive",
        "qolb",
    }
)


class Violation(Exception):
    """An invariant broke.  Carries enough context to file a report."""

    def __init__(self, oracle: str, message: str, time: Optional[int] = None):
        super().__init__(f"[{oracle}] {message}")
        self.oracle = oracle
        self.message = message
        self.time = time


class Oracle:
    """Interface every invariant check implements (all hooks optional)."""

    name = "oracle"

    def on_event(self, event: TelemetryEvent) -> None:
        """One structured telemetry event, synchronously, in-sim."""

    def on_step(self, system) -> None:
        """Called after every fired kernel event."""

    def at_end(self, system, outcome: str) -> None:
        """Called once when the run ends; ``outcome`` is OUTCOME_*."""


class OracleSink:
    """TraceSink adapter: fans telemetry events out to the oracles."""

    def __init__(self, oracles: List[Oracle]) -> None:
        self._oracles = [o for o in oracles if o is not None]

    def emit(self, event: TelemetryEvent) -> None:
        for oracle in self._oracles:
            oracle.on_event(event)

    def close(self) -> None:
        pass


class SwmrOracle(Oracle):
    """Single-writer / multiple-reader over the tracked lines.

    At every step: at most one cache may hold a line writable (E/M), and
    while one does, no other cache may hold any coherent copy.  Tear-off
    copies are exempt — they carry no permission by design (paper 3.3).
    """

    name = "swmr"

    def __init__(self, tracked_lines: List[int]) -> None:
        self.tracked = tracked_lines

    def on_step(self, system) -> None:
        for line_addr in self.tracked:
            writers = []
            holders = []
            for controller in system.controllers:
                line = controller.hierarchy.peek(line_addr)
                if line is None or not line.valid:
                    continue
                if line.state is State.TEAROFF:
                    continue
                holders.append((controller.node_id, line.state))
                if line.writable:
                    writers.append(controller.node_id)
            if len(writers) > 1:
                raise Violation(
                    self.name,
                    f"line {line_addr:#x} writable at "
                    f"{['P%d' % w for w in writers]}",
                    time=system.sim.now,
                )
            if writers and len(holders) > 1:
                raise Violation(
                    self.name,
                    f"line {line_addr:#x} writable at P{writers[0]} while "
                    f"also held: {[(f'P{n}', s.value) for n, s in holders]}",
                    time=system.sim.now,
                )


class DataValueOracle(Oracle):
    """All coherent copies of a tracked line carry identical data.

    MOESI keeps memory stale behind an O/M owner, so memory is not
    consulted; the invariant is pairwise agreement between caches.
    """

    name = "data-value"

    def __init__(self, tracked_lines: List[int]) -> None:
        self.tracked = tracked_lines

    def on_step(self, system) -> None:
        for line_addr in self.tracked:
            reference = None
            ref_node = None
            for controller in system.controllers:
                line = controller.hierarchy.peek(line_addr)
                if line is None or not line.valid:
                    continue
                if line.state is State.TEAROFF:
                    continue
                if reference is None:
                    reference = list(line.data)
                    ref_node = controller.node_id
                elif list(line.data) != reference:
                    raise Violation(
                        self.name,
                        f"line {line_addr:#x} diverged: "
                        f"P{ref_node}={reference} vs "
                        f"P{controller.node_id}={list(line.data)}",
                        time=system.sim.now,
                    )


class CsMonitor:
    """In-process critical-section occupancy monitor.

    Scenario programs call :meth:`enter` right after their acquire
    completes and :meth:`exit` right before their release begins, with no
    simulated operation in between, so occupancy tracks the lock's
    semantics exactly.  Overlap raises immediately, in-sim.
    """

    name = "mutual-exclusion"

    def __init__(self) -> None:
        self.inside: Set[int] = set()
        self.entries = 0

    def enter(self, tid: int) -> None:
        if self.inside:
            raise Violation(
                self.name,
                f"T{tid} entered the critical section while "
                f"{sorted(self.inside)} inside",
            )
        self.inside.add(tid)
        self.entries += 1

    def exit(self, tid: int) -> None:
        self.inside.discard(tid)


class BarrierMonitor(Oracle):
    """All-arrive-before-any-depart, per barrier round.

    Scenario programs call :meth:`arrive` once their pre-barrier work is
    globally visible (just before entering the barrier protocol) and
    :meth:`depart` immediately after the barrier releases them.  A depart
    while any party has not arrived at that round is the barrier's safety
    violation — a sense flip released waiters early.  Registered as an
    end-of-run oracle too: a *finished* run must have departed every
    round exactly ``parties`` times.
    """

    name = "barrier-phase"

    def __init__(self, parties: int, rounds: int) -> None:
        self.parties = parties
        self.rounds = rounds
        #: per round: the set of parties that arrived
        self.arrived: Dict[int, Set[int]] = {}
        #: per round: the set of parties that departed
        self.departed: Dict[int, Set[int]] = {}

    def arrive(self, tid: int, round_no: int) -> None:
        arrived = self.arrived.setdefault(round_no, set())
        if tid in arrived:
            raise Violation(
                self.name,
                f"T{tid} arrived at round {round_no} twice",
            )
        arrived.add(tid)

    def depart(self, tid: int, round_no: int) -> None:
        arrived = self.arrived.get(round_no, set())
        if tid not in arrived:
            raise Violation(
                self.name,
                f"T{tid} departed round {round_no} without arriving",
            )
        if len(arrived) < self.parties:
            missing = sorted(set(range(self.parties)) - arrived)
            raise Violation(
                self.name,
                f"T{tid} departed round {round_no} with only "
                f"{len(arrived)}/{self.parties} arrivals "
                f"(missing {missing})",
            )
        self.departed.setdefault(round_no, set()).add(tid)

    def at_end(self, system, outcome: str) -> None:
        if outcome != OUTCOME_FINISHED:
            return
        for round_no in range(self.rounds):
            departed = self.departed.get(round_no, set())
            if len(departed) != self.parties:
                raise Violation(
                    self.name,
                    f"run finished but round {round_no} was departed by "
                    f"{len(departed)}/{self.parties} parties",
                    time=system.sim.now,
                )


class McsQueueMonitor(Oracle):
    """MCS hand-off follows queue (swap) order, plus mutual exclusion.

    The MCS queue order is defined by the atomic swaps on the tail
    pointer; each swap returns the predecessor's node, so the scenario
    program can report, per acquisition, *who* it queued behind
    (:meth:`enqueued`).  A thread with a predecessor may enter the
    critical section only after that predecessor's release for the same
    acquisition has completed (:meth:`released`) — entering earlier means
    the hand-off jumped the queue.  Because the constraint is derived
    from the predecessor links rather than callback arrival order, it is
    immune to completion-latency races between threads.
    """

    name = "mcs-order"

    def __init__(self) -> None:
        self.inside: Set[int] = set()
        self.entries = 0
        #: per thread: completed releases so far
        self.releases: Dict[int, int] = {}
        #: per waiting thread: (predecessor, release count that must be
        #: reached before this thread may enter)
        self.need: Dict[int, Tuple[int, int]] = {}

    def enqueued(self, tid: int, pred_tid: Optional[int]) -> None:
        if pred_tid is not None:
            self.need[tid] = (pred_tid, self.releases.get(pred_tid, 0) + 1)

    def enter(self, tid: int) -> None:
        if self.inside:
            raise Violation(
                self.name,
                f"T{tid} entered the critical section while "
                f"{sorted(self.inside)} inside",
            )
        need = self.need.pop(tid, None)
        if need is not None:
            pred, count = need
            if self.releases.get(pred, 0) < count:
                raise Violation(
                    self.name,
                    f"T{tid} entered before its queue predecessor "
                    f"T{pred} released — hand-off jumped the MCS queue",
                )
        self.inside.add(tid)
        self.entries += 1

    def exit(self, tid: int) -> None:
        self.inside.discard(tid)

    def released(self, tid: int) -> None:
        self.releases[tid] = self.releases.get(tid, 0) + 1

    def at_end(self, system, outcome: str) -> None:
        if outcome != OUTCOME_FINISHED:
            return
        if self.need:
            waiting = sorted(self.need)
            raise Violation(
                self.name,
                f"run finished with {waiting} still queued and never "
                f"granted the lock",
                time=system.sim.now,
            )


class HandoffOracle(Oracle):
    """Exactly-once hand-off per release, in queue order.

    Sourced from the telemetry stream:

    * ``defer`` (at the owner, with the requester) builds the per-line
      queue in join order;
    * ``handoff``/``evict_handoff`` is an ownership transfer by the
      emitting node; a second transfer by the same node without an
      intervening regain (``fill``/``push_recv``/``loan_back``) is a
      duplicated hand-off — the "exactly once" upper bound;
    * a ``release`` while the node holds a claimed successor arms an
      expectation that a hand-off follows; releasing *again* with the
      expectation still armed, or ending the run with it armed, is the
      "exactly once" lower bound — the hand-off never happened;
    * with queue retention, the transfer target must be the queue head —
      FIFO hand-off order (paper 4.2's request-order guarantee).
    """

    name = "handoff"

    def __init__(self, system, tracked_lines: List[int], fifo: bool = False):
        self.system = system
        self.tracked = set(tracked_lines)
        self.fifo = fifo
        #: per line: queued requesters in join order
        self.queue: Dict[int, List[int]] = {}
        #: (node, line) pairs that handed the line away and have not
        #: regained it since — a second hand-off from here is a duplicate
        self._handed: Set[Tuple[int, int]] = set()
        #: (node, line) -> release time, armed until the hand-off happens
        self.pending_release: Dict[Tuple[int, int], int] = {}
        self.handoffs = 0

    def _claim(self, node: int, line: int) -> Optional[int]:
        """The node's *live* successor claim — controller state is the
        authority, because queue breakdowns and squashes void claims
        through paths the event stream only reflects indirectly."""
        return self.system.controllers[node].successor.get(line)

    def on_event(self, event: TelemetryEvent) -> None:
        if event.line_addr not in self.tracked:
            return
        line = event.line_addr
        node = event.node
        kind = event.kind
        if kind == "defer":
            requester = event.info.get("requester")
            queue = self.queue.setdefault(line, [])
            if requester in queue:
                queue.remove(requester)
            queue.append(requester)
        elif kind == "squash":
            for queue in self.queue.values():
                if node in queue:
                    queue.remove(node)
        elif kind in ("queue_breakdown", "dir_breakdown"):
            # The queue dissolved (members squash and re-arbitrate); any
            # recorded order is void until it re-forms.
            self.queue.pop(line, None)
        elif kind in _REGAIN_KINDS:
            self._handed.discard((node, line))
            queue = self.queue.get(line)
            if kind == "fill" and queue and node in queue:
                queue.remove(node)
        elif kind == "release":
            claim = self._claim(node, line)
            if claim is None:
                return
            if (node, line) in self.pending_release:
                raise Violation(
                    self.name,
                    f"P{node} released line {line:#x} twice (t="
                    f"{self.pending_release[(node, line)]} and t="
                    f"{event.time}) without handing off to its queued "
                    f"successor P{claim}",
                    time=event.time,
                )
            self.pending_release[(node, line)] = event.time
        elif kind in ("handoff", "evict_handoff"):
            self.handoffs += 1
            target = event.info.get("to")
            if (node, line) in self._handed:
                raise Violation(
                    self.name,
                    f"P{node} handed line {line:#x} to P{target} twice "
                    f"without regaining ownership",
                    time=event.time,
                )
            self._handed.add((node, line))
            self.pending_release.pop((node, line), None)
            if self.fifo:
                queue = self.queue.get(line)
                if queue and target in queue and queue[0] != target:
                    raise Violation(
                        self.name,
                        f"FIFO order broken on line {line:#x}: handed to "
                        f"P{target} while P{queue[0]} joined first "
                        f"(queue {queue})",
                        time=event.time,
                    )

    def at_end(self, system, outcome: str) -> None:
        if outcome == OUTCOME_BUDGET:
            return  # cut short; the hand-off may still have been coming
        for (node, line), when in sorted(self.pending_release.items()):
            successor = self._claim(node, line)
            if successor is None:
                continue
            raise Violation(
                self.name,
                f"P{node} released line {line:#x} at t={when} but never "
                f"handed it to its queued successor P{successor} "
                f"(run {outcome} at t={system.sim.now})",
                time=when,
            )


class ProgressOracle(Oracle):
    """Liveness under the paper's timeout bound.

    For policies with bounded hand-off (timeout-based delayed/IQOLB
    variants and explicit QOLB), hitting the kernel's runaway guard means
    some waiter starved: a liveness violation.  For the baseline and
    aggressive policies livelock is a *documented phenomenon* (the
    paper's Figure 2 motivation), so a runaway is recorded as
    inconclusive rather than flagged.
    """

    name = "progress"

    def __init__(self, policy: str) -> None:
        self.policy = policy
        self.bounded = policy in BOUNDED_POLICIES
        self.inconclusive = False

    def at_end(self, system, outcome: str) -> None:
        if outcome != OUTCOME_RUNAWAY:
            return
        if not self.bounded:
            self.inconclusive = True
            return
        raise Violation(
            self.name,
            f"policy {self.policy} promises bounded hand-off but the run "
            f"exceeded max_cycles={system.sim.max_cycles}",
            time=system.sim.now,
        )

"""Checker scenarios: the smallest workloads that exercise everything.

Model checking pays for state, so scenarios are deliberately tiny —
2-4 processors, one or two contended lines, a handful of acquires — yet
chosen so the DFS reaches every protocol path: deferral, tear-offs,
queue formation, hand-off, timeout, NACK/retry on the directory.

Each scenario builds a ready-to-run :class:`~repro.harness.system.System`
and reports which line addresses the state-scan oracles should track.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.check.oracles import CsMonitor
from repro.cpu.ops import Compute, Read, Write
from repro.harness.config import SystemConfig
from repro.harness.experiment import PRIMITIVES
from repro.harness.system import System
from repro.sync.fetchop import fetch_and_add
from repro.workloads.base import LockSet, Workload

#: the policy ladder the smoke matrix sweeps (5 primitives)
LADDER = ("tts", "delayed", "iqolb", "iqolb+retention", "qolb")

#: both coherence fabrics
FABRICS = ("bus", "directory")


class MonitoredCriticalSection(Workload):
    """Contended lock with an in-process mutual-exclusion monitor.

    Like :class:`~repro.workloads.micro.NullCriticalSection`, but every
    critical section reports entry/exit to a :class:`CsMonitor` (overlap
    raises in-sim) and bumps a token word in a separate line so lost
    updates are also caught by the final verify.
    """

    name = "monitored-cs"

    def __init__(
        self,
        lock_kind: str = "tts",
        acquires_per_proc: int = 2,
        think_cycles: int = 30,
    ) -> None:
        self.lock_kind = lock_kind
        self.acquires_per_proc = acquires_per_proc
        self.think_cycles = think_cycles
        self.monitor = CsMonitor()
        self.token_addr = 0
        self.expected = 0

    def build(self, system: System) -> None:
        n = system.config.n_processors
        self.lockset = LockSet(self.lock_kind, system, 1, n)
        self.token_addr = system.layout.alloc_line()
        self.expected = n * self.acquires_per_proc
        for node in range(n):
            system.load_program(node, self._program(node))

    def tracked_lines(self, system: System) -> List[int]:
        return [
            system.amap.line_addr(self.lockset.lock_addr(0)),
            system.amap.line_addr(self.token_addr),
        ]

    def lock_line(self, system: System) -> int:
        return system.amap.line_addr(self.lockset.lock_addr(0))

    def _program(self, tid: int):
        for _ in range(self.acquires_per_proc):
            yield from self.lockset.acquire(0, tid)
            self.monitor.enter(tid)
            value = yield Read(self.token_addr)
            yield Write(self.token_addr, value + 1)
            self.monitor.exit(tid)
            yield from self.lockset.release(0, tid)
            yield Compute(self.think_cycles)

    def verify(self, system: System) -> None:
        actual = system.read_word(self.token_addr)
        if actual != self.expected:
            raise AssertionError(
                f"mutual exclusion violated: token={actual}, "
                f"expected {self.expected}"
            )


class SmallCounter(Workload):
    """Tiny contended fetch&add: the pure atomic-RMW state space."""

    name = "small-counter"

    def __init__(self, increments_per_proc: int = 2, think_cycles: int = 15):
        self.increments_per_proc = increments_per_proc
        self.think_cycles = think_cycles
        self.monitor = None
        self.counter_addr = 0
        self.expected = 0

    def build(self, system: System) -> None:
        self.counter_addr = system.layout.alloc_line()
        n = system.config.n_processors
        self.expected = n * self.increments_per_proc
        for node in range(n):
            system.load_program(node, self._program())

    def tracked_lines(self, system: System) -> List[int]:
        return [system.amap.line_addr(self.counter_addr)]

    def lock_line(self, system: System) -> int:
        return system.amap.line_addr(self.counter_addr)

    def _program(self):
        for _ in range(self.increments_per_proc):
            yield from fetch_and_add(self.counter_addr, 1, "counter.add")
            yield Compute(self.think_cycles)

    def verify(self, system: System) -> None:
        actual = system.read_word(self.counter_addr)
        if actual != self.expected:
            raise AssertionError(
                f"lost updates: counter={actual}, expected {self.expected}"
            )


@dataclasses.dataclass
class BuiltScenario:
    """Everything a checker run needs, freshly constructed."""

    system: System
    workload: Workload
    tracked_lines: List[int]
    monitor: Optional[CsMonitor]


def make_config(
    primitive: str,
    interconnect: str,
    n_processors: int,
    timeout_cycles: Optional[int],
    max_cycles: int,
) -> SystemConfig:
    policy, _lock_kind = PRIMITIVES[primitive]
    return SystemConfig(
        n_processors=n_processors,
        policy=policy,
        interconnect=interconnect,
        timeout_cycles=timeout_cycles,
        max_cycles=max_cycles,
    )


def build_scenario(
    scenario: str,
    primitive: str,
    interconnect: str,
    n_processors: int,
    acquires_per_proc: int,
    timeout_cycles: Optional[int],
    max_cycles: int,
) -> BuiltScenario:
    """Construct system + workload for one checker cell (not yet run)."""
    config = make_config(
        primitive, interconnect, n_processors, timeout_cycles, max_cycles
    )
    _policy, lock_kind = PRIMITIVES[primitive]
    if scenario == "lock":
        workload: Workload = MonitoredCriticalSection(
            lock_kind=lock_kind, acquires_per_proc=acquires_per_proc
        )
    elif scenario == "counter":
        workload = SmallCounter(increments_per_proc=acquires_per_proc)
    else:
        raise ValueError(f"unknown scenario {scenario!r}; known: lock, counter")
    system = System(config)
    workload.build(system)
    return BuiltScenario(
        system=system,
        workload=workload,
        tracked_lines=workload.tracked_lines(system),
        monitor=workload.monitor,
    )


def install_mutation(name: Optional[str], system: System) -> None:
    """Deliberately break the protocol — the checker's own self-test.

    ``skip_release_handoff`` makes every controller silently drop the
    ownership hand-off a release should trigger, exactly the
    "exactly-once per acquire/release pair" bug the checker exists to
    catch.  Combined with an effectively infinite timeout (so the
    timeout path cannot mask it), the seeded-mutation CI job asserts the
    checker produces a counterexample.
    """
    if name is None:
        return
    if name == "skip_release_handoff":
        for controller in system.controllers:
            original = controller.discharge

            def patched(line_addr, reason, _original=original):
                if reason == "release":
                    return None
                return _original(line_addr, reason)

            controller.discharge = patched
    else:
        raise ValueError(
            f"unknown mutation {name!r}; known: skip_release_handoff"
        )

"""Checker scenarios: the smallest workloads that exercise everything.

Model checking pays for state, so scenarios are deliberately tiny —
2-4 processors, one or two contended lines, a handful of acquires — yet
chosen so the DFS reaches every protocol path: deferral, tear-offs,
queue formation, hand-off, timeout, NACK/retry on the directory.

Each scenario builds a ready-to-run :class:`~repro.harness.system.System`
and reports which line addresses the state-scan oracles should track.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.check.oracles import (
    BarrierMonitor,
    CsMonitor,
    McsQueueMonitor,
    Violation,
)
from repro.core.registry import unknown_choice
from repro.cpu.ops import Compute, Read, Swap, Write
from repro.harness.config import SystemConfig
from repro.harness.experiment import PRIMITIVES
from repro.harness.system import System
from repro.sync import qcore
from repro.sync.barrier import Barrier
from repro.sync.fetchop import compare_and_swap, fetch_and_add
from repro.sync.fissile import FAST_ATTEMPTS, UNLOCKED
from repro.sync.mcs import FLAG_OFFSET, NEXT_OFFSET, SPIN_PAUSE
from repro.sync.primitives import synthetic_pc
from repro.sync.reciprocating import (
    EOS_OFFSET,
    FREE,
    GATE_CLOSED,
    GATE_OFFSET,
    GATE_OPEN,
    LOCKED_EMPTY,
    RES_OFFSET,
)
from repro.workloads.base import LockSet, Workload

#: the policy ladder the smoke matrix sweeps (5 primitives)
LADDER = ("tts", "delayed", "iqolb", "iqolb+retention", "qolb")

#: both coherence fabrics
FABRICS = ("bus", "directory")


class MonitoredCriticalSection(Workload):
    """Contended lock with an in-process mutual-exclusion monitor.

    Like :class:`~repro.workloads.micro.NullCriticalSection`, but every
    critical section reports entry/exit to a :class:`CsMonitor` (overlap
    raises in-sim) and bumps a token word in a separate line so lost
    updates are also caught by the final verify.
    """

    name = "monitored-cs"

    def __init__(
        self,
        lock_kind: str = "tts",
        acquires_per_proc: int = 2,
        think_cycles: int = 30,
    ) -> None:
        self.lock_kind = lock_kind
        self.acquires_per_proc = acquires_per_proc
        self.think_cycles = think_cycles
        self.monitor = CsMonitor()
        self.token_addr = 0
        self.expected = 0

    def build(self, system: System) -> None:
        n = system.config.n_processors
        self.lockset = LockSet(self.lock_kind, system, 1, n)
        self.token_addr = system.layout.alloc_line()
        self.expected = n * self.acquires_per_proc
        for node in range(n):
            system.load_program(node, self._program(node))

    def tracked_lines(self, system: System) -> List[int]:
        return [
            system.amap.line_addr(self.lockset.lock_addr(0)),
            system.amap.line_addr(self.token_addr),
        ]

    def lock_line(self, system: System) -> int:
        return system.amap.line_addr(self.lockset.lock_addr(0))

    def _program(self, tid: int):
        for _ in range(self.acquires_per_proc):
            yield from self.lockset.acquire(0, tid)
            self.monitor.enter(tid)
            value = yield Read(self.token_addr)
            yield Write(self.token_addr, value + 1)
            self.monitor.exit(tid)
            yield from self.lockset.release(0, tid)
            yield Compute(self.think_cycles)

    def verify(self, system: System) -> None:
        actual = system.read_word(self.token_addr)
        if actual != self.expected:
            raise AssertionError(
                f"mutual exclusion violated: token={actual}, "
                f"expected {self.expected}"
            )


class SmallCounter(Workload):
    """Tiny contended fetch&add: the pure atomic-RMW state space."""

    name = "small-counter"

    def __init__(self, increments_per_proc: int = 2, think_cycles: int = 15):
        self.increments_per_proc = increments_per_proc
        self.think_cycles = think_cycles
        self.monitor = None
        self.counter_addr = 0
        self.expected = 0

    def build(self, system: System) -> None:
        self.counter_addr = system.layout.alloc_line()
        n = system.config.n_processors
        self.expected = n * self.increments_per_proc
        for node in range(n):
            system.load_program(node, self._program())

    def tracked_lines(self, system: System) -> List[int]:
        return [system.amap.line_addr(self.counter_addr)]

    def lock_line(self, system: System) -> int:
        return system.amap.line_addr(self.counter_addr)

    def _program(self):
        for _ in range(self.increments_per_proc):
            yield from fetch_and_add(self.counter_addr, 1, "counter.add")
            yield Compute(self.think_cycles)

    def verify(self, system: System) -> None:
        actual = system.read_word(self.counter_addr)
        if actual != self.expected:
            raise AssertionError(
                f"lost updates: counter={actual}, expected {self.expected}"
            )


class BarrierEpochs(Workload):
    """Sense-reversing barrier (``sync/barrier.py``), N nodes x R rounds.

    Each round, every thread bumps a per-round work counter (an atomic
    fetch&add on its own line), reports arrival to a
    :class:`BarrierMonitor`, waits on the shared :class:`Barrier`, and on
    release checks — in-program, against simulated memory — that the
    round's counter already equals the party count.  Departing before all
    parties arrived therefore trips either the monitor (phase-order
    violation) or the memory check (a party's work was not yet visible):
    the all-arrive-before-any-depart oracle at both the program and the
    coherence level.
    """

    name = "barrier-epochs"

    def __init__(self, rounds: int = 2, think_cycles: int = 20) -> None:
        self.rounds = rounds
        self.think_cycles = think_cycles
        self.monitor: Optional[BarrierMonitor] = None
        self.barrier: Optional[Barrier] = None
        self.parties = 0
        self.round_addrs: List[int] = []

    def build(self, system: System) -> None:
        self.parties = system.config.n_processors
        self.monitor = BarrierMonitor(self.parties, self.rounds)
        count_addr = system.layout.alloc_line()
        sense_addr = system.layout.alloc_line()
        self.barrier = Barrier(count_addr, sense_addr, self.parties)
        self.round_addrs = [
            system.layout.alloc_line() for _ in range(self.rounds)
        ]
        for node in range(self.parties):
            system.load_program(node, self._program(node))

    def tracked_lines(self, system: System) -> List[int]:
        lines = [
            system.amap.line_addr(self.barrier.count_addr),
            system.amap.line_addr(self.barrier.sense_addr),
        ]
        lines.extend(system.amap.line_addr(a) for a in self.round_addrs)
        return lines

    def lock_line(self, system: System) -> int:
        # The fetch&add'ed arrival count is the contended hand-off line.
        return system.amap.line_addr(self.barrier.count_addr)

    def extra_oracles(self, system: System) -> List[object]:
        return [self.monitor]

    def _program(self, tid: int):
        local_sense = 0
        for round_no in range(self.rounds):
            yield from fetch_and_add(
                self.round_addrs[round_no], 1, "round.work"
            )
            self.monitor.arrive(tid, round_no)
            local_sense = yield from self.barrier.wait(local_sense)
            self.monitor.depart(tid, round_no)
            done = yield Read(self.round_addrs[round_no])
            if done != self.parties:
                raise Violation(
                    self.monitor.name,
                    f"T{tid} departed round {round_no} with the round "
                    f"counter at {done}/{self.parties} — a party's work "
                    f"was not yet visible",
                )
            yield Compute(self.think_cycles)

    def verify(self, system: System) -> None:
        for round_no, addr in enumerate(self.round_addrs):
            actual = system.read_word(addr)
            if actual != self.parties:
                raise AssertionError(
                    f"round {round_no} counter={actual}, "
                    f"expected {self.parties}"
                )
        count = system.read_word(self.barrier.count_addr)
        if count != 0:
            raise AssertionError(
                f"barrier count not reset after the last round: {count}"
            )
        sense = system.read_word(self.barrier.sense_addr)
        if sense != self.rounds % 2:
            raise AssertionError(
                f"global sense={sense} after {self.rounds} rounds, "
                f"expected {self.rounds % 2}"
            )


class McsHandoff(Workload):
    """MCS queue-lock hand-off race, instrumented at the protocol points.

    The program mirrors :class:`~repro.sync.mcs.McsLock`'s acquire and
    release step for step (same node layout — ``FLAG_OFFSET`` /
    ``NEXT_OFFSET`` imported from ``sync/mcs.py`` — same swap/CAS/spin
    sequence), with :class:`McsQueueMonitor` hooks inserted where the
    lock's own generators leave no seam: after the tail swap (queue
    position becomes known), at critical-section entry, and when the
    release completes.  ``drop_next_handoff`` is the scenario's seeded
    mutation: the releaser "forgets" the successor flag write, the exact
    hand-off bug the queue-order oracle exists to catch.
    """

    name = "mcs-handoff"

    def __init__(
        self, acquires_per_proc: int = 2, think_cycles: int = 25
    ) -> None:
        self.acquires_per_proc = acquires_per_proc
        self.think_cycles = think_cycles
        self.monitor: Optional[McsQueueMonitor] = None
        #: seeded mutation: skip the successor's flag write on release
        self.drop_next_handoff = False
        self.tail_addr = 0
        self.token_addr = 0
        self.node_addrs: List[int] = []
        self.owner_of: Dict[int, int] = {}
        self.expected = 0
        self.pc_spin = synthetic_pc("mcs.check.spin")

    def build(self, system: System) -> None:
        n = system.config.n_processors
        self.monitor = McsQueueMonitor()
        self.tail_addr = system.layout.alloc_line()
        self.token_addr = system.layout.alloc_line()
        self.node_addrs = [system.layout.alloc_line() for _ in range(n)]
        self.owner_of = {addr: tid for tid, addr in enumerate(self.node_addrs)}
        self.expected = n * self.acquires_per_proc
        for node in range(n):
            system.load_program(node, self._program(node))

    def tracked_lines(self, system: System) -> List[int]:
        lines = [
            system.amap.line_addr(self.tail_addr),
            system.amap.line_addr(self.token_addr),
        ]
        lines.extend(system.amap.line_addr(a) for a in self.node_addrs)
        return lines

    def lock_line(self, system: System) -> int:
        return system.amap.line_addr(self.tail_addr)

    def extra_oracles(self, system: System) -> List[object]:
        return [self.monitor]

    def _acquire(self, tid: int):
        node = self.node_addrs[tid]
        yield Write(node + NEXT_OFFSET, 0)
        yield Write(node + FLAG_OFFSET, 0)
        predecessor = yield Swap(self.tail_addr, node)
        self.monitor.enqueued(tid, self.owner_of.get(predecessor))
        if predecessor == 0:
            return
        yield Write(predecessor + NEXT_OFFSET, node)
        while True:
            flag = yield Read(node + FLAG_OFFSET, pc=self.pc_spin)
            if flag:
                return
            yield Compute(SPIN_PAUSE)

    def _release(self, tid: int):
        node = self.node_addrs[tid]
        next_node = yield Read(node + NEXT_OFFSET)
        if next_node == 0:
            swapped = yield from compare_and_swap(
                self.tail_addr, node, 0, pc_label="mcs.release_cas"
            )
            if swapped:
                self.monitor.released(tid)
                return
            while True:
                next_node = yield Read(node + NEXT_OFFSET)
                if next_node != 0:
                    break
                yield Compute(SPIN_PAUSE)
        # Record the release *before* the hand-off store commits: once it
        # does, the successor's spinning Read may observe the flag and
        # enter ahead of this generator's next resumption.
        self.monitor.released(tid)
        if not self.drop_next_handoff:
            yield Write(next_node + FLAG_OFFSET, 1)

    def _program(self, tid: int):
        for _ in range(self.acquires_per_proc):
            yield from self._acquire(tid)
            self.monitor.enter(tid)
            value = yield Read(self.token_addr)
            yield Write(self.token_addr, value + 1)
            self.monitor.exit(tid)
            yield from self._release(tid)
            yield Compute(self.think_cycles)

    def verify(self, system: System) -> None:
        actual = system.read_word(self.token_addr)
        if actual != self.expected:
            raise AssertionError(
                f"mutual exclusion violated: token={actual}, "
                f"expected {self.expected}"
            )
        tail = system.read_word(self.tail_addr)
        if tail != 0:
            raise AssertionError(
                f"MCS tail not nil after all releases: {tail:#x}"
            )


class RecipHandoff(Workload):
    """Reciprocating-lock segment hand-off, instrumented for the checker.

    The program mirrors :class:`~repro.sync.reciprocating
    .ReciprocatingLock` step for step (same arrivals-word encoding, same
    node layout and qcore blocks), wrapped in a :class:`CsMonitor` so
    overlapping critical sections raise in-sim.  The state the lock
    threads through generator locals — splice predecessor and conveyed
    ``(eos, res)`` pair — makes the hand-off itself the fragile step:
    ``drop_terminal_signal`` is the seeded mutation where the segment's
    terminal holder detaches the pending arrival stack but "forgets" to
    open the detached top's gate, starving the whole stack.
    """

    name = "recip-handoff"

    def __init__(
        self, acquires_per_proc: int = 2, think_cycles: int = 25
    ) -> None:
        self.acquires_per_proc = acquires_per_proc
        self.think_cycles = think_cycles
        self.monitor: Optional[CsMonitor] = None
        #: seeded mutation: the terminal holder detaches the pending
        #: stack but never opens its gate
        self.drop_terminal_signal = False
        self.arrivals_addr = 0
        self.token_addr = 0
        self.node_addrs: List[int] = []
        self.expected = 0
        self.pc_gate = synthetic_pc("recip.check.gate")

    def build(self, system: System) -> None:
        n = system.config.n_processors
        self.monitor = CsMonitor()
        self.arrivals_addr = system.layout.alloc_line()
        self.token_addr = system.layout.alloc_line()
        self.node_addrs = [system.layout.alloc_line() for _ in range(n)]
        self.expected = n * self.acquires_per_proc
        for node in range(n):
            system.load_program(node, self._program(node))

    def tracked_lines(self, system: System) -> List[int]:
        lines = [
            system.amap.line_addr(self.arrivals_addr),
            system.amap.line_addr(self.token_addr),
        ]
        lines.extend(system.amap.line_addr(a) for a in self.node_addrs)
        return lines

    def lock_line(self, system: System) -> int:
        return system.amap.line_addr(self.arrivals_addr)

    def _acquire(self, tid: int):
        node = self.node_addrs[tid]
        yield from qcore.signal(node + GATE_OFFSET, GATE_CLOSED)
        pred = yield from qcore.splice_swap(self.arrivals_addr, node)
        if pred == FREE:
            return pred, FREE, node
        yield from qcore.wait_until(
            node + GATE_OFFSET, GATE_OPEN, pc=self.pc_gate
        )
        eos = yield from qcore.probe(node + EOS_OFFSET)
        res = yield from qcore.probe(node + RES_OFFSET)
        return pred, eos, res

    def _admit(self, succ: int, eos: int, res: int, terminal: bool):
        yield from qcore.signal(succ + EOS_OFFSET, eos)
        yield from qcore.signal(succ + RES_OFFSET, res)
        if terminal and self.drop_terminal_signal:
            return
        yield from qcore.signal(succ + GATE_OFFSET, GATE_OPEN)

    def _release(self, tid: int, pred: int, eos: int, res: int):
        if pred != eos:
            yield from self._admit(pred, eos, res, terminal=False)
            return
        freed = yield from qcore.unsplice(
            self.arrivals_addr, res, "recip.check.release_cas"
        )
        if freed:
            return
        top = yield from qcore.splice_swap(self.arrivals_addr, LOCKED_EMPTY)
        yield from self._admit(top, res, LOCKED_EMPTY, terminal=True)

    def _program(self, tid: int):
        for _ in range(self.acquires_per_proc):
            pred, eos, res = yield from self._acquire(tid)
            self.monitor.enter(tid)
            value = yield Read(self.token_addr)
            yield Write(self.token_addr, value + 1)
            self.monitor.exit(tid)
            yield from self._release(tid, pred, eos, res)
            yield Compute(self.think_cycles)

    def verify(self, system: System) -> None:
        actual = system.read_word(self.token_addr)
        if actual != self.expected:
            raise AssertionError(
                f"mutual exclusion violated: token={actual}, "
                f"expected {self.expected}"
            )
        arrivals = system.read_word(self.arrivals_addr)
        if arrivals != FREE:
            raise AssertionError(
                f"arrivals word not FREE after all releases: {arrivals:#x}"
            )


class FissileHandoff(Workload):
    """Fissile-lock anti-collapse hand-off, instrumented for the checker.

    Mirrors :class:`~repro.sync.fissile.FissileLock` step for step:
    bounded barging on the inner test&set word, MCS-style outer queue,
    and the head's promote-successor-before-CS step.  That promotion is
    the lock's load-bearing liveness edge — the *only* place an outer
    waiter is ever woken — so ``skip_anti_collapse`` is the seeded
    mutation: the head enters the critical section without promoting,
    and every thread parked behind it starves.
    """

    name = "fissile-handoff"

    def __init__(
        self, acquires_per_proc: int = 2, think_cycles: int = 25
    ) -> None:
        self.acquires_per_proc = acquires_per_proc
        self.think_cycles = think_cycles
        self.monitor: Optional[CsMonitor] = None
        #: seeded mutation: the head never promotes its successor
        self.skip_anti_collapse = False
        self.inner_addr = 0
        self.tail_addr = 0
        self.token_addr = 0
        self.node_addrs: List[int] = []
        self.expected = 0
        self.pc_fast = synthetic_pc("fissile.check.fast")
        self.pc_queue = synthetic_pc("fissile.check.queue")
        self.pc_head = synthetic_pc("fissile.check.head")

    def build(self, system: System) -> None:
        n = system.config.n_processors
        self.monitor = CsMonitor()
        self.inner_addr = system.layout.alloc_line()
        self.tail_addr = system.layout.alloc_line()
        self.token_addr = system.layout.alloc_line()
        self.node_addrs = [system.layout.alloc_line() for _ in range(n)]
        self.expected = n * self.acquires_per_proc
        for node in range(n):
            system.load_program(node, self._program(node))

    def tracked_lines(self, system: System) -> List[int]:
        lines = [
            system.amap.line_addr(self.inner_addr),
            system.amap.line_addr(self.tail_addr),
            system.amap.line_addr(self.token_addr),
        ]
        lines.extend(system.amap.line_addr(a) for a in self.node_addrs)
        return lines

    def lock_line(self, system: System) -> int:
        return system.amap.line_addr(self.inner_addr)

    def _acquire(self, tid: int):
        node = self.node_addrs[tid]
        backoff = SPIN_PAUSE
        for _attempt in range(FAST_ATTEMPTS):
            old = yield from qcore.grab(self.inner_addr, pc=self.pc_fast)
            if old == UNLOCKED:
                return
            yield from qcore.pause(backoff)
            backoff = min(backoff * 2, 256)
        yield from qcore.signal(node + NEXT_OFFSET, 0)
        yield from qcore.signal(node + FLAG_OFFSET, 0)
        predecessor = yield from qcore.splice_swap(self.tail_addr, node)
        if predecessor != 0:
            yield from qcore.signal(predecessor + NEXT_OFFSET, node)
            yield from qcore.wait_until(
                node + FLAG_OFFSET, qcore.nonzero, pc=self.pc_queue
            )
        while True:
            value = yield from qcore.probe(self.inner_addr, pc=self.pc_head)
            if value == UNLOCKED:
                old = yield from qcore.grab(self.inner_addr, pc=self.pc_head)
                if old == UNLOCKED:
                    break
            yield from qcore.pause(SPIN_PAUSE)
        if not self.skip_anti_collapse:
            yield from self._promote_successor(node)

    def _promote_successor(self, node: int):
        next_node = yield from qcore.probe(node + NEXT_OFFSET)
        if next_node == 0:
            swapped = yield from qcore.unsplice(
                self.tail_addr, node, pc_label="fissile.check.promote_cas"
            )
            if swapped:
                return
            next_node = yield from qcore.wait_until(
                node + NEXT_OFFSET, qcore.nonzero
            )
        yield from qcore.signal(next_node + FLAG_OFFSET, 1)

    def _program(self, tid: int):
        for _ in range(self.acquires_per_proc):
            yield from self._acquire(tid)
            self.monitor.enter(tid)
            value = yield Read(self.token_addr)
            yield Write(self.token_addr, value + 1)
            self.monitor.exit(tid)
            yield from qcore.signal(self.inner_addr, UNLOCKED)
            yield Compute(self.think_cycles)

    def verify(self, system: System) -> None:
        actual = system.read_word(self.token_addr)
        if actual != self.expected:
            raise AssertionError(
                f"mutual exclusion violated: token={actual}, "
                f"expected {self.expected}"
            )
        inner = system.read_word(self.inner_addr)
        if inner != UNLOCKED:
            raise AssertionError(
                f"inner word still held after all releases: {inner}"
            )
        tail = system.read_word(self.tail_addr)
        if tail != 0:
            raise AssertionError(
                f"fissile outer tail not nil after all releases: {tail:#x}"
            )


@dataclasses.dataclass
class BuiltScenario:
    """Everything a checker run needs, freshly constructed."""

    system: System
    workload: Workload
    tracked_lines: List[int]
    #: the workload's in-process monitor (CsMonitor, BarrierMonitor,
    #: McsQueueMonitor, ...) or None when the scenario has none
    monitor: Optional[object]


def make_config(
    primitive: str,
    interconnect: str,
    n_processors: int,
    timeout_cycles: Optional[int],
    max_cycles: int,
    engine: str = "fast",
) -> SystemConfig:
    policy, _lock_kind = PRIMITIVES[primitive]
    return SystemConfig(
        n_processors=n_processors,
        policy=policy,
        interconnect=interconnect,
        timeout_cycles=timeout_cycles,
        max_cycles=max_cycles,
        engine=engine,
    )


def _make_lock(primitive: str, acquires_per_proc: int) -> Workload:
    _policy, lock_kind = PRIMITIVES[primitive]
    return MonitoredCriticalSection(
        lock_kind=lock_kind, acquires_per_proc=acquires_per_proc
    )


def _make_counter(primitive: str, acquires_per_proc: int) -> Workload:
    return SmallCounter(increments_per_proc=acquires_per_proc)


def _make_barrier(primitive: str, acquires_per_proc: int) -> Workload:
    return BarrierEpochs(rounds=acquires_per_proc)


def _make_mcs(primitive: str, acquires_per_proc: int) -> Workload:
    return McsHandoff(acquires_per_proc=acquires_per_proc)


def _make_recip(primitive: str, acquires_per_proc: int) -> Workload:
    return RecipHandoff(acquires_per_proc=acquires_per_proc)


def _make_fissile(primitive: str, acquires_per_proc: int) -> Workload:
    return FissileHandoff(acquires_per_proc=acquires_per_proc)


#: the scenario registry: one dict so the CLI ``choices``, the runner
#: matrix, and the unknown-scenario error message cannot drift apart.
#: Each factory takes ``(primitive, acquires_per_proc)`` — the per-proc
#: knob doubles as rounds for the barrier scenario.
SCENARIOS: Dict[str, Callable[[str, int], Workload]] = {
    "lock": _make_lock,
    "counter": _make_counter,
    "barrier": _make_barrier,
    "mcs": _make_mcs,
    "reciprocating": _make_recip,
    "fissile": _make_fissile,
}


def scenario_names() -> List[str]:
    """Registry keys, sorted — the single source for CLI choices."""
    return sorted(SCENARIOS)


def mutation_names() -> List[str]:
    """Mutation registry keys, sorted — the single source for CLI choices."""
    return sorted(MUTATIONS)


def build_scenario(
    scenario: str,
    primitive: str,
    interconnect: str,
    n_processors: int,
    acquires_per_proc: int,
    timeout_cycles: Optional[int],
    max_cycles: int,
    engine: str = "fast",
) -> BuiltScenario:
    """Construct system + workload for one checker cell (not yet run)."""
    try:
        factory = SCENARIOS[scenario]
    except KeyError:
        raise unknown_choice(
            "scenario", scenario, scenario_names()
        ) from None
    config = make_config(
        primitive, interconnect, n_processors, timeout_cycles, max_cycles, engine
    )
    workload = factory(primitive, acquires_per_proc)
    system = System(config)
    workload.build(system)
    return BuiltScenario(
        system=system,
        workload=workload,
        tracked_lines=workload.tracked_lines(system),
        monitor=workload.monitor,
    )


def _mutate_skip_release_handoff(system: System, workload: Workload) -> None:
    """Every controller silently drops the ownership hand-off a release
    should trigger — the "exactly-once per acquire/release pair" bug."""
    for controller in system.controllers:
        original = controller.discharge

        def patched(line_addr, reason, _original=original):
            if reason == "release":
                return None
            return _original(line_addr, reason)

        controller.discharge = patched


def _require(workload: Workload, cls: type, mutation: str):
    if not isinstance(workload, cls):
        raise ValueError(
            f"mutation {mutation!r} requires the {cls.name!r} scenario, "
            f"not {workload.name!r}"
        )
    return workload


def _mutate_barrier_skip_sense_flip(system: System, workload) -> None:
    """The last arriver never recognizes itself (the arrival count can
    never reach ``parties``), so the sense flip is skipped entirely and
    every waiter starves — caught as a liveness violation."""
    barrier = _require(workload, BarrierEpochs, "barrier_skip_sense_flip").barrier
    barrier.parties += 1


def _mutate_barrier_early_release(system: System, workload) -> None:
    """The second-to-last arriver flips the sense, releasing waiters
    while one party has not arrived — the all-arrive-before-any-depart
    violation the barrier oracle exists to catch."""
    barrier = _require(workload, BarrierEpochs, "barrier_early_release").barrier
    if barrier.parties < 2:
        raise ValueError("barrier_early_release needs at least 2 parties")
    barrier.parties -= 1


def _mutate_mcs_drop_handoff(system: System, workload) -> None:
    """The MCS releaser "forgets" the successor's flag write: the queued
    next waiter spins forever — the dropped next-pointer hand-off."""
    _require(workload, McsHandoff, "mcs_drop_handoff").drop_next_handoff = True


def _mutate_recip_drop_terminal_signal(system: System, workload) -> None:
    """The reciprocating terminal holder detaches the pending arrival
    stack but never opens the detached top's gate: the whole stacked
    segment spins on closed gates forever."""
    _require(
        workload, RecipHandoff, "recip_drop_terminal_signal"
    ).drop_terminal_signal = True


def _mutate_fissile_skip_anti_collapse(system: System, workload) -> None:
    """The fissile head enters the critical section without promoting
    its outer-queue successor — the one wake-up edge outer waiters have
    — so everyone parked behind it starves."""
    _require(
        workload, FissileHandoff, "fissile_skip_anti_collapse"
    ).skip_anti_collapse = True


#: mutation registry: protocol-level mutations patch the system, the
#: scenario-level ones arm a deliberate bug in the workload itself.
MUTATIONS: Dict[str, Callable[[System, Workload], None]] = {
    "skip_release_handoff": _mutate_skip_release_handoff,
    "barrier_skip_sense_flip": _mutate_barrier_skip_sense_flip,
    "barrier_early_release": _mutate_barrier_early_release,
    "mcs_drop_handoff": _mutate_mcs_drop_handoff,
    "recip_drop_terminal_signal": _mutate_recip_drop_terminal_signal,
    "fissile_skip_anti_collapse": _mutate_fissile_skip_anti_collapse,
}


def install_mutation(
    name: Optional[str], system: System, workload: Optional[Workload] = None
) -> None:
    """Deliberately break the protocol or scenario — the checker's own
    self-test.

    A checker that never fires is indistinguishable from one that
    cannot; each scenario has at least one seeded mutation whose
    violation the CI self-test asserts is found *and* replayable.
    """
    if name is None:
        return
    try:
        installer = MUTATIONS[name]
    except KeyError:
        raise unknown_choice("mutation", name, mutation_names()) from None
    installer(system, workload)

"""Checker scenarios: the smallest workloads that exercise everything.

Model checking pays for state, so scenarios are deliberately tiny —
2-4 processors, one or two contended lines, a handful of acquires — yet
chosen so the DFS reaches every protocol path: deferral, tear-offs,
queue formation, hand-off, timeout, NACK/retry on the directory.

Each scenario builds a ready-to-run :class:`~repro.harness.system.System`
and reports which line addresses the state-scan oracles should track.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.check.oracles import (
    BarrierMonitor,
    CsMonitor,
    McsQueueMonitor,
    Violation,
)
from repro.cpu.ops import Compute, Read, Swap, Write
from repro.harness.config import SystemConfig
from repro.harness.experiment import PRIMITIVES
from repro.harness.system import System
from repro.sync.barrier import Barrier
from repro.sync.fetchop import compare_and_swap, fetch_and_add
from repro.sync.mcs import FLAG_OFFSET, NEXT_OFFSET, SPIN_PAUSE
from repro.sync.primitives import synthetic_pc
from repro.workloads.base import LockSet, Workload

#: the policy ladder the smoke matrix sweeps (5 primitives)
LADDER = ("tts", "delayed", "iqolb", "iqolb+retention", "qolb")

#: both coherence fabrics
FABRICS = ("bus", "directory")


class MonitoredCriticalSection(Workload):
    """Contended lock with an in-process mutual-exclusion monitor.

    Like :class:`~repro.workloads.micro.NullCriticalSection`, but every
    critical section reports entry/exit to a :class:`CsMonitor` (overlap
    raises in-sim) and bumps a token word in a separate line so lost
    updates are also caught by the final verify.
    """

    name = "monitored-cs"

    def __init__(
        self,
        lock_kind: str = "tts",
        acquires_per_proc: int = 2,
        think_cycles: int = 30,
    ) -> None:
        self.lock_kind = lock_kind
        self.acquires_per_proc = acquires_per_proc
        self.think_cycles = think_cycles
        self.monitor = CsMonitor()
        self.token_addr = 0
        self.expected = 0

    def build(self, system: System) -> None:
        n = system.config.n_processors
        self.lockset = LockSet(self.lock_kind, system, 1, n)
        self.token_addr = system.layout.alloc_line()
        self.expected = n * self.acquires_per_proc
        for node in range(n):
            system.load_program(node, self._program(node))

    def tracked_lines(self, system: System) -> List[int]:
        return [
            system.amap.line_addr(self.lockset.lock_addr(0)),
            system.amap.line_addr(self.token_addr),
        ]

    def lock_line(self, system: System) -> int:
        return system.amap.line_addr(self.lockset.lock_addr(0))

    def _program(self, tid: int):
        for _ in range(self.acquires_per_proc):
            yield from self.lockset.acquire(0, tid)
            self.monitor.enter(tid)
            value = yield Read(self.token_addr)
            yield Write(self.token_addr, value + 1)
            self.monitor.exit(tid)
            yield from self.lockset.release(0, tid)
            yield Compute(self.think_cycles)

    def verify(self, system: System) -> None:
        actual = system.read_word(self.token_addr)
        if actual != self.expected:
            raise AssertionError(
                f"mutual exclusion violated: token={actual}, "
                f"expected {self.expected}"
            )


class SmallCounter(Workload):
    """Tiny contended fetch&add: the pure atomic-RMW state space."""

    name = "small-counter"

    def __init__(self, increments_per_proc: int = 2, think_cycles: int = 15):
        self.increments_per_proc = increments_per_proc
        self.think_cycles = think_cycles
        self.monitor = None
        self.counter_addr = 0
        self.expected = 0

    def build(self, system: System) -> None:
        self.counter_addr = system.layout.alloc_line()
        n = system.config.n_processors
        self.expected = n * self.increments_per_proc
        for node in range(n):
            system.load_program(node, self._program())

    def tracked_lines(self, system: System) -> List[int]:
        return [system.amap.line_addr(self.counter_addr)]

    def lock_line(self, system: System) -> int:
        return system.amap.line_addr(self.counter_addr)

    def _program(self):
        for _ in range(self.increments_per_proc):
            yield from fetch_and_add(self.counter_addr, 1, "counter.add")
            yield Compute(self.think_cycles)

    def verify(self, system: System) -> None:
        actual = system.read_word(self.counter_addr)
        if actual != self.expected:
            raise AssertionError(
                f"lost updates: counter={actual}, expected {self.expected}"
            )


class BarrierEpochs(Workload):
    """Sense-reversing barrier (``sync/barrier.py``), N nodes x R rounds.

    Each round, every thread bumps a per-round work counter (an atomic
    fetch&add on its own line), reports arrival to a
    :class:`BarrierMonitor`, waits on the shared :class:`Barrier`, and on
    release checks — in-program, against simulated memory — that the
    round's counter already equals the party count.  Departing before all
    parties arrived therefore trips either the monitor (phase-order
    violation) or the memory check (a party's work was not yet visible):
    the all-arrive-before-any-depart oracle at both the program and the
    coherence level.
    """

    name = "barrier-epochs"

    def __init__(self, rounds: int = 2, think_cycles: int = 20) -> None:
        self.rounds = rounds
        self.think_cycles = think_cycles
        self.monitor: Optional[BarrierMonitor] = None
        self.barrier: Optional[Barrier] = None
        self.parties = 0
        self.round_addrs: List[int] = []

    def build(self, system: System) -> None:
        self.parties = system.config.n_processors
        self.monitor = BarrierMonitor(self.parties, self.rounds)
        count_addr = system.layout.alloc_line()
        sense_addr = system.layout.alloc_line()
        self.barrier = Barrier(count_addr, sense_addr, self.parties)
        self.round_addrs = [
            system.layout.alloc_line() for _ in range(self.rounds)
        ]
        for node in range(self.parties):
            system.load_program(node, self._program(node))

    def tracked_lines(self, system: System) -> List[int]:
        lines = [
            system.amap.line_addr(self.barrier.count_addr),
            system.amap.line_addr(self.barrier.sense_addr),
        ]
        lines.extend(system.amap.line_addr(a) for a in self.round_addrs)
        return lines

    def lock_line(self, system: System) -> int:
        # The fetch&add'ed arrival count is the contended hand-off line.
        return system.amap.line_addr(self.barrier.count_addr)

    def extra_oracles(self, system: System) -> List[object]:
        return [self.monitor]

    def _program(self, tid: int):
        local_sense = 0
        for round_no in range(self.rounds):
            yield from fetch_and_add(
                self.round_addrs[round_no], 1, "round.work"
            )
            self.monitor.arrive(tid, round_no)
            local_sense = yield from self.barrier.wait(local_sense)
            self.monitor.depart(tid, round_no)
            done = yield Read(self.round_addrs[round_no])
            if done != self.parties:
                raise Violation(
                    self.monitor.name,
                    f"T{tid} departed round {round_no} with the round "
                    f"counter at {done}/{self.parties} — a party's work "
                    f"was not yet visible",
                )
            yield Compute(self.think_cycles)

    def verify(self, system: System) -> None:
        for round_no, addr in enumerate(self.round_addrs):
            actual = system.read_word(addr)
            if actual != self.parties:
                raise AssertionError(
                    f"round {round_no} counter={actual}, "
                    f"expected {self.parties}"
                )
        count = system.read_word(self.barrier.count_addr)
        if count != 0:
            raise AssertionError(
                f"barrier count not reset after the last round: {count}"
            )
        sense = system.read_word(self.barrier.sense_addr)
        if sense != self.rounds % 2:
            raise AssertionError(
                f"global sense={sense} after {self.rounds} rounds, "
                f"expected {self.rounds % 2}"
            )


class McsHandoff(Workload):
    """MCS queue-lock hand-off race, instrumented at the protocol points.

    The program mirrors :class:`~repro.sync.mcs.McsLock`'s acquire and
    release step for step (same node layout — ``FLAG_OFFSET`` /
    ``NEXT_OFFSET`` imported from ``sync/mcs.py`` — same swap/CAS/spin
    sequence), with :class:`McsQueueMonitor` hooks inserted where the
    lock's own generators leave no seam: after the tail swap (queue
    position becomes known), at critical-section entry, and when the
    release completes.  ``drop_next_handoff`` is the scenario's seeded
    mutation: the releaser "forgets" the successor flag write, the exact
    hand-off bug the queue-order oracle exists to catch.
    """

    name = "mcs-handoff"

    def __init__(
        self, acquires_per_proc: int = 2, think_cycles: int = 25
    ) -> None:
        self.acquires_per_proc = acquires_per_proc
        self.think_cycles = think_cycles
        self.monitor: Optional[McsQueueMonitor] = None
        #: seeded mutation: skip the successor's flag write on release
        self.drop_next_handoff = False
        self.tail_addr = 0
        self.token_addr = 0
        self.node_addrs: List[int] = []
        self.owner_of: Dict[int, int] = {}
        self.expected = 0
        self.pc_spin = synthetic_pc("mcs.check.spin")

    def build(self, system: System) -> None:
        n = system.config.n_processors
        self.monitor = McsQueueMonitor()
        self.tail_addr = system.layout.alloc_line()
        self.token_addr = system.layout.alloc_line()
        self.node_addrs = [system.layout.alloc_line() for _ in range(n)]
        self.owner_of = {addr: tid for tid, addr in enumerate(self.node_addrs)}
        self.expected = n * self.acquires_per_proc
        for node in range(n):
            system.load_program(node, self._program(node))

    def tracked_lines(self, system: System) -> List[int]:
        lines = [
            system.amap.line_addr(self.tail_addr),
            system.amap.line_addr(self.token_addr),
        ]
        lines.extend(system.amap.line_addr(a) for a in self.node_addrs)
        return lines

    def lock_line(self, system: System) -> int:
        return system.amap.line_addr(self.tail_addr)

    def extra_oracles(self, system: System) -> List[object]:
        return [self.monitor]

    def _acquire(self, tid: int):
        node = self.node_addrs[tid]
        yield Write(node + NEXT_OFFSET, 0)
        yield Write(node + FLAG_OFFSET, 0)
        predecessor = yield Swap(self.tail_addr, node)
        self.monitor.enqueued(tid, self.owner_of.get(predecessor))
        if predecessor == 0:
            return
        yield Write(predecessor + NEXT_OFFSET, node)
        while True:
            flag = yield Read(node + FLAG_OFFSET, pc=self.pc_spin)
            if flag:
                return
            yield Compute(SPIN_PAUSE)

    def _release(self, tid: int):
        node = self.node_addrs[tid]
        next_node = yield Read(node + NEXT_OFFSET)
        if next_node == 0:
            swapped = yield from compare_and_swap(
                self.tail_addr, node, 0, pc_label="mcs.release_cas"
            )
            if swapped:
                self.monitor.released(tid)
                return
            while True:
                next_node = yield Read(node + NEXT_OFFSET)
                if next_node != 0:
                    break
                yield Compute(SPIN_PAUSE)
        # Record the release *before* the hand-off store commits: once it
        # does, the successor's spinning Read may observe the flag and
        # enter ahead of this generator's next resumption.
        self.monitor.released(tid)
        if not self.drop_next_handoff:
            yield Write(next_node + FLAG_OFFSET, 1)

    def _program(self, tid: int):
        for _ in range(self.acquires_per_proc):
            yield from self._acquire(tid)
            self.monitor.enter(tid)
            value = yield Read(self.token_addr)
            yield Write(self.token_addr, value + 1)
            self.monitor.exit(tid)
            yield from self._release(tid)
            yield Compute(self.think_cycles)

    def verify(self, system: System) -> None:
        actual = system.read_word(self.token_addr)
        if actual != self.expected:
            raise AssertionError(
                f"mutual exclusion violated: token={actual}, "
                f"expected {self.expected}"
            )
        tail = system.read_word(self.tail_addr)
        if tail != 0:
            raise AssertionError(
                f"MCS tail not nil after all releases: {tail:#x}"
            )


@dataclasses.dataclass
class BuiltScenario:
    """Everything a checker run needs, freshly constructed."""

    system: System
    workload: Workload
    tracked_lines: List[int]
    #: the workload's in-process monitor (CsMonitor, BarrierMonitor,
    #: McsQueueMonitor, ...) or None when the scenario has none
    monitor: Optional[object]


def make_config(
    primitive: str,
    interconnect: str,
    n_processors: int,
    timeout_cycles: Optional[int],
    max_cycles: int,
    engine: str = "fast",
) -> SystemConfig:
    policy, _lock_kind = PRIMITIVES[primitive]
    return SystemConfig(
        n_processors=n_processors,
        policy=policy,
        interconnect=interconnect,
        timeout_cycles=timeout_cycles,
        max_cycles=max_cycles,
        engine=engine,
    )


def _make_lock(primitive: str, acquires_per_proc: int) -> Workload:
    _policy, lock_kind = PRIMITIVES[primitive]
    return MonitoredCriticalSection(
        lock_kind=lock_kind, acquires_per_proc=acquires_per_proc
    )


def _make_counter(primitive: str, acquires_per_proc: int) -> Workload:
    return SmallCounter(increments_per_proc=acquires_per_proc)


def _make_barrier(primitive: str, acquires_per_proc: int) -> Workload:
    return BarrierEpochs(rounds=acquires_per_proc)


def _make_mcs(primitive: str, acquires_per_proc: int) -> Workload:
    return McsHandoff(acquires_per_proc=acquires_per_proc)


#: the scenario registry: one dict so the CLI ``choices``, the runner
#: matrix, and the unknown-scenario error message cannot drift apart.
#: Each factory takes ``(primitive, acquires_per_proc)`` — the per-proc
#: knob doubles as rounds for the barrier scenario.
SCENARIOS: Dict[str, Callable[[str, int], Workload]] = {
    "lock": _make_lock,
    "counter": _make_counter,
    "barrier": _make_barrier,
    "mcs": _make_mcs,
}


def scenario_names() -> List[str]:
    """Registry keys, sorted — the single source for CLI choices."""
    return sorted(SCENARIOS)


def mutation_names() -> List[str]:
    """Mutation registry keys, sorted — the single source for CLI choices."""
    return sorted(MUTATIONS)


def build_scenario(
    scenario: str,
    primitive: str,
    interconnect: str,
    n_processors: int,
    acquires_per_proc: int,
    timeout_cycles: Optional[int],
    max_cycles: int,
    engine: str = "fast",
) -> BuiltScenario:
    """Construct system + workload for one checker cell (not yet run)."""
    try:
        factory = SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r}; "
            f"known: {', '.join(scenario_names())}"
        ) from None
    config = make_config(
        primitive, interconnect, n_processors, timeout_cycles, max_cycles, engine
    )
    workload = factory(primitive, acquires_per_proc)
    system = System(config)
    workload.build(system)
    return BuiltScenario(
        system=system,
        workload=workload,
        tracked_lines=workload.tracked_lines(system),
        monitor=workload.monitor,
    )


def _mutate_skip_release_handoff(system: System, workload: Workload) -> None:
    """Every controller silently drops the ownership hand-off a release
    should trigger — the "exactly-once per acquire/release pair" bug."""
    for controller in system.controllers:
        original = controller.discharge

        def patched(line_addr, reason, _original=original):
            if reason == "release":
                return None
            return _original(line_addr, reason)

        controller.discharge = patched


def _require(workload: Workload, cls: type, mutation: str):
    if not isinstance(workload, cls):
        raise ValueError(
            f"mutation {mutation!r} requires the {cls.name!r} scenario, "
            f"not {workload.name!r}"
        )
    return workload


def _mutate_barrier_skip_sense_flip(system: System, workload) -> None:
    """The last arriver never recognizes itself (the arrival count can
    never reach ``parties``), so the sense flip is skipped entirely and
    every waiter starves — caught as a liveness violation."""
    barrier = _require(workload, BarrierEpochs, "barrier_skip_sense_flip").barrier
    barrier.parties += 1


def _mutate_barrier_early_release(system: System, workload) -> None:
    """The second-to-last arriver flips the sense, releasing waiters
    while one party has not arrived — the all-arrive-before-any-depart
    violation the barrier oracle exists to catch."""
    barrier = _require(workload, BarrierEpochs, "barrier_early_release").barrier
    if barrier.parties < 2:
        raise ValueError("barrier_early_release needs at least 2 parties")
    barrier.parties -= 1


def _mutate_mcs_drop_handoff(system: System, workload) -> None:
    """The MCS releaser "forgets" the successor's flag write: the queued
    next waiter spins forever — the dropped next-pointer hand-off."""
    _require(workload, McsHandoff, "mcs_drop_handoff").drop_next_handoff = True


#: mutation registry: protocol-level mutations patch the system, the
#: scenario-level ones arm a deliberate bug in the workload itself.
MUTATIONS: Dict[str, Callable[[System, Workload], None]] = {
    "skip_release_handoff": _mutate_skip_release_handoff,
    "barrier_skip_sense_flip": _mutate_barrier_skip_sense_flip,
    "barrier_early_release": _mutate_barrier_early_release,
    "mcs_drop_handoff": _mutate_mcs_drop_handoff,
}


def install_mutation(
    name: Optional[str], system: System, workload: Optional[Workload] = None
) -> None:
    """Deliberately break the protocol or scenario — the checker's own
    self-test.

    A checker that never fires is indistinguishable from one that
    cannot; each scenario has at least one seeded mutation whose
    violation the CI self-test asserts is found *and* replayable.
    """
    if name is None:
        return
    try:
        installer = MUTATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r}; known: {', '.join(sorted(MUTATIONS))}"
        ) from None
    installer(system, workload)

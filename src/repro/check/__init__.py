"""Protocol checker: bounded model checking and coherence fault injection.

The paper's claims are protocol *invariants* — a contended line is handed
requestor-to-requestor exactly once per acquire/release pair, in request
order, and timeouts guarantee liveness.  This package checks them
mechanically instead of sampling them:

* :mod:`repro.check.explore` drives small configurations (2-4
  processors, 1-2 lines) through systematically permuted event orderings
  by hooking the simulator's same-cycle tie-breaking — a DFS over
  tie-break choices with a state-hash visited set and step/depth/run
  budgets.
* :mod:`repro.check.oracles` holds the pluggable invariant checks: SWMR,
  data-value coherence, mutual exclusion, exactly-once hand-off, FIFO
  hand-off order under queue retention, and progress under the paper's
  timeout bound.
* :mod:`repro.check.faults` perturbs the interconnect — bounded extra
  message delay, address-phase jitter, dropped tear-off responses — to
  exercise the directory's NACK/retry and timeout-recovery paths on
  purpose.
* :mod:`repro.check.report` captures any violation as a replayable
  counterexample: the schedule seed plus (on demand) a Chrome trace via
  the telemetry backbone.

The ``repro check`` CLI subcommand fans the policy-ladder x fabric
matrix out in parallel (see :mod:`repro.check.runner`).
"""

from repro.check.explore import Budget, ExploreReport, RunSpec, explore, run_once
from repro.check.faults import FaultInjector, FaultPlan
from repro.check.oracles import Violation
from repro.check.report import Counterexample, replay
from repro.check.runner import CheckJob, run_matrix, smoke_jobs

__all__ = [
    "Budget",
    "CheckJob",
    "Counterexample",
    "ExploreReport",
    "FaultInjector",
    "FaultPlan",
    "RunSpec",
    "Violation",
    "explore",
    "replay",
    "run_matrix",
    "run_once",
    "smoke_jobs",
]

"""Protocol checker: bounded model checking and coherence fault injection.

The paper's claims are protocol *invariants* — a contended line is handed
requestor-to-requestor exactly once per acquire/release pair, in request
order, and timeouts guarantee liveness.  This package checks them
mechanically instead of sampling them:

* :mod:`repro.check.explore` drives small configurations (2-4
  processors, 1-2 lines) through systematically permuted event orderings
  by hooking the simulator's same-cycle tie-breaking — a DFS over
  tie-break choices with a state-hash visited set, step/depth/run
  budgets, and optional partial-order reduction (sleep sets / DPOR
  backtrack seeding) checked for equivalence against the exhaustive
  mode.
* :mod:`repro.check.scenarios` holds the workload shapes the checker
  explores — contended lock, shared counter, sense-reversing barrier,
  MCS queue hand-off — each with its own oracles and seeded mutations.
* :mod:`repro.check.oracles` holds the pluggable invariant checks: SWMR,
  data-value coherence, mutual exclusion, exactly-once hand-off, FIFO
  hand-off order under queue retention, and progress under the paper's
  timeout bound.
* :mod:`repro.check.faults` perturbs the interconnect — bounded extra
  message delay, address-phase jitter, dropped tear-off responses — to
  exercise the directory's NACK/retry and timeout-recovery paths on
  purpose.
* :mod:`repro.check.report` captures any violation as a replayable
  counterexample: the schedule seed plus (on demand) a Chrome trace via
  the telemetry backbone.

The ``repro check`` CLI subcommand fans the policy-ladder x fabric
matrix out in parallel (see :mod:`repro.check.runner`).
"""

from repro.check.explore import (
    REDUCTIONS,
    Budget,
    CandidateKey,
    ExploreReport,
    RunSpec,
    explore,
    independent,
    run_once,
)
from repro.check.faults import FaultInjector, FaultPlan
from repro.check.oracles import Violation
from repro.check.report import Counterexample, replay
from repro.check.runner import CheckJob, run_matrix, smoke_jobs
from repro.check.scenarios import (
    MUTATIONS,
    SCENARIOS,
    build_scenario,
    mutation_names,
    scenario_names,
)

__all__ = [
    "Budget",
    "CandidateKey",
    "CheckJob",
    "Counterexample",
    "ExploreReport",
    "FaultInjector",
    "FaultPlan",
    "MUTATIONS",
    "REDUCTIONS",
    "RunSpec",
    "SCENARIOS",
    "Violation",
    "build_scenario",
    "explore",
    "independent",
    "mutation_names",
    "replay",
    "run_matrix",
    "run_once",
    "scenario_names",
    "smoke_jobs",
]

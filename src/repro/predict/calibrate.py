"""Fit the prediction model's parameters from cached sweep artifacts.

Nothing in :mod:`repro.predict.model` is hard-coded to the simulator's
latency tables: the contended cost curves, the bus saturation knee
coefficient, and the application-model globals are all *fitted* here
from the committed benchmark artifacts (the same files CI's perf gate
watches).  The procedure, in dependency order:

1. **Cost curves** — every saturated microbenchmark cell (null-CS lock
   or contended-counter RMW) pins the contended per-operation cost at
   ``w = n - 1`` competitors.  Per ``(fabric, primitive, kind)`` group
   we fit ``C(w) = c0 + a*(w-1)**p`` by grid search over ``(c0, p)``
   with the growth coefficient ``a`` solved in closed form (ordinary
   least squares), minimizing squared *relative* error.  Groups with a
   single observation inherit their class's exponent prior and the
   fabric's derived base cost.  Bus cells beyond the saturation knee
   (``SystemConfig.bus_max_outstanding``) are excluded from the curve
   fit and instead determine the saturation coefficient.
2. **Uniprocessor globals** — the five Table 3 ``uni`` cells give a
   linear system for ``gamma`` (mean correction of the integer compute
   distribution) and ``uni_overhead`` (per-item bookkeeping cost).
3. **Application globals** — ``straggle`` and ``barrier_per_proc`` are
   chosen by grid search minimizing mean squared relative error over
   the 32-processor application cells, with the curves from step 1
   held fixed.

The result serializes to ``results/PREDICT_calibration.json`` so the
CLI and CI validate against a committed, reviewable parameter set.
"""

from __future__ import annotations

import json
import pathlib
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.harness.config import SystemConfig
from repro.harness.signature import KIND_APP, KIND_RMW
from repro.predict.benches import ObservedCell, load_observed_cells
from repro.predict.model import (
    CLASS_EXPONENT,
    CalibrationParams,
    CostCurve,
    Saturation,
    _derived_transfer,
    predict,
    primitive_class,
)

__all__ = ["fit", "fit_from_artifacts", "load_calibration", "save_calibration"]

CALIBRATION_PATH = "results/PREDICT_calibration.json"


def _fit_curve(
    points: Sequence[Tuple[float, float]],
    prior_p: float,
    default_c0: float,
) -> CostCurve:
    """Fit ``C(w) = c0 + a*(w-1)**p`` to ``(w, cost)`` observations."""
    points = sorted(points)
    y_min = min(y for _, y in points)
    distinct_w = len({w for w, _ in points})
    if distinct_w == 1:
        w, y = points[0]
        # Average duplicate observations at the same contention level.
        y = sum(v for _, v in points) / len(points)
        c0 = min(default_c0, 0.8 * y)
        growth = max(0.0, (y - c0)) / max(1.0, (w - 1.0)) ** prior_p
        return CostCurve(c0=c0, a=growth, p=prior_p)

    best: Optional[Tuple[float, CostCurve]] = None
    p_grid = [prior_p * (0.5 + 0.1 * i) for i in range(11)]  # 0.5x .. 1.5x
    c0_grid = [y_min * (0.05 + 0.05 * i) for i in range(19)]  # 5% .. 95%
    for p in p_grid:
        p = min(2.0, max(0.05, p))
        basis = [max(0.0, w - 1.0) ** p for w, _ in points]
        for c0 in c0_grid:
            num = sum(g * (y - c0) for g, (_, y) in zip(basis, points))
            den = sum(g * g for g in basis)
            a = max(0.0, num / den) if den > 0 else 0.0
            score = sum(
                ((c0 + a * g - y) / y) ** 2 for g, (_, y) in zip(basis, points)
            )
            if best is None or score < best[0]:
                best = (score, CostCurve(c0=c0, a=a, p=p))
    assert best is not None
    return best[1]


def _fit_curves(
    micro: Iterable[ObservedCell], knee: float
) -> Tuple[
    Dict[Tuple[str, str], CostCurve],
    Dict[Tuple[str, str], CostCurve],
    List[ObservedCell],
]:
    """Fit all cost curves; returns (lock, rmw, beyond-knee bus cells)."""
    groups: Dict[Tuple[str, str, str], List[Tuple[float, float]]] = defaultdict(
        list
    )
    saturated: List[ObservedCell] = []
    for cell in micro:
        sig = cell.signature
        if sig.fabric == "bus" and sig.n_processors > knee:
            saturated.append(cell)
            continue
        groups[(sig.fabric, sig.primitive, sig.kind)].append(
            (float(sig.n_processors - 1), cell.observed_per_op)
        )
    config = SystemConfig()
    lock_curves: Dict[Tuple[str, str], CostCurve] = {}
    rmw_curves: Dict[Tuple[str, str], CostCurve] = {}
    for (fabric, primitive, kind), points in groups.items():
        klass = primitive_class(primitive)
        prior = CLASS_EXPONENT.get((fabric, klass), 1.0)
        transfers = 1.0 if kind == KIND_RMW else 2.0
        default_c0 = transfers * _derived_transfer(fabric, config)
        curve = _fit_curve(points, prior, default_c0)
        if kind == KIND_RMW:
            rmw_curves[(fabric, primitive)] = curve
        else:
            lock_curves[(fabric, primitive)] = curve
    return lock_curves, rmw_curves, saturated


def _group_score(
    cells: Sequence[ObservedCell], params: CalibrationParams
) -> float:
    score = 0.0
    for cell in cells:
        predicted = predict(cell.signature, params).cycles
        rel = (predicted - cell.observed_cycles) / cell.observed_cycles
        score += rel * rel
    return score


def _refine_curves(
    micro: Sequence[ObservedCell], params: CalibrationParams
) -> None:
    """Rescale each fitted curve against the *forward* model.

    The direct fit treats an observed saturated per-op cost as the
    curve value at ``w = n - 1`` competitors; the MVA solver evaluates
    the curve at the equilibrium queue it derives, which lands nearby
    but not exactly there (and folds in the think time the direct fit
    ignores).  A per-group multiplicative correction, chosen by
    minimizing the forward prediction error, removes that systematic
    offset without disturbing the fitted shape.
    """
    groups: Dict[Tuple[str, str, str], List[ObservedCell]] = defaultdict(list)
    for cell in micro:
        sig = cell.signature
        groups[(sig.fabric, sig.primitive, sig.kind)].append(cell)
    for (fabric, primitive, kind), cells in groups.items():
        table = params.rmw_curves if kind == KIND_RMW else params.lock_curves
        base = table[(fabric, primitive)]
        best: Optional[Tuple[float, CostCurve]] = None
        for step in range(46):
            scale = 0.60 + 0.02 * step
            candidate = CostCurve(
                c0=base.c0 * scale, a=base.a * scale, p=base.p
            )
            table[(fabric, primitive)] = candidate
            score = _group_score(cells, params)
            if best is None or score < best[0]:
                best = (score, candidate)
        assert best is not None
        table[(fabric, primitive)] = best[1]


def _fit_saturation(
    saturated: Sequence[ObservedCell],
    params: CalibrationParams,
    knee: float,
    q: float = 2.0,
) -> Optional[Saturation]:
    """Match the saturation coefficient to the beyond-knee bus cells."""
    if not saturated:
        return None
    best: Optional[Tuple[float, Saturation]] = None
    for step in range(42):
        k = 0.0 if step == 0 else 10.0 ** (1.0 + 0.1 * (step - 1))
        candidate = Saturation(knee=knee, k=k, q=q)
        params.saturation["bus"] = candidate
        score = _group_score(saturated, params)
        if best is None or score < best[0]:
            best = (score, candidate)
    assert best is not None
    return best[1]


def _fit_uni_globals(
    uni: Sequence[ObservedCell], a_unc: float
) -> Tuple[float, float]:
    """Least-squares ``(gamma, uni_overhead)`` from uniprocessor cells.

    Each cell satisfies ``cycles = total_ops*(gamma*local + body +
    overhead) + phases*serial`` with ``body`` known, i.e. a line
    ``y = gamma*x + overhead`` through the per-op residuals.
    """
    xs, ys = [], []
    for cell in uni:
        sig = cell.signature
        body = sig.cs_compute + sig.cs_accesses + a_unc
        y = (
            cell.observed_cycles - sig.phases * sig.serial_compute
        ) / sig.total_ops - body
        xs.append(float(sig.local_compute))
        ys.append(y)
    if len(xs) < 2:
        return 1.0, 0.0
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    den = sum((x - mean_x) ** 2 for x in xs)
    if den == 0:
        return 1.0, max(0.0, mean_y)
    gamma = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / den
    overhead = mean_y - gamma * mean_x
    return gamma, overhead


#: the contention level the single-point 16-processor fig1 cells pin
#: each bus curve at (w = n - 1 competitors, basis (w - 1)**p)
_BUS_ANCHOR_W = 14.0


def _retarget_exponent(curve: CostCurve, p: float) -> CostCurve:
    """Change a curve's exponent while preserving its anchor-point cost.

    Scales the growth coefficient so ``C`` at the 16-processor anchor
    contention is unchanged — the measured point stays exact while the
    extrapolation slope moves.
    """
    scale = _BUS_ANCHOR_W ** (curve.p - p)
    return CostCurve(c0=curve.c0, a=curve.a * scale, p=p)


def _fit_app_globals(
    apps: Sequence[ObservedCell], params: CalibrationParams
) -> Tuple[float, float, float]:
    """Fit the application globals over the parallel app cells.

    Jointly searched: ``straggle``, ``barrier_per_proc``, the bus-storm
    coupling strength (how much of the system-wide queue a TTS storm
    pays for — only multi-lock applications distinguish per-lock from
    system-wide contention, so it cannot come from the single-lock
    microbenchmarks) and the bus storm-class extrapolation exponent
    (the 16-processor fig1 cells pin the storm curves at one contention
    level only; the 32-processor app cells are the sole bus evidence
    beyond it).
    """
    if not apps:
        return params.straggle, params.barrier_per_proc, params.storm_couple
    storm_keys = [
        key
        for key in params.lock_curves
        if key[0] == "bus" and primitive_class(key[1]) == "storm"
    ]
    base_curves = {key: params.lock_curves[key] for key in storm_keys}
    best = None
    for p_step in range(7):
        p_storm = 0.7 + 0.1 * p_step
        for key, curve in base_curves.items():
            params.lock_curves[key] = _retarget_exponent(curve, p_storm)
        for couple_step in range(0, 11):
            couple = 0.1 * couple_step
            for straggle_step in range(0, 11):
                straggle = 0.2 * straggle_step
                for barrier in (0.0, 4.0, 8.0, 16.0, 32.0):
                    params.storm_couple = couple
                    params.straggle = straggle
                    params.barrier_per_proc = barrier
                    score = _group_score(apps, params)
                    if best is None or score < best[0]:
                        best = (score, straggle, barrier, couple, p_storm)
    assert best is not None
    _, straggle, barrier, couple, p_storm = best
    for key, curve in base_curves.items():
        params.lock_curves[key] = _retarget_exponent(curve, p_storm)
    params.storm_couple = couple
    # Fine pass on the additive phase terms with the shape fixed.
    for straggle_step in range(0, 41):
        fine_straggle = 0.05 * straggle_step
        for fine_barrier in (0.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0):
            params.straggle = fine_straggle
            params.barrier_per_proc = fine_barrier
            score = _group_score(apps, params)
            if score < best[0]:
                best = (score, fine_straggle, fine_barrier, couple, p_storm)
    return best[1], best[2], best[3]


def fit(
    cells: Sequence[ObservedCell],
    fitted_from: Tuple[str, ...] = (),
) -> CalibrationParams:
    """Fit a full parameter set from observed cells (see module doc)."""
    config = SystemConfig()
    knee = float(config.bus_max_outstanding)
    micro = [c for c in cells if c.signature.kind != KIND_APP]
    apps = [
        c
        for c in cells
        if c.signature.kind == KIND_APP and c.signature.n_processors > 1
    ]
    uni = [
        c
        for c in cells
        if c.signature.kind == KIND_APP and c.signature.n_processors == 1
    ]

    params = CalibrationParams(
        transfer={
            fabric: _derived_transfer(fabric, config)
            for fabric in ("bus", "directory")
        },
        fitted_from=fitted_from,
    )
    params.gamma, params.uni_overhead = _fit_uni_globals(uni, params.a_unc)
    lock_curves, rmw_curves, saturated = _fit_curves(micro, knee)
    params.lock_curves = lock_curves
    params.rmw_curves = rmw_curves
    within_knee = [
        c
        for c in micro
        if not (
            c.signature.fabric == "bus" and c.signature.n_processors > knee
        )
    ]
    _refine_curves(within_knee, params)
    sat = _fit_saturation(saturated, params, knee)
    if sat is not None:
        params.saturation["bus"] = sat
    params.straggle, params.barrier_per_proc, params.storm_couple = (
        _fit_app_globals(apps, params)
    )
    return params


def fit_from_artifacts(root: pathlib.Path) -> CalibrationParams:
    """Fit from the committed artifacts under repository *root*."""
    cells = load_observed_cells(root)
    if not cells:
        raise FileNotFoundError(
            f"no benchmark artifacts found under {root}/results"
        )
    names = tuple(sorted({c.artifact for c in cells}))
    return fit(cells, fitted_from=names)


def save_calibration(
    params: CalibrationParams, path: pathlib.Path
) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(params.to_dict(), indent=2, sort_keys=True) + "\n"
    )


def load_calibration(path: pathlib.Path) -> CalibrationParams:
    return CalibrationParams.from_dict(json.loads(path.read_text()))

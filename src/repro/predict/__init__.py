"""Analytical throughput prediction — the simulator-free "what if" layer.

Answers "what would lock throughput be with 128 processors on the
directory fabric under IQOLB?" in microseconds of arithmetic instead of
minutes of simulation, using closed-form queueing models calibrated
against the committed benchmark artifacts.  See ``docs/prediction.md``
for the derivation, the calibration procedure, and the validated error
bounds — and for when to stop trusting the model and simulate.
"""

from repro.predict.benches import ObservedCell, load_observed_cells
from repro.predict.calibrate import (
    fit,
    fit_from_artifacts,
    load_calibration,
    save_calibration,
)
from repro.predict.model import (
    CalibrationParams,
    CostCurve,
    Prediction,
    default_params,
    predict,
    predict_speedups,
)
from repro.predict.validate import (
    ValidationReport,
    check_gates,
    validate_artifacts,
    validate_cells,
    write_report,
)

__all__ = [
    "CalibrationParams",
    "CostCurve",
    "ObservedCell",
    "Prediction",
    "ValidationReport",
    "check_gates",
    "default_params",
    "fit",
    "fit_from_artifacts",
    "load_calibration",
    "load_observed_cells",
    "predict",
    "predict_speedups",
    "save_calibration",
    "validate_artifacts",
    "validate_cells",
    "write_report",
]

"""Prediction-vs-simulation validation over the cached sweep artifacts.

Replays every committed benchmark cell through the analytical model and
reports per-cell relative error plus whether the model preserves the
paper's taxonomy ordering (``tts`` slowest, ``delayed`` in between,
``iqolb`` fastest) wherever all three primitives were simulated under
identical conditions.  The report serializes to
``results/BENCH_predict_error.summary.json`` (schema
``repro-predict-error/1``) — a committed, CI-gated correctness artifact
alongside the perf baseline.

Ordering groups are restricted to lock-shaped cells: on the contended
RMW microbenchmark a deferred primitive and a queued one converge to
the same single-owner update cost (the simulator reports them within a
cycle of each other), so a strict ``delayed > iqolb`` comparison there
would test tie-breaking noise, not the taxonomy.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import __version__
from repro.harness.signature import KIND_RMW
from repro.predict.benches import ObservedCell, load_observed_cells
from repro.predict.calibrate import fit
from repro.predict.model import CalibrationParams, predict

__all__ = [
    "ValidationCell",
    "OrderingGroup",
    "ValidationReport",
    "validate_artifacts",
    "check_gates",
]

SCHEMA = "repro-predict-error/1"

#: the paper's taxonomy, slowest to fastest under contention
TAXONOMY_ORDER = ("tts", "delayed", "iqolb")


@dataclasses.dataclass(frozen=True)
class ValidationCell:
    """One simulated cell versus its analytical prediction."""

    artifact: str
    key: Tuple[Any, ...]
    kind: str
    workload: str
    primitive: str
    fabric: str
    n_processors: int
    observed_cycles: float
    predicted_cycles: float
    regime: str

    @property
    def rel_error(self) -> float:
        return (
            self.predicted_cycles - self.observed_cycles
        ) / self.observed_cycles

    def to_dict(self) -> Dict[str, Any]:
        return {
            "artifact": self.artifact,
            "key": list(self.key),
            "kind": self.kind,
            "workload": self.workload,
            "primitive": self.primitive,
            "fabric": self.fabric,
            "n_processors": self.n_processors,
            "observed_cycles": self.observed_cycles,
            "predicted_cycles": round(self.predicted_cycles, 2),
            "rel_error": round(self.rel_error, 4),
            "regime": self.regime,
        }


@dataclasses.dataclass(frozen=True)
class OrderingGroup:
    """One (artifact, condition) where all taxonomy primitives ran."""

    artifact: str
    group: Tuple[Any, ...]
    observed_ordered: bool
    predicted_ordered: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "artifact": self.artifact,
            "group": list(self.group),
            "observed_ordered": self.observed_ordered,
            "predicted_ordered": self.predicted_ordered,
        }


@dataclasses.dataclass
class ValidationReport:
    cells: List[ValidationCell]
    ordering: List[OrderingGroup]
    fitted_from: Tuple[str, ...] = ()

    @property
    def mean_abs_rel_error(self) -> float:
        if not self.cells:
            return 0.0
        return sum(abs(c.rel_error) for c in self.cells) / len(self.cells)

    @property
    def max_abs_rel_error(self) -> float:
        return max((abs(c.rel_error) for c in self.cells), default=0.0)

    @property
    def ordering_agreement(self) -> float:
        if not self.ordering:
            return 1.0
        agree = sum(1 for g in self.ordering if g.predicted_ordered)
        return agree / len(self.ordering)

    def worst(self, count: int = 5) -> List[ValidationCell]:
        ranked = sorted(self.cells, key=lambda c: -abs(c.rel_error))
        return ranked[:count]

    def payload(self) -> Dict[str, Any]:
        """The ``repro-predict-error/1`` artifact document."""
        return {
            "schema": SCHEMA,
            "version": __version__,
            "fitted_from": list(self.fitted_from),
            "cells": [c.to_dict() for c in sorted(
                self.cells, key=lambda c: (c.artifact, tuple(map(str, c.key)))
            )],
            "ordering": [g.to_dict() for g in sorted(
                self.ordering,
                key=lambda g: (g.artifact, tuple(map(str, g.group))),
            )],
            "summary": {
                "n_cells": len(self.cells),
                "mean_abs_rel_error": round(self.mean_abs_rel_error, 4),
                "max_abs_rel_error": round(self.max_abs_rel_error, 4),
                "n_ordering_groups": len(self.ordering),
                "ordering_agreement": round(self.ordering_agreement, 4),
            },
        }


def _ordering_groups(
    observed: Dict[Tuple[Any, ...], ObservedCell],
    predicted: Dict[Tuple[Any, ...], float],
) -> List[OrderingGroup]:
    """Group lock-shaped cells that differ only in primitive."""
    groups: Dict[
        Tuple[str, Tuple[Any, ...]], Dict[str, Tuple[float, float]]
    ] = defaultdict(dict)
    for full_key, cell in observed.items():
        sig = cell.signature
        if sig.kind == KIND_RMW or sig.primitive not in TAXONOMY_ORDER:
            continue
        condition = tuple(
            part for part in cell.key if part != sig.primitive
        )
        groups[(cell.artifact, condition)][sig.primitive] = (
            cell.observed_cycles,
            predicted[full_key],
        )
    out = []
    for (artifact, condition), members in groups.items():
        if any(prim not in members for prim in TAXONOMY_ORDER):
            continue
        obs = [members[p][0] for p in TAXONOMY_ORDER]
        pred = [members[p][1] for p in TAXONOMY_ORDER]
        out.append(
            OrderingGroup(
                artifact=artifact,
                group=condition,
                observed_ordered=obs[0] > obs[1] > obs[2],
                predicted_ordered=pred[0] > pred[1] > pred[2],
            )
        )
    return out


def validate_cells(
    cells: Sequence[ObservedCell],
    params: Optional[CalibrationParams] = None,
    fitted_from: Tuple[str, ...] = (),
) -> ValidationReport:
    """Predict every observed cell and assemble the error report.

    With ``params=None`` the model is calibrated from the *same* cells
    first — the standard self-consistency check the CI gate runs.
    """
    if params is None:
        fitted_from = tuple(sorted({c.artifact for c in cells}))
        params = fit(cells, fitted_from=fitted_from)
    observed = {(c.artifact,) + c.key: c for c in cells}
    predicted = {
        key: predict(cell.signature, params)
        for key, cell in observed.items()
    }
    report_cells = [
        ValidationCell(
            artifact=cell.artifact,
            key=cell.key,
            kind=cell.signature.kind,
            workload=cell.signature.workload,
            primitive=cell.signature.primitive,
            fabric=cell.signature.fabric,
            n_processors=cell.signature.n_processors,
            observed_cycles=cell.observed_cycles,
            predicted_cycles=predicted[key].cycles,
            regime=predicted[key].regime,
        )
        for key, cell in observed.items()
    ]
    ordering = _ordering_groups(
        observed, {key: p.cycles for key, p in predicted.items()}
    )
    return ValidationReport(
        cells=report_cells, ordering=ordering, fitted_from=fitted_from
    )


def validate_artifacts(
    root: pathlib.Path, params: Optional[CalibrationParams] = None
) -> ValidationReport:
    """Validate against every committed artifact under *root*."""
    cells = load_observed_cells(root)
    if not cells:
        raise FileNotFoundError(
            f"no benchmark artifacts found under {root}/results"
        )
    return validate_cells(cells, params=params)


def check_gates(
    report: ValidationReport,
    max_mean_error: float = 0.25,
    min_agreement: float = 0.90,
) -> List[str]:
    """The CI acceptance gates; returns human-readable failures."""
    problems = []
    if not report.cells:
        problems.append("no cells validated")
    if report.mean_abs_rel_error > max_mean_error:
        problems.append(
            f"mean |rel error| {report.mean_abs_rel_error:.1%} exceeds "
            f"{max_mean_error:.0%}"
        )
    if report.ordering_agreement < min_agreement:
        problems.append(
            f"taxonomy ordering agreement {report.ordering_agreement:.1%} "
            f"below {min_agreement:.0%}"
        )
    return problems


def write_report(report: ValidationReport, path: pathlib.Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(report.payload(), indent=2, sort_keys=True) + "\n"
    )

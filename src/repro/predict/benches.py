"""Signatures for the committed benchmark artifacts.

The cached sweep artifacts under ``results/`` record each cell's
*outcome* (cycles, bus transactions, counters) plus enough identity to
key it (workload name, primitive, processor count) — but not the
workload constructor parameters the cell ran with.  Those constants
live in the bench scripts (``benchmarks/bench_*.py``).  This module is
the bridge: for each artifact it knows the bench's constants, rebuilds
the workload object, and extracts its
:class:`~repro.harness.signature.WorkloadSignature` through the same
``from_workload`` path the runner uses — so a predicted cell and a
simulated cell are described by literally the same code.

The constants here mirror the bench scripts; ``tests/test_predict_validate``
cross-checks them against the artifacts' recorded identities.
"""

from __future__ import annotations

import dataclasses
import gzip
import json
import pathlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.harness.config import SystemConfig
from repro.harness.signature import WorkloadSignature

__all__ = ["ObservedCell", "ARTIFACTS", "load_observed_cells"]

# Bench constants, mirroring benchmarks/bench_directory_scaling.py and
# benchmarks/bench_fig1_taxonomy.py.
DIR_SCALING_ACQUIRES = 6
DIR_SCALING_THINK = 60
FIG1_LOCK_ACQUIRES = 20
FIG1_LOCK_THINK = 80
FIG1_RMW_INCREMENTS = 30
FIG1_RMW_THINK = 40


@dataclasses.dataclass(frozen=True)
class ObservedCell:
    """One simulated cell paired with its model-facing signature."""

    artifact: str
    key: Tuple[Any, ...]
    signature: WorkloadSignature
    observed_cycles: float

    @property
    def observed_per_op(self) -> float:
        return self.observed_cycles / max(1, self.signature.total_ops)


def _signature_of(workload: Any, fabric: str, n: int, primitive: str):
    config = SystemConfig().with_(n_processors=n, interconnect=fabric)
    return WorkloadSignature.from_workload(workload, config, primitive)


def _dir_scaling_signature(cell: Dict[str, Any]) -> Optional[WorkloadSignature]:
    from repro.workloads.micro import NullCriticalSection

    fabric, primitive, n = cell["key"]
    workload = NullCriticalSection(
        lock_kind="tts",
        acquires_per_proc=DIR_SCALING_ACQUIRES,
        think_cycles=DIR_SCALING_THINK,
    )
    return _signature_of(workload, fabric, int(n), primitive)


def _fig1_signature(cell: Dict[str, Any]) -> Optional[WorkloadSignature]:
    from repro.workloads.micro import ContendedCounter, NullCriticalSection

    primitive, shape = cell["key"]
    n = int(cell["n_processors"])
    if shape == "lock":
        workload: Any = NullCriticalSection(
            lock_kind="tts",
            acquires_per_proc=FIG1_LOCK_ACQUIRES,
            think_cycles=FIG1_LOCK_THINK,
        )
    else:
        workload = ContendedCounter(
            increments_per_proc=FIG1_RMW_INCREMENTS,
            think_cycles=FIG1_RMW_THINK,
        )
    return _signature_of(workload, "bus", n, primitive)


def _table3_signature(cell: Dict[str, Any]) -> Optional[WorkloadSignature]:
    from repro.workloads.splash import APP_MODELS

    app, label = cell["key"]
    model = APP_MODELS[app]
    primitive = cell.get("primitive") or ("tts" if label == "uni" else label)
    return WorkloadSignature.from_app_model(
        model,
        primitive=primitive,
        fabric="bus",
        n_processors=int(cell["n_processors"]),
    )


@dataclasses.dataclass(frozen=True)
class ArtifactSpec:
    path: str
    build_signature: Callable[[Dict[str, Any]], Optional[WorkloadSignature]]


#: artifact name -> (committed path, cell-signature builder)
ARTIFACTS: Dict[str, ArtifactSpec] = {
    "directory_scaling": ArtifactSpec(
        "results/BENCH_directory_scaling.summary.json", _dir_scaling_signature
    ),
    "fig1_taxonomy": ArtifactSpec(
        "results/BENCH_fig1_taxonomy.json", _fig1_signature
    ),
    "table3": ArtifactSpec("results/BENCH_table3.json", _table3_signature),
}


def _read_json(path: pathlib.Path) -> Dict[str, Any]:
    if path.suffix == ".gz":
        return json.loads(gzip.decompress(path.read_bytes()).decode("utf-8"))
    return json.loads(path.read_text())


def load_observed_cells(
    root: pathlib.Path,
    artifacts: Optional[Dict[str, ArtifactSpec]] = None,
) -> List[ObservedCell]:
    """Load every cell of every committed artifact under *root*.

    Skips artifacts whose file is absent (e.g. a fresh checkout that has
    not regenerated optional sweeps) and cells whose workload the model
    has no signature for.
    """
    if artifacts is None:
        artifacts = ARTIFACTS
    cells: List[ObservedCell] = []
    for name, spec in artifacts.items():
        path = root / spec.path
        if not path.exists():
            continue
        payload = _read_json(path)
        for cell in payload.get("cells", []):
            signature = spec.build_signature(cell)
            if signature is None:
                continue
            cells.append(
                ObservedCell(
                    artifact=name,
                    key=tuple(cell["key"]),
                    signature=signature,
                    observed_cycles=float(cell["cycles"]),
                )
            )
    return cells

"""Closed-form throughput models for the synchronization taxonomy.

Following *Performance Prediction for Coarse-Grained Locking* (Aksenov,
Alistarh, Kuznetsov), a contended lock is a single-server queueing
station inside a closed system: each of ``n`` processors cycles through
*local compute* (thinking) and a *critical-section visit* (queueing +
service).  Throughput is then determined by two bounds —

* **compute-bound**: ``X = n / I`` where ``I`` is the per-item cycle
  time outside the lock, and
* **lock-bound**: ``X = 1 / (f0 * S(w))`` where ``f0`` is the fraction
  of items that visit the bottleneck lock and ``S(w)`` is the contended
  per-acquire service time with ``w`` processors competing —

with the twist that for delay-insertion protocols ``S`` depends
*strongly* on ``w``:

===========  ===============================================================
class        per-acquire overhead term
===========  ===============================================================
storm        TTS invalidation storm: every waiter's re-read and re-arm
             occupies the fabric, cost grows superlinearly in waiters
             (measured exponent ~1.3)
deferred     delayed TTS: the deferral window bounds the storm; a queue
             forms implicitly, residual growth is sublinear (~0.8)
queued       IQOLB/QOLB: one line transfer per hand-off; flat on the bus,
             mesh-distance growth on the directory (~0.85)
swqueue      MCS/ticket/CLH/Anderson: software queue hand-off, queued-like
===========  ===============================================================

Each ``(fabric, primitive, kind)`` combination carries a fitted
:class:`CostCurve` ``C(w) = c0 + a * (w - 1)**p`` — the *contended
per-operation cost* with ``w`` competitors (``C(1)`` is the uncontended
acquire+transfer cost).  The curves are calibrated from the committed
sweep artifacts by :mod:`repro.predict.calibrate`; analytically derived
defaults from :class:`~repro.harness.config.SystemConfig` latencies
cover combinations with no cached measurements.

The bus additionally carries a *saturation* term: the broadcast medium
admits at most ``bus_max_outstanding`` concurrent requestors, and past
that knee latency cliffs (the paper's 128-processor wall).  The
directory has no shared medium and no knee.

Everything here is arithmetic on a
:class:`~repro.harness.signature.WorkloadSignature` — no simulation, no
event queue; a full 5-primitive x 2-fabric x 128-machine-size grid
evaluates in milliseconds.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, Optional, Tuple

from repro.core.registry import PRIMITIVE_SPECS
from repro.harness.config import SystemConfig
from repro.harness.signature import KIND_APP, KIND_RMW, WorkloadSignature

__all__ = [
    "CostCurve",
    "CalibrationParams",
    "Prediction",
    "PRIMITIVE_CLASS",
    "default_params",
    "predict",
    "predict_speedups",
]

#: primitive -> model class (see module docstring table), derived from
#: the central registry so every registered primitive gets a curve
PRIMITIVE_CLASS: Dict[str, str] = {
    name: spec.taxonomy for name, spec in PRIMITIVE_SPECS.items()
}

#: class -> default contention-growth exponent per fabric
CLASS_EXPONENT: Dict[Tuple[str, str], float] = {
    ("bus", "storm"): 1.30,
    ("bus", "deferred"): 0.80,
    ("bus", "queued"): 0.15,
    ("bus", "swqueue"): 0.30,
    ("directory", "storm"): 1.35,
    ("directory", "deferred"): 0.80,
    ("directory", "queued"): 0.85,
    ("directory", "swqueue"): 0.85,
}

#: class -> growth-coefficient multiplier relative to the fabric transfer
#: cost, used only when no calibrated curve exists for a combination
CLASS_GROWTH: Dict[str, float] = {
    "storm": 0.55,
    "deferred": 0.45,
    "queued": 0.08,
    "swqueue": 0.12,
}


def primitive_class(primitive: str) -> str:
    return PRIMITIVE_CLASS.get(primitive, "storm")


@dataclasses.dataclass(frozen=True)
class CostCurve:
    """Contended per-operation cost ``C(w) = c0 + a * (w - 1)**p``.

    ``w`` is the number of processors competing for the line (holders +
    waiters); ``C(1)`` is the uncontended cost of one acquire-transfer-
    release round trip including the critical-section body it was fitted
    with (the null critical section for lock curves).
    """

    c0: float
    a: float
    p: float

    def cost(self, waiters: float) -> float:
        return self.c0 + self.a * max(0.0, waiters - 1.0) ** self.p

    def to_dict(self) -> Dict[str, float]:
        return {"c0": self.c0, "a": self.a, "p": self.p}

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "CostCurve":
        return cls(c0=float(data["c0"]), a=float(data["a"]), p=float(data["p"]))


@dataclasses.dataclass(frozen=True)
class Saturation:
    """Shared-medium saturation: multiplier ``1 + k*max(0, n/knee - 1)**q``."""

    knee: float
    k: float
    q: float = 2.0

    def multiplier(self, n: int) -> float:
        if self.k <= 0 or n <= self.knee:
            return 1.0
        return 1.0 + self.k * (n / self.knee - 1.0) ** self.q

    def to_dict(self) -> Dict[str, float]:
        return {"knee": self.knee, "k": self.k, "q": self.q}

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "Saturation":
        return cls(
            knee=float(data["knee"]), k=float(data["k"]), q=float(data["q"])
        )


@dataclasses.dataclass
class CalibrationParams:
    """Everything :func:`predict` needs, fitted or derived.

    ``lock_curves``/``rmw_curves`` map ``(fabric, primitive)`` to fitted
    :class:`CostCurve` objects; missing combinations fall back to
    analytically derived defaults (``derived_curve``).  The scalar
    globals calibrate the application model: ``gamma`` corrects the mean
    of the integer-truncated exponential compute distribution, ``a_unc``
    is the uncontended lock acquire+release cost, ``straggle`` scales
    the barrier-straggler term and ``barrier_per_proc`` the per-phase
    barrier episode cost.
    """

    lock_curves: Dict[Tuple[str, str], CostCurve] = dataclasses.field(
        default_factory=dict
    )
    rmw_curves: Dict[Tuple[str, str], CostCurve] = dataclasses.field(
        default_factory=dict
    )
    saturation: Dict[str, Saturation] = dataclasses.field(default_factory=dict)
    gamma: float = 1.0
    a_unc: float = 10.0
    uni_overhead: float = 0.0
    straggle: float = 0.8
    barrier_per_proc: float = 12.0
    #: how much of the *system-wide* queue a bus invalidation storm
    #: pays for (0 = own lock only, 1 = every waiter in the machine)
    storm_couple: float = 0.5
    #: fabric -> uncalibrated base transfer cost (cycles per line move)
    transfer: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: provenance: which artifacts the fit consumed (informational)
    fitted_from: Tuple[str, ...] = ()

    # -- lookup ---------------------------------------------------------

    def curve_for(self, sig: WorkloadSignature) -> CostCurve:
        table = self.rmw_curves if sig.kind == KIND_RMW else self.lock_curves
        curve = table.get((sig.fabric, sig.primitive))
        if curve is not None:
            return curve
        return derived_curve(sig.fabric, sig.primitive, sig.kind, self)

    def saturation_for(self, fabric: str) -> Optional[Saturation]:
        return self.saturation.get(fabric)

    def transfer_for(self, fabric: str) -> float:
        if fabric in self.transfer:
            return self.transfer[fabric]
        return _derived_transfer(fabric, SystemConfig())

    # -- (de)serialization ---------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        def curves(table: Dict[Tuple[str, str], CostCurve]) -> Dict[str, Any]:
            return {
                f"{fabric}/{prim}": curve.to_dict()
                for (fabric, prim), curve in sorted(table.items())
            }

        return {
            "schema": "repro-predict-calibration/1",
            "lock_curves": curves(self.lock_curves),
            "rmw_curves": curves(self.rmw_curves),
            "saturation": {
                fabric: sat.to_dict()
                for fabric, sat in sorted(self.saturation.items())
            },
            "gamma": self.gamma,
            "a_unc": self.a_unc,
            "uni_overhead": self.uni_overhead,
            "straggle": self.straggle,
            "barrier_per_proc": self.barrier_per_proc,
            "storm_couple": self.storm_couple,
            "transfer": dict(self.transfer),
            "fitted_from": list(self.fitted_from),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CalibrationParams":
        def curves(table: Dict[str, Any]) -> Dict[Tuple[str, str], CostCurve]:
            out = {}
            for key, value in table.items():
                fabric, prim = key.split("/", 1)
                out[(fabric, prim)] = CostCurve.from_dict(value)
            return out

        return cls(
            lock_curves=curves(data.get("lock_curves", {})),
            rmw_curves=curves(data.get("rmw_curves", {})),
            saturation={
                fabric: Saturation.from_dict(value)
                for fabric, value in data.get("saturation", {}).items()
            },
            gamma=float(data.get("gamma", 1.0)),
            a_unc=float(data.get("a_unc", 10.0)),
            uni_overhead=float(data.get("uni_overhead", 0.0)),
            straggle=float(data.get("straggle", 0.8)),
            barrier_per_proc=float(data.get("barrier_per_proc", 12.0)),
            storm_couple=float(data.get("storm_couple", 0.5)),
            transfer={
                k: float(v) for k, v in data.get("transfer", {}).items()
            },
            fitted_from=tuple(data.get("fitted_from", ())),
        )


def _derived_transfer(fabric: str, config: SystemConfig) -> float:
    """Uncalibrated cost of moving one line between caches (Table 1)."""
    if fabric == "bus":
        # one address-bus arbitration + one crossbar line transfer
        return float(config.bus_addr_latency + config.xbar_line_cycles)
    # directory: requester -> home -> owner -> requester (3-hop forward)
    # across an average mesh distance, plus the home lookup
    hops = 3.0 * 2.0  # three messages, ~2 links each on a small mesh
    return float(
        config.dir_lookup_cycles
        + hops * config.net_hop_cycles
        + config.net_line_ser_cycles
    )


def derived_curve(
    fabric: str,
    primitive: str,
    kind: str,
    params: Optional["CalibrationParams"] = None,
) -> CostCurve:
    """An analytically derived cost curve for an uncalibrated combination.

    Base cost: two line transfers per contended acquire (lock line to the
    requester, protected data line after it) for lock shapes; one for
    plain RMW.  Growth: the class multiplier times the fabric transfer
    cost per additional competitor, raised to the class exponent.
    """
    config = SystemConfig()
    transfer = (
        params.transfer_for(fabric)
        if params is not None
        else _derived_transfer(fabric, config)
    )
    klass = primitive_class(primitive)
    transfers = 1.0 if kind == KIND_RMW else 2.0
    if kind == KIND_RMW and klass in ("deferred", "queued", "swqueue"):
        # deferral collapses a contended RMW to a single owned update
        return CostCurve(c0=transfer, a=0.0, p=1.0)
    exponent = CLASS_EXPONENT.get((fabric, klass), 1.0)
    growth = CLASS_GROWTH[klass] * transfer
    return CostCurve(c0=transfers * transfer, a=growth, p=exponent)


def default_params() -> CalibrationParams:
    """Purely derived parameters (no fitted curves) — the fallback when
    no calibration artifact is available."""
    config = SystemConfig()
    return CalibrationParams(
        saturation={
            "bus": Saturation(
                knee=float(config.bus_max_outstanding), k=2500.0, q=2.0
            )
        },
        transfer={
            fabric: _derived_transfer(fabric, config)
            for fabric in ("bus", "directory")
        },
    )


# ---------------------------------------------------------------------------
# The prediction itself
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Prediction:
    """What the model says about one workload signature."""

    signature: WorkloadSignature
    #: lock acquisitions (or atomic updates) completed per kilocycle
    throughput: float
    #: predicted cycles for the signature's ``total_ops``
    cycles: float
    #: contended per-operation cost at equilibrium (service + hand-off)
    per_op_cycles: float
    #: hand-off latency: per-op cost minus the critical-section body
    handoff_cycles: float
    #: equilibrium number of processors competing at the bottleneck lock
    effective_waiters: float
    #: "compute-bound" | "lock-bound"
    regime: str
    #: additive term breakdown (cycles), for tables and debugging
    terms: Dict[str, float] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["signature"] = self.signature.to_dict()
        return data


def _cs_body(sig: WorkloadSignature, params: CalibrationParams) -> float:
    """Uncontended critical-section service: body accesses + compute."""
    return float(sig.cs_compute + sig.cs_accesses + params.a_unc)


def _lock_delta(sig: WorkloadSignature) -> float:
    """Per-op cost delta of this CS body versus the null-CS the lock
    curves were fitted on (one read + one write of a bouncing line)."""
    if sig.kind == KIND_RMW:
        return 0.0
    return float(sig.cs_compute + max(0, sig.cs_accesses - 2))


@dataclasses.dataclass
class _Equilibrium:
    """Steady state of the closed queueing network (see :func:`_mva`)."""

    x_items: float      # completed items per cycle, system-wide
    q_hot: float        # mean customers at the bottleneck lock
    s_hot: float        # per-acquire service there at equilibrium
    utilization: float  # bottleneck utilization (X * f0 * s_hot)


def _mva(
    n: int,
    think: float,
    f0: float,
    n_locks: int,
    cost: Any,
    couple: float,
) -> _Equilibrium:
    """Approximate Mean Value Analysis with state-dependent service.

    The closed network has one delay station (local compute, ``think``
    cycles, no queueing) and the locks: the *hot* lock visited by a
    fraction ``f0`` of items, and the remaining ``n_locks - 1`` locks
    sharing the rest of the traffic.  Customers are added one at a time;
    by the arrival theorem a new arrival at a queueing station sees the
    station's mean queue from the ``m - 1`` population, so its response
    time is ``S * (1 + Q)``.

    The twist over textbook MVA is that the per-acquire service ``S``
    itself depends on the queue: ``cost(w)`` is the fitted contended
    hand-off cost with ``w`` processors competing.  For storm-class
    primitives on the bus, ``couple`` of the queue at *other* locks is
    added to ``w`` — an invalidation storm occupies the one shared
    broadcast medium, so waiters at unrelated locks still pay part of
    its cost.  Queued and deferred primitives, and everything on the
    directory, see only their own lock's queue (``couple = 0``).
    """
    think = max(1.0, think)
    rest_locks = max(0, n_locks - 1)
    f_rest = max(0.0, 1.0 - f0) if rest_locks else 0.0
    q_hot = 0.0
    q_rest = 0.0
    x = 1.0 / think
    s_hot = cost(1.0)
    for m in range(1, n + 1):
        w_hot = q_hot + 1.0 + couple * q_rest
        s_hot = cost(w_hot)
        r_hot = s_hot * (1.0 + q_hot)
        if f_rest > 0:
            per_lock = q_rest / rest_locks
            r_rest = cost(per_lock + 1.0) * (1.0 + per_lock)
        else:
            r_rest = 0.0
        r_cycle = think + f0 * r_hot + f_rest * r_rest
        x = m / r_cycle
        q_hot = x * f0 * r_hot
        q_rest = x * f_rest * r_rest
    return _Equilibrium(
        x_items=x,
        q_hot=q_hot,
        s_hot=s_hot,
        utilization=min(1.0, x * f0 * s_hot),
    )


def _storm_coupled(sig: WorkloadSignature) -> bool:
    """Does this cell's hand-off cost scale with system-wide waiters?"""
    return sig.fabric == "bus" and primitive_class(sig.primitive) == "storm"


def predict(
    sig: WorkloadSignature, params: Optional[CalibrationParams] = None
) -> Prediction:
    """Predicted throughput/latency for one workload signature.

    Pure arithmetic — never invokes the simulator.
    """
    if params is None:
        params = default_params()
    n = sig.n_processors
    curve = params.curve_for(sig)
    sat = params.saturation_for(sig.fabric)
    sat_mult = sat.multiplier(n) if sat is not None else 1.0
    delta = _lock_delta(sig)
    body = _cs_body(sig, params)
    think = params.gamma * sig.local_compute + body + params.uni_overhead

    def contended_cost(w: float) -> float:
        return curve.cost(w) * sat_mult + delta

    if n <= 1:
        # Uncontended: every primitive converges to the same rate — the
        # critical section is private, the hand-off machinery idle.
        per_op = max(1.0, think)
        cycles = sig.total_ops * per_op + sig.phases * sig.serial_compute
        return Prediction(
            signature=sig,
            throughput=1000.0 / per_op,
            cycles=cycles,
            per_op_cycles=per_op,
            handoff_cycles=0.0,
            effective_waiters=0.0,
            regime="compute-bound",
            terms={"think": think, "serial": float(sig.serial_compute)},
        )

    f0 = max(sig.hot_lock_fraction, 1.0 / max(1, sig.n_locks))
    couple = params.storm_couple if _storm_coupled(sig) else 0.0
    eq = _mva(n, think, f0, sig.n_locks, contended_cost, couple)
    x_items = eq.x_items
    regime = "lock-bound" if eq.utilization >= 0.9 else "compute-bound"

    per_op = 1.0 / x_items
    ops_phase = sig.total_ops / sig.phases
    parallel = ops_phase / x_items
    terms: Dict[str, float] = {
        "parallel": parallel,
        "serial": float(sig.serial_compute),
    }

    if sig.kind == KIND_APP:
        # Barrier phases wait for the slowest processor: add the
        # expected-maximum excess of n iid sums of k exponential compute
        # draws (Gumbel tail), overlapped against the serial fraction.
        k = max(1.0, ops_phase / n)
        straggle = (
            params.straggle
            * params.gamma
            * sig.local_compute
            * math.sqrt(2.0 * k * math.log(max(2, n)))
        )
        barrier = params.barrier_per_proc * n
        phase = (
            max(sig.serial_compute + parallel, parallel + straggle) + barrier
        )
        cycles = sig.phases * phase
        terms["straggle"] = straggle
        terms["barrier"] = barrier
    else:
        cycles = sig.total_ops * per_op

    return Prediction(
        signature=sig,
        throughput=1000.0 * x_items,
        cycles=cycles,
        per_op_cycles=per_op,
        handoff_cycles=max(0.0, eq.s_hot - body),
        effective_waiters=eq.q_hot,
        regime=regime,
        terms=terms,
    )


def predict_speedups(
    sig: WorkloadSignature,
    params: Optional[CalibrationParams] = None,
    base_primitive: str = "tts",
) -> Dict[str, float]:
    """Relative speedup of ``sig.primitive`` and the base primitive.

    Mirrors the paper's Table 3 convention: cycles on the base primitive
    divided by cycles on the candidate.
    """
    base = predict(sig.with_(primitive=base_primitive), params)
    this = predict(sig, params)
    return {
        "base_cycles": base.cycles,
        "cycles": this.cycles,
        "speedup_vs_" + base_primitive: base.cycles / max(1.0, this.cycles),
    }

"""repro — reproduction of Rajwar, Kägi & Goodman, "Improving the
Throughput of Synchronization by Insertion of Delays" (HPCA 2000).

The package simulates a bus-based shared-memory multiprocessor and
implements the paper's full protocol taxonomy: baseline LL/SC, aggressive
baseline (RFO on LL), delayed response (± queue retention), Implicit QOLB
(± queue retention) and explicit QOLB, together with the synchronization
library, workload models and the benchmark harness that regenerates the
paper's tables and figures.

Quick start::

    from repro import System, SystemConfig
    from repro.cpu.ops import Compute, Read, Write
    from repro.sync import TTSLock

    config = SystemConfig(n_processors=4, policy="iqolb")
    system = System(config)
    lock = TTSLock(system.layout.alloc_line())
    counter = system.layout.alloc_line()

    def worker():
        for _ in range(100):
            yield from lock.acquire()
            value = yield Read(counter)
            yield Write(counter, value + 1)
            yield from lock.release()
            yield Compute(50)

    for node in range(4):
        system.load_program(node, worker())
    cycles = system.run()
"""

from repro.harness.config import SystemConfig
from repro.harness.system import System

__version__ = "1.1.0"

__all__ = ["System", "SystemConfig", "__version__"]

"""Processor model and simulated instruction set."""

from repro.cpu.ops import (
    LL,
    SC,
    Compute,
    DeQOLB,
    EnQOLB,
    Fence,
    Op,
    Read,
    Swap,
    Write,
)
from repro.cpu.processor import Processor
from repro.cpu.thread import Program, SimThread

__all__ = [
    "Compute",
    "DeQOLB",
    "EnQOLB",
    "Fence",
    "LL",
    "Op",
    "Processor",
    "Program",
    "Read",
    "SC",
    "SimThread",
    "Swap",
    "Write",
]

"""Simulated software threads.

A :class:`SimThread` wraps a generator program.  The processor drives the
generator: it sends each yielded operation's result back in, and reports
completion when the generator is exhausted.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.cpu.ops import Op

Program = Generator[Op, Any, None]


class SimThread:
    """One software thread bound to one processor."""

    def __init__(self, thread_id: int, program: Program) -> None:
        self.thread_id = thread_id
        self.program = program
        self.done = False
        self.start_time: Optional[int] = None
        self.finish_time: Optional[int] = None
        self.ops_executed = 0

    def advance(self, result: Any) -> Optional[Op]:
        """Feed ``result`` to the program; return the next op or None."""
        try:
            if self.ops_executed == 0 and result is None:
                op = next(self.program)
            else:
                op = self.program.send(result)
        except StopIteration:
            self.done = True
            return None
        self.ops_executed += 1
        return op

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "running"
        return f"<SimThread {self.thread_id} {state} ops={self.ops_executed}>"

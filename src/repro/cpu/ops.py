"""The simulated instruction set.

Programs are Python generators that *yield* these operations and receive
each operation's result back from the processor::

    def program(api):
        value = yield Read(addr)            # load
        yield Write(addr, value + 1)        # store
        old = yield LL(lock, pc=ACQ_PC)     # load-linked
        ok = yield SC(lock, 1, pc=ACQ_PC)   # store-conditional -> bool
        yield Compute(25)                   # 25 cycles of local work

This mirrors the paper's methodology: an execution-driven simulator whose
ISA includes Swap, Load-Linked, Store-Conditional, EnQOLB and DeQOLB
(paper §4.1), with LL/SC semantics exactly as architected — an SC succeeds
only if no other processor wrote the linked location since the LL.

``pc`` is the (stable, synthetic) program counter of the instruction; the
IQOLB lock predictor indexes its table by the PC of the LL (paper §3.4).
"""

from __future__ import annotations



class Op:
    """Base class for simulated instructions."""

    __slots__ = ("addr", "value", "pc")

    kind = "op"
    is_memory = True

    def __init__(self, addr: int = 0, value: int = 0, pc: int = 0) -> None:
        self.addr = addr
        self.value = value
        self.pc = pc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} addr={self.addr:#x} pc={self.pc}>"


class Read(Op):
    """Load a word; result is the loaded value."""

    kind = "read"

    def __init__(self, addr: int, pc: int = 0) -> None:
        super().__init__(addr=addr, pc=pc)


class Write(Op):
    """Store a word; result is None."""

    kind = "write"

    def __init__(self, addr: int, value: int, pc: int = 0) -> None:
        super().__init__(addr=addr, value=value, pc=pc)


class LL(Op):
    """Load-linked: load a word and set the link flag; result is the value."""

    kind = "ll"

    def __init__(self, addr: int, pc: int = 0) -> None:
        super().__init__(addr=addr, pc=pc)


class SC(Op):
    """Store-conditional; result is True on success, False on failure."""

    kind = "sc"

    def __init__(self, addr: int, value: int, pc: int = 0) -> None:
        super().__init__(addr=addr, value=value, pc=pc)


class Swap(Op):
    """Atomic swap; result is the previous memory value."""

    kind = "swap"

    def __init__(self, addr: int, value: int, pc: int = 0) -> None:
        super().__init__(addr=addr, value=value, pc=pc)


class EnQOLB(Op):
    """Explicit QOLB enqueue for a lock line (paper §2, §4.1).

    Result is the current value of the lock word (possibly from the local
    shadow copy while waiting in the hardware queue).
    """

    kind = "enqolb"

    def __init__(self, addr: int, pc: int = 0) -> None:
        super().__init__(addr=addr, pc=pc)


class DeQOLB(Op):
    """Explicit QOLB dequeue/release: hand the lock line to the successor."""

    kind = "deqolb"

    def __init__(self, addr: int, pc: int = 0) -> None:
        super().__init__(addr=addr, pc=pc)


class Compute(Op):
    """Local computation for a fixed number of cycles; result is None."""

    kind = "compute"
    is_memory = False

    def __init__(self, cycles: int) -> None:
        super().__init__(value=cycles)
        if cycles < 0:
            raise ValueError("compute cycles must be non-negative")

    @property
    def cycles(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Compute {self.cycles}>"


class Fence(Op):
    """Memory fence.

    The simulated processor is in-order with blocking memory operations
    under sequential consistency, so a fence only costs issue time; it is
    provided so lock code reads like its real counterpart.
    """

    kind = "fence"
    is_memory = False

    def __init__(self) -> None:
        super().__init__()

"""In-order processor model.

The paper simulates 4-wide out-of-order cores; at reproduction scale we
substitute an in-order core with blocking memory operations (see
DESIGN.md §2).  The rate at which the core presents work to the memory
system — the only thing that matters to the mechanisms under study — is
modelled by explicit ``Compute`` costs in the programs plus a fixed
per-instruction issue overhead.

Sequential consistency (the paper's model, Table 1) holds trivially: each
processor issues one memory operation at a time and the bus serializes
them globally.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.cpu.ops import Compute, Fence
from repro.cpu.thread import SimThread
from repro.engine.simulator import Simulator
from repro.engine.stats import StatsRegistry


class Processor:
    """Drives one :class:`SimThread`, one operation at a time."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        stats: StatsRegistry,
        issue_overhead: int = 1,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.stats = stats
        self.issue_overhead = issue_overhead
        self.controller: Optional[Any] = None  # set by the system builder
        self.thread: Optional[SimThread] = None
        self.on_thread_done: Optional[Callable[[SimThread], None]] = None
        self._prefix = f"cpu{node_id}"
        # _advance runs once per instruction; resolve its counters once
        self._c_ops = stats.counter(f"{self._prefix}.ops")
        self._c_mem_ops = stats.counter(f"{self._prefix}.mem_ops")

    def bind(self, thread: SimThread) -> None:
        """Attach the thread this processor will run."""
        self.thread = thread

    def start(self) -> None:
        """Schedule the first instruction."""
        if self.thread is None:
            raise RuntimeError(f"processor {self.node_id} has no thread")
        self.thread.start_time = self.sim.now
        self.sim.schedule(0, self._advance, None)

    # ------------------------------------------------------------------
    # Execution loop
    # ------------------------------------------------------------------
    def _advance(self, result: Any) -> None:
        """Feed the previous result to the program and issue the next op."""
        thread = self.thread
        assert thread is not None
        op = thread.advance(result)
        if op is None:
            thread.finish_time = self.sim.now
            self._c_ops.value += thread.ops_executed
            if self.on_thread_done is not None:
                self.on_thread_done(thread)
            return
        if type(op) is Compute:
            self.sim.schedule(self.issue_overhead + op.value, self._advance, None)
            return
        if type(op) is Fence:
            self.sim.schedule(self.issue_overhead, self._advance, None)
            return
        # Memory operation: hand to the cache controller; it calls
        # _memory_done(value) when the access completes.
        if self.controller is None:
            raise RuntimeError(f"processor {self.node_id} has no controller")
        self._c_mem_ops.value += 1
        self.sim.schedule(
            self.issue_overhead, self.controller.cpu_request, op, self._memory_done
        )

    def _memory_done(self, value: Any) -> None:
        self._advance(value)

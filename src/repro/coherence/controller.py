"""Per-node cache controller.

Implements the MOESI snooping protocol over the split-transaction bus, the
LL/SC link flag, and all the machinery the paper's mechanisms need:

* **deferral / forward obligations** — an owner may delay its response to
  a low-priority RFO; the obligation to eventually forward the line (with
  its bounded timeout) is tracked here (paper §3.2);
* **distributed queue** — every controller claims, from the broadcast bus
  order alone, at most one *successor* per line; the chain of successors
  is the hardware queue of waiting requestors (paper §3.2, "the line will
  be passed ... in precisely the order in which the original requests
  occurred");
* **tear-off copies** — value-only responses installed in a TEAROFF
  pseudo-state that supports local spinning (paper §3.3);
* **queue retention** — loaned lines with forced ownership return
  (paper §3.2/3.3, the "with queue retention" alternatives);
* **squash and reissue** — queue breakdown on a regular RFO when
  retention is off.

Which of these fire, and when, is decided by the attached
:class:`~repro.core.policy.ProtocolPolicy`.

A note on the link flag: a *deferred* LPRFO must NOT reset the owner's
link flag — delaying the response precisely so the owner's SC can succeed
is the entire mechanism.  The link resets only when the line is actually
surrendered (supply, loan, hand-off, eviction) or when a copy is
invalidated.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.coherence.mshr import Mshr
from repro.core.policy import ProtocolPolicy
from repro.cpu.ops import Op
from repro.engine.event import Event
from repro.engine.simulator import Simulator
from repro.engine.stats import StatsRegistry
from repro.interconnect.bus import AddressBus, BusClient
from repro.interconnect.crossbar import Crossbar
from repro.interconnect.messages import (
    DEFERRABLE_OPS,
    BusOp,
    BusTransaction,
    DataKind,
    DataMessage,
    GrantState,
    SnoopReply,
)
from repro.mem.address import AddressMap
from repro.mem.hierarchy import NodeCacheHierarchy
from repro.mem.line import CacheLine, State


class Obligation:
    """A promise to forward line ownership to the successor."""

    __slots__ = ("line_addr", "timer", "created", "suspended", "fire_on_resume")

    def __init__(self, line_addr: int, created: int) -> None:
        self.line_addr = line_addr
        self.timer: Optional[Event] = None
        self.created = created
        #: line is currently on loan; discharge must wait for its return
        self.suspended = False
        #: a release/timeout happened while suspended; discharge on return
        self.fire_on_resume = False


class CacheController(BusClient):
    """Coherence engine for one node."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        stats: StatsRegistry,
        amap: AddressMap,
        hierarchy: NodeCacheHierarchy,
        bus: AddressBus,
        crossbar: Crossbar,
        policy: ProtocolPolicy,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.stats = stats
        self.amap = amap
        self.hierarchy = hierarchy
        self.bus = bus
        self.crossbar = crossbar
        self.policy = policy
        policy.bind(self)

        self.mshrs: Dict[int, Mshr] = {}
        #: distributed-queue successor per line (claimed from bus order)
        self.successor: Dict[int, int] = {}
        #: promises to forward ownership, keyed by line address
        self.obligations: Dict[int, Obligation] = {}
        #: lines we borrowed and must return (value = lender node)
        self.loan_return_to: Dict[int, int] = {}
        #: lines we lent out and expect back (value = borrower node)
        self.on_loan: Dict[int, int] = {}
        #: protected-data lines pushed to a successor, awaiting its ack
        #: (Generalized IQOLB, paper §6); value = receiving node
        self.forwarded: Dict[int, int] = {}

        # LL/SC architectural state: the link flag and locked physical
        # address register (paper §2), plus the PC of the live LL for the
        # owner-side lock speculation (paper §3.4).
        self.link_valid = False
        self.link_addr = 0
        self.current_ll_pc = 0
        #: the live link was established from a tear-off snapshot; it must
        #: be re-established from real data before an SC may succeed —
        #: intermediate queue holders' writes never invalidate a tear-off,
        #: so an SC chained off a tear-off LL would miss them.
        self.link_tearoff = False

        #: optional trace hook: tracer(event, time, node, line_addr, info)
        self.tracer: Optional[Callable[..., None]] = None
        self._prefix = f"ctrl{node_id}"
        #: metric name -> Counter, so hot-path _count calls skip the
        #: f-string build and registry probe after the first occurrence
        self._counters: Dict[str, Any] = {}
        # cpu_request dispatch table, hoisted out of the per-op path
        self._op_handlers = {
            "read": self._do_read,
            "write": self._do_write,
            "ll": self._do_ll,
            "sc": self._do_sc,
            "swap": self._do_swap,
            "enqolb": self._do_enqolb,
            "deqolb": self._do_deqolb,
        }

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------
    def _count(self, metric: str, amount: int = 1) -> None:
        counter = self._counters.get(metric)
        if counter is None:
            counter = self._counters[metric] = self.stats.counter(
                f"{self._prefix}.{metric}"
            )
        counter.value += amount

    def _trace(self, event: str, line_addr: int, **info: Any) -> None:
        if self.tracer is not None:
            self.tracer(event, self.sim.now, self.node_id, line_addr, info)

    def obligation_count(self) -> int:
        return len(self.obligations)

    def describe_state(self) -> str:
        """One-line digest of protocol state, for runaway diagnostics.

        Returns an empty string when the controller is quiescent so the
        kernel's stuck-state report only lists nodes that matter.
        """
        parts: List[str] = []
        for line_addr, mshr in sorted(self.mshrs.items()):
            flags = []
            if mshr.issued:
                flags.append("issued")
            if mshr.queued:
                flags.append("queued")
            if mshr.tearoff_done:
                flags.append("tearoff")
            if mshr.has_waiter:
                flags.append(f"waiting:{mshr.cpu_op.kind}")
            op = mshr.bus_op.name if mshr.bus_op is not None else "?"
            detail = ",".join(flags) or "idle"
            parts.append(
                f"mshr {line_addr:#x} {op} {detail} since t={mshr.start_time}"
            )
        for line_addr, obligation in sorted(self.obligations.items()):
            state = "suspended" if obligation.suspended else "armed"
            parts.append(
                f"obligation {line_addr:#x} {state} "
                f"since t={obligation.created}"
            )
        for line_addr, successor in sorted(self.successor.items()):
            parts.append(f"successor {line_addr:#x} -> P{successor}")
        for line_addr, lender in sorted(self.loan_return_to.items()):
            parts.append(f"loan {line_addr:#x} owed to P{lender}")
        if not parts:
            return ""
        return f"P{self.node_id}: " + "; ".join(parts)

    def _reset_link_if(self, line_addr: int) -> None:
        """Reset the link flag if it covers this line."""
        if self.link_valid and self.amap.line_addr(self.link_addr) == line_addr:
            self.link_valid = False


    def _readable_now(self, line, line_addr: int) -> bool:
        """May a load/LL be satisfied by this line right now?

        Tear-off copies are usable only while we hold a queue position
        for the line (an open MSHR): an orphaned tear-off is stale data
        nobody will ever refresh, so spinning on it would never end.
        """
        if line is None:
            return False
        if line.state is State.TEAROFF:
            return line_addr in self.mshrs
        return line.readable

    # ==================================================================
    # CPU side
    # ==================================================================
    def cpu_request(self, op: Op, done: Callable[[Any], None]) -> None:
        """Entry point for the processor's memory operations."""
        handler = self._op_handlers.get(op.kind)
        if handler is None:
            raise ValueError(f"unknown op kind {op.kind!r}")
        handler(op, done)

    # ------------------------------- loads ----------------------------
    def _do_read(self, op: Op, done: Callable[[Any], None]) -> None:
        line_addr = self.amap.line_addr(op.addr)
        line, latency = self.hierarchy.lookup(line_addr)
        if self._readable_now(line, line_addr):
            self.sim.schedule(latency, self._finish_read, op, done)
        else:
            self.sim.schedule(latency, self._start_miss, op, done, BusOp.GETS)

    def _finish_read(self, op: Op, done: Callable[[Any], None]) -> None:
        line_addr = self.amap.line_addr(op.addr)
        line = self.hierarchy.peek(line_addr)
        if not self._readable_now(line, line_addr):
            self.cpu_request(op, done)  # lost the line mid-access; replay
            return
        done(line.read_word(self.amap.word_index(op.addr)))

    def _do_ll(self, op: Op, done: Callable[[Any], None]) -> None:
        line_addr = self.amap.line_addr(op.addr)
        line, latency = self.hierarchy.lookup(line_addr)
        if self._readable_now(line, line_addr):
            self.sim.schedule(latency, self._finish_ll, op, done)
        else:
            self.sim.schedule(
                latency, self._start_miss, op, done, self.policy.ll_miss_op(op)
            )

    def _finish_ll(self, op: Op, done: Callable[[Any], None]) -> None:
        line_addr = self.amap.line_addr(op.addr)
        line = self.hierarchy.peek(line_addr)
        if not self._readable_now(line, line_addr):
            self.cpu_request(op, done)
            return
        self._complete_ll(op, line, done)

    def _complete_ll(
        self, op: Op, line: CacheLine, done: Callable[[Any], None]
    ) -> None:
        """Set the link and return the loaded value (coherence point)."""
        self.link_valid = True
        self.link_addr = op.addr
        self.current_ll_pc = op.pc
        self.link_tearoff = line.state is State.TEAROFF
        self._count("ll_ops")
        value = line.read_word(self.amap.word_index(op.addr))
        if self.tracer is not None:
            # guarded at the call site: this runs once per spin iteration,
            # and building the payload would dominate the untraced path
            self._trace(
                "ll", line.addr, value=value, pc=op.pc, state=line.state.value
            )
        done(value)

    # ------------------------------- stores ---------------------------
    def _do_write(self, op: Op, done: Callable[[Any], None]) -> None:
        line_addr = self.amap.line_addr(op.addr)
        line, latency = self.hierarchy.lookup(line_addr)
        if line is not None and line.writable:
            self.sim.schedule(latency, self._finish_local_write, op, done)
        elif line is not None and line.state in (State.SHARED, State.OWNED):
            self.sim.schedule(latency, self._start_miss, op, done, BusOp.UPGRADE)
        else:
            self.sim.schedule(latency, self._start_miss, op, done, BusOp.GETX)

    def _finish_local_write(self, op: Op, done: Callable[[Any], None]) -> None:
        line = self.hierarchy.peek(self.amap.line_addr(op.addr))
        if line is None or not line.writable:
            self.cpu_request(op, done)  # lost permission mid-access; replay
            return
        self._perform_store(op, line)
        done(None)

    def _perform_store(self, op: Op, line: CacheLine) -> None:
        """Apply a store to a writable line, then run release/loan hooks."""
        line.write_word(self.amap.word_index(op.addr), op.value)
        line.state = State.MODIFIED
        if self.tracer is not None:
            self._trace("store", line.addr, value=op.value, pc=op.pc)
        if self.policy.on_store_complete(op.addr, op.pc):
            self._count("releases_detected")
            self._trace("release", line.addr)
            if line.addr not in self.loan_return_to:
                self.discharge(line.addr, reason="release")
        self._maybe_return_loan(line.addr)

    # ------------------------------- SC -------------------------------
    def _do_sc(self, op: Op, done: Callable[[Any], None]) -> None:
        line_addr = self.amap.line_addr(op.addr)
        self._count("sc_attempts")
        if not self.link_valid or self.link_addr != op.addr:
            self._fail_sc(op, done)
            return
        line, latency = self.hierarchy.lookup(line_addr)
        if line is not None and line.writable:
            self.sim.schedule(latency, self._finish_local_sc, op, done)
        elif line is not None and line.state in (State.SHARED, State.OWNED):
            self.sim.schedule(latency, self._start_miss, op, done, BusOp.UPGRADE)
        else:
            # No coherent copy (invalid or tear-off): the SC cannot be
            # guaranteed atomic, so it fails (paper §2 semantics).
            self.sim.schedule(latency, self._fail_sc, op, done)

    def _finish_local_sc(self, op: Op, done: Callable[[Any], None]) -> None:
        line = self.hierarchy.peek(self.amap.line_addr(op.addr))
        if not self.link_valid or self.link_addr != op.addr:
            self._fail_sc(op, done)
            return
        if line is None or not line.writable:
            self._fail_sc(op, done)
            return
        self._succeed_sc(op, line, done)

    def _succeed_sc(
        self, op: Op, line: CacheLine, done: Callable[[Any], None]
    ) -> None:
        line.write_word(self.amap.word_index(op.addr), op.value)
        line.state = State.MODIFIED
        self.link_valid = False
        self._count("sc_success")
        self._trace("sc", line.addr, success=True, pc=op.pc)
        if self.policy.on_sc_success(op.addr, op.pc):
            if line.addr not in self.loan_return_to:
                self.discharge(line.addr, reason="sc")
        else:
            # Lock acquired and held: extend the deferral window so the
            # critical section gets its own full timeout (paper §3.3).
            self.rearm_obligation(line.addr)
        self._maybe_return_loan(line.addr)
        done(True)

    def _fail_sc(self, op: Op, done: Callable[[Any], None]) -> None:
        self.link_valid = False
        self._count("sc_fail")
        self._trace("sc", self.amap.line_addr(op.addr), success=False, pc=op.pc)
        self.policy.on_sc_fail(op.addr, op.pc)
        done(False)

    # ------------------------------- swap ------------------------------
    def _do_swap(self, op: Op, done: Callable[[Any], None]) -> None:
        line_addr = self.amap.line_addr(op.addr)
        line, latency = self.hierarchy.lookup(line_addr)
        if line is not None and line.writable:
            self.sim.schedule(latency, self._finish_local_swap, op, done)
        elif line is not None and line.state in (State.SHARED, State.OWNED):
            self.sim.schedule(latency, self._start_miss, op, done, BusOp.UPGRADE)
        else:
            self.sim.schedule(latency, self._start_miss, op, done, BusOp.GETX)

    def _finish_local_swap(self, op: Op, done: Callable[[Any], None]) -> None:
        line = self.hierarchy.peek(self.amap.line_addr(op.addr))
        if line is None or not line.writable:
            self.cpu_request(op, done)
            return
        done(self._perform_swap(op, line))

    def _perform_swap(self, op: Op, line: CacheLine) -> int:
        index = self.amap.word_index(op.addr)
        old = line.read_word(index)
        line.write_word(index, op.value)
        line.state = State.MODIFIED
        self._trace("swap", line.addr, old=old, new=op.value)
        if self.policy.on_store_complete(op.addr, op.pc):
            self._count("releases_detected")
            if line.addr not in self.loan_return_to:
                self.discharge(line.addr, reason="release")
        self._maybe_return_loan(line.addr)
        return old

    # ------------------------------- QOLB ------------------------------
    def _do_enqolb(self, op: Op, done: Callable[[Any], None]) -> None:
        line_addr = self.amap.line_addr(op.addr)
        line, latency = self.hierarchy.lookup(line_addr)
        if line is not None and line.writable:
            self.sim.schedule(latency, self._finish_local_enqolb, op, done)
        elif (
            line is not None
            and line.state is State.TEAROFF
            and line_addr in self.mshrs
        ):
            # Local spinning on the shadow copy: zero network traffic.
            # A tear-off means "queued; the lock is not currently
            # available" (paper §3.3), so the EnQOLB reports it held
            # regardless of the snapshot value.
            self.sim.schedule(latency, done, 1)
        else:
            # Shared or absent: QOLB needs ownership of the lock line.
            self.sim.schedule(latency, self._start_miss, op, done, BusOp.QOLB_ENQ)

    def _finish_local_enqolb(self, op: Op, done: Callable[[Any], None]) -> None:
        line = self.hierarchy.peek(self.amap.line_addr(op.addr))
        if line is None or not line.writable:
            self.cpu_request(op, done)
            return
        value = line.read_word(self.amap.word_index(op.addr))
        if value == 0:
            self.policy.on_enqolb_acquired(op.addr)
            line.pinned = True
        self._trace("enqolb", line.addr, value=value)
        done(value)

    def _do_deqolb(self, op: Op, done: Callable[[Any], None]) -> None:
        line_addr = self.amap.line_addr(op.addr)
        line, latency = self.hierarchy.lookup(line_addr)
        if line is not None and line.writable:
            self.sim.schedule(latency, self._finish_local_deqolb, op, done)
        else:
            # We lost the lock line while holding the lock (eviction
            # hand-off).  Re-acquire with a regular RFO, then release.
            self.sim.schedule(latency, self._start_miss, op, done, BusOp.GETX)

    def _finish_local_deqolb(self, op: Op, done: Callable[[Any], None]) -> None:
        line = self.hierarchy.peek(self.amap.line_addr(op.addr))
        if line is None or not line.writable:
            self.cpu_request(op, done)
            return
        self._perform_deqolb(op, line)
        done(None)

    def _perform_deqolb(self, op: Op, line: CacheLine) -> None:
        line.write_word(self.amap.word_index(op.addr), 0)
        line.state = State.MODIFIED
        line.pinned = False
        self.policy.on_deqolb(op.addr)
        self._trace("deqolb", line.addr)
        if line.addr not in self.loan_return_to:
            self.discharge(line.addr, reason="deqolb")
        self._maybe_return_loan(line.addr)

    # ==================================================================
    # Miss path
    # ==================================================================
    def _start_miss(
        self, op: Op, done: Callable[[Any], None], bus_op: BusOp
    ) -> None:
        line_addr = self.amap.line_addr(op.addr)
        line = self.hierarchy.peek(line_addr)
        if (
            line is not None
            and line.state is not State.TEAROFF
            and (line.writable or bus_op is BusOp.GETS)
        ):
            # The line landed while the miss was being set up (a push or
            # chain transfer racing the cache lookup).  Requesting it
            # anyway would make the fabric serve a need that no longer
            # exists — possibly from memory, over a dirtier copy.
            self.cpu_request(op, done)
            return
        if bus_op is BusOp.UPGRADE and (
            line is None or line.state is State.TEAROFF
        ):
            # The inverse race: our shared copy was invalidated between
            # the upgrade decision and issue.  An UPGRADE without a copy
            # can never be granted (and, once issued, never cancelled —
            # there is no MSHR yet for the winner's snoop to squash), so
            # re-dispatch: an SC fails on its lost link, a store falls
            # back to a full GETX.
            self.cpu_request(op, done)
            return
        existing = self.mshrs.get(line_addr)
        if existing is not None:
            # A queued MSHR for this line is still waiting for ownership
            # (a tear-off already unblocked the CPU once).  Attach the new
            # CPU operation; it completes when the line finally arrives.
            if existing.has_waiter:
                raise RuntimeError(
                    f"P{self.node_id}: second blocked op on {line_addr:#x}"
                )
            existing.cpu_op = op
            existing.done_cb = done
            return
        mshr = Mshr(line_addr, op, done, self.sim.now)
        mshr.bus_op = bus_op
        self.mshrs[line_addr] = mshr
        if line_addr in self.on_loan:
            # We lent this line out and it will come back shortly; wait
            # for the return instead of racing it with a bus request.
            return
        self._issue_bus(mshr)

    def _issue_bus(self, mshr: Mshr) -> None:
        assert mshr.bus_op is not None
        txn = BusTransaction(mshr.bus_op, mshr.line_addr, self.node_id)
        mshr.txn = txn
        mshr.issued = False
        self.bus.request(txn)

    def _retire_mshr(self, mshr: Mshr) -> None:
        """Remove an MSHR, settling its bus-transaction accounting."""
        self.mshrs.pop(mshr.line_addr, None)
        if mshr.txn is None:
            return
        if mshr.issued:
            if mshr.txn.op in (BusOp.GETS, BusOp.GETX, BusOp.LPRFO, BusOp.QOLB_ENQ):
                self.bus.transaction_complete(mshr.txn)
        else:
            mshr.txn.cancelled = True

    # ==================================================================
    # Bus client: own-transaction notifications
    # ==================================================================
    def on_own_issue(
        self,
        txn: BusTransaction,
        supplier: Optional[int],
        shared: bool,
        deferred: bool,
    ) -> None:
        if txn.op is BusOp.WRITEBACK:
            return
        mshr = self.mshrs.get(txn.line_addr)
        if mshr is None or mshr.txn is not txn:
            return  # superseded (e.g. squashed and reissued)
        mshr.issued = True
        if txn.op is BusOp.UPGRADE:
            self._complete_upgrade(mshr)
            return
        if deferred:
            mshr.queued = True
            self._count("waits_in_queue")
            self._trace("queued", txn.line_addr, supplier=supplier)

    def _complete_upgrade(self, mshr: Mshr) -> None:
        """The UPGRADE reached its coherence point: permission granted."""
        done = mshr.take_waiter()
        self.mshrs.pop(mshr.line_addr, None)
        if done is None:
            return
        op = mshr.pending_op
        line = self.hierarchy.peek(mshr.line_addr)
        if line is None:
            # Our shared copy evaporated (silent eviction) between the
            # request and the grant; replay (or fail, for an SC).
            if op is not None and op.kind == "sc":
                self._fail_sc(op, done)
            elif op is not None:
                self.cpu_request(op, done)
            else:
                done(None)
            return
        line.state = State.MODIFIED
        self._finish_filled_op(mshr, line, done)

    # ==================================================================
    # Bus client: snooping
    # ==================================================================
    def snoop(self, txn: BusTransaction) -> SnoopReply:
        if txn.op is BusOp.WRITEBACK:
            return SnoopReply()
        line = self.hierarchy.peek(txn.line_addr)

        # Distributed-queue bookkeeping: the tail of the queue claims the
        # new requestor as its successor (paper §3.2).
        if txn.op in DEFERRABLE_OPS:
            self._maybe_claim_successor(txn)

        if txn.op is BusOp.GETS:
            return self._snoop_gets(txn, line)
        return self._snoop_ownership(txn, line)

    def _maybe_claim_successor(self, txn: BusTransaction) -> None:
        line_addr = txn.line_addr
        if line_addr in self.successor:
            return
        mshr = self.mshrs.get(line_addr)
        queued_waiter = mshr is not None and mshr.queued
        deferring_owner = line_addr in self.obligations
        if queued_waiter or deferring_owner:
            self.successor[line_addr] = txn.requester
            self._count("successors_claimed")
            self._trace("successor", line_addr, successor=txn.requester)

    def _snoop_gets(
        self, txn: BusTransaction, line: Optional[CacheLine]
    ) -> SnoopReply:
        if txn.line_addr in self.on_loan or txn.line_addr in self.forwarded:
            # The authoritative copy is with (or in flight to) another
            # node on our behalf; make the reader try again shortly.
            return SnoopReply(retry=True)
        mshr = self.mshrs.get(txn.line_addr)
        if mshr is not None and mshr.queued:
            # We are queued for this line.  If the current owner answers,
            # the bus ignores this; if the line is in flight to us, the
            # retry keeps memory from supplying stale data.
            return SnoopReply(retry=True)
        if line is None or line.state is State.TEAROFF:
            return SnoopReply()
        if line.is_owner and txn.line_addr in self.loan_return_to:
            # Borrowed line: stay silent; the lender answers for it.
            return SnoopReply(retry=True)
        if line.is_owner:
            if self.policy.tearoff_for_read(line.addr):
                # Speculatively satisfy the read without giving up
                # ownership (paper §3.3: queries of a held lock proceed
                # without joining the queue).
                self._send_tearoff(txn.requester, line, txn.txn_id)
                return SnoopReply(supply=True)
            self._send_line(txn.requester, line, GrantState.SHARED, txn_id=txn.txn_id)
            line.state = (
                State.SHARED if line.state is State.EXCLUSIVE else State.OWNED
            )
            return SnoopReply(supply=True, shared=True)
        if line.state is State.SHARED:
            return SnoopReply(shared=True)
        return SnoopReply()

    def _snoop_ownership(
        self, txn: BusTransaction, line: Optional[CacheLine]
    ) -> SnoopReply:
        line_addr = txn.line_addr
        self._squash_upgrade_if_raced(txn)

        if line_addr in self.forwarded:
            # A pushed protected-data line is in flight to its receiver;
            # requests must wait for the (bounded) transfer + ack window.
            return SnoopReply(retry=True)

        if line_addr in self.on_loan:
            # We lent the line out.  We answer for it: the queue will
            # serve low-priority requests; high-priority ones must wait
            # out the loan (NACK/retry, a short bounded window).
            if txn.op in DEFERRABLE_OPS:
                return SnoopReply(defer=True)
            return SnoopReply(retry=True)

        mshr = self.mshrs.get(line_addr)
        if mshr is not None and mshr.queued:
            # We are queued for this line.  A low-priority request behind
            # us will be served by the chain (defer suppresses memory); a
            # regular RFO either gets the line from the current owner (our
            # retry is then ignored; post_snoop may break the queue down)
            # or must retry while the line is in flight.
            if txn.op in DEFERRABLE_OPS:
                return SnoopReply(defer=True)
            return SnoopReply(retry=True)

        if line is None or line.state is State.TEAROFF:
            # Tear-offs are not coherent copies; nothing to invalidate.
            return SnoopReply()

        if not line.is_owner:
            # Shared copy: invalidate; someone is about to write.
            self.hierarchy.drop(line_addr)
            self._reset_link_if(line_addr)
            return SnoopReply()

        # ---- we own the line ----
        if line_addr in self.loan_return_to:
            # Borrowed line: the lender answers for it; stay silent so the
            # loan can return undisturbed.
            return SnoopReply(retry=True)

        if txn.op in DEFERRABLE_OPS:
            decision = self.policy.should_defer(txn, line)
            if decision.defer:
                self._register_deferral(txn, line, decision.tearoff)
                return SnoopReply(defer=True)
            self._supply_exclusive(txn.requester, line, txn.txn_id)
            return SnoopReply(supply=True)

        # ---- regular RFO / upgrade: must be served promptly ----
        if line_addr in self.obligations:
            if self.policy.queue_retention and txn.op is BusOp.GETX:
                self._lend_line(txn.requester, line, txn.txn_id)
                return SnoopReply(supply=True)
            self._cancel_obligation(line_addr)
            self.successor.pop(line_addr, None)
            self._count("queue_breakdowns")
            self._trace("queue_breakdown", line_addr, cause=txn.requester)
        if txn.op is BusOp.UPGRADE:
            if line.state in (State.MODIFIED, State.EXCLUSIVE):
                # The requester cannot hold a valid copy while we are M/E:
                # this upgrade is stale (its SC already failed); ignore it
                # rather than dropping dirty data.
                self._count("stale_upgrades_ignored")
                return SnoopReply()
            # Requester already holds the data; we just invalidate.
            self.hierarchy.drop(line_addr)
            self._reset_link_if(line_addr)
            return SnoopReply()
        self._supply_exclusive(txn.requester, line, txn.txn_id)
        return SnoopReply(supply=True)

    def post_snoop(
        self, txn: BusTransaction, supplied: bool, deferred: bool
    ) -> None:
        """Outcome-dependent snoop reactions (second bus phase).

        Queue breakdown happens only when a regular RFO was actually
        served by the owner; while the line is in flight the transaction
        is being retried and the queue must stay intact.
        """
        if txn.op in DEFERRABLE_OPS or txn.op in (BusOp.GETS, BusOp.WRITEBACK):
            return
        if not supplied and txn.op is not BusOp.UPGRADE:
            return  # line in flight; the bus is retrying the RFO
        mshr = self.mshrs.get(txn.line_addr)
        if mshr is None or not mshr.queued:
            return
        if self.policy.queue_retention:
            # Waiters ignore the transaction; the queue survives.
            return
        mshr.queued = False
        self.successor.pop(txn.line_addr, None)
        if mshr.txn is not None and mshr.issued:
            self.bus.transaction_complete(mshr.txn)
        self._count("squashes")
        self._trace("squash", txn.line_addr, cause=txn.requester)
        # Reissue: rejoin the (re-forming) queue, possibly in a new order.
        self._issue_bus(mshr)

    def _squash_upgrade_if_raced(self, txn: BusTransaction) -> None:
        """Another node won ownership first: our pending UPGRADE dies."""
        mshr = self.mshrs.get(txn.line_addr)
        if mshr is None or mshr.txn is None or mshr.txn.op is not BusOp.UPGRADE:
            return
        mshr.txn.cancelled = True
        done = mshr.take_waiter()
        self.mshrs.pop(txn.line_addr, None)
        self._count("upgrade_races")
        if done is None:
            return
        op = mshr.pending_op
        if op is not None and op.kind == "sc":
            # The link was (or is about to be) reset by this invalidation:
            # the SC fails at the coherence point.
            self.sim.schedule(0, self._fail_sc, op, done)
        elif op is not None:
            # A plain store or swap just lost its shared copy; replay it
            # (it will issue a full GETX this time).
            self.sim.schedule(0, self.cpu_request, op, done)
        else:
            done(None)

    # ==================================================================
    # Supplying data
    # ==================================================================
    def _send_line(
        self,
        dst: int,
        line: CacheLine,
        grant: GrantState,
        loan: bool = False,
        txn_id: "Optional[int]" = None,
    ) -> None:
        msg = DataMessage(
            DataKind.LINE,
            line.addr,
            src=self.node_id,
            dst=dst,
            data=list(line.data),
            grant=grant,
            loan=loan,
            txn_id=txn_id,
        )
        self.crossbar.send(msg)

    def _send_tearoff(self, dst: int, line: CacheLine, txn_id: int) -> None:
        msg = DataMessage(
            DataKind.TEAROFF,
            line.addr,
            src=self.node_id,
            dst=dst,
            data=list(line.data),
            txn_id=txn_id,
        )
        self._count("tearoffs_sent")
        self._trace("tearoff", line.addr, to=dst)
        self.crossbar.send(msg)

    def _supply_exclusive(self, dst: int, line: CacheLine, txn_id: int) -> None:
        """Normal MOESI ownership transfer: send and invalidate."""
        self._send_line(dst, line, GrantState.EXCLUSIVE, txn_id=txn_id)
        self.hierarchy.drop(line.addr)
        self._reset_link_if(line.addr)

    def _lend_line(self, dst: int, line: CacheLine, txn_id: int) -> None:
        """Queue retention: loan the line; borrower must return it."""
        self._send_line(dst, line, GrantState.EXCLUSIVE, loan=True, txn_id=txn_id)
        self.hierarchy.drop(line.addr)
        self._reset_link_if(line.addr)
        self.on_loan[line.addr] = dst
        obligation = self.obligations.get(line.addr)
        if obligation is not None:
            obligation.suspended = True
        self._count("loans")
        self._trace("loan", line.addr, to=dst)

    def _maybe_return_loan(self, line_addr: int) -> None:
        lender = self.loan_return_to.pop(line_addr, None)
        if lender is None:
            return
        line = self.hierarchy.peek(line_addr)
        if line is None:
            return
        msg = DataMessage(
            DataKind.LOAN_RETURN,
            line_addr,
            src=self.node_id,
            dst=lender,
            data=list(line.data),
        )
        self.hierarchy.drop(line_addr)
        self._reset_link_if(line_addr)
        self._count("loan_returns")
        self._trace("loan_return", line_addr, to=lender)
        self.crossbar.send(msg)

    # ==================================================================
    # Deferral / obligations
    # ==================================================================
    def _register_deferral(
        self, txn: BusTransaction, line: CacheLine, tearoff: bool
    ) -> None:
        line_addr = txn.line_addr
        self._count("deferrals")
        self._trace("defer", line_addr, requester=txn.requester)
        if line_addr not in self.successor:
            self.successor[line_addr] = txn.requester
        self._create_obligation(line_addr)
        line.pinned = True
        if tearoff:
            self._send_tearoff(txn.requester, line, txn.txn_id)

    def _create_obligation(self, line_addr: int) -> None:
        if line_addr in self.obligations:
            return
        # Single speculative timer per controller (paper §3.3): entering a
        # second deferral discards the *first* speculation ("if a second,
        # nested, critical section is entered, the first can generally be
        # discarded").
        for other in list(self.obligations.values()):
            if not other.suspended:
                self._count("obligation_spills")
                self.discharge(other.line_addr, reason="displaced")
        obligation = Obligation(line_addr, self.sim.now)
        self.obligations[line_addr] = obligation
        self._arm_timer(obligation)

    def _arm_timer(self, obligation: Obligation) -> None:
        timeout = self.policy.timeout_cycles
        if timeout is None:
            return
        if obligation.timer is not None:
            self.sim.cancel(obligation.timer)
        obligation.timer = self.sim.schedule(
            timeout, self._timeout_fired, obligation.line_addr
        )

    def rearm_obligation(self, line_addr: int) -> None:
        """Restart the deferral window (e.g. at lock acquisition)."""
        obligation = self.obligations.get(line_addr)
        if obligation is not None:
            self._arm_timer(obligation)

    def _timeout_fired(self, line_addr: int) -> None:
        obligation = self.obligations.get(line_addr)
        if obligation is None:
            return
        obligation.timer = None
        self._count("timeouts")
        self._trace("timeout", line_addr)
        self.policy.on_timeout(line_addr)
        self.discharge(line_addr, reason="timeout")

    def _cancel_obligation(self, line_addr: int) -> None:
        obligation = self.obligations.pop(line_addr, None)
        if obligation is not None and obligation.timer is not None:
            self.sim.cancel(obligation.timer)

    def discharge(self, line_addr: int, reason: str) -> None:
        """Forward line ownership to the successor, if any is waiting."""
        obligation = self.obligations.get(line_addr)
        if obligation is not None and obligation.suspended:
            obligation.fire_on_resume = True
            return
        successor = self.successor.get(line_addr)
        if successor is None:
            self._cancel_obligation(line_addr)
            return
        line = self.hierarchy.peek(line_addr)
        if line is None or not line.is_owner:
            # The line is gone (transferred some other way); the successor
            # will be served by whoever owns it now.
            self._cancel_obligation(line_addr)
            return
        self._cancel_obligation(line_addr)
        del self.successor[line_addr]
        line.pinned = False
        self._count("handoffs")
        self._count(f"handoff_{reason}")
        if obligation is not None:
            # Lock-handoff latency: cycles between taking on the deferral
            # obligation and forwarding ownership — the paper's bounded
            # deferral window, observed rather than assumed.
            self.stats.histogram("handoff.defer_cycles").add(
                self.sim.now - obligation.created
            )
        self.stats.windowed("handoff.rate").record(self.sim.now)
        self._trace("handoff", line_addr, to=successor, reason=reason)
        self._send_line(successor, line, GrantState.EXCLUSIVE)
        self.hierarchy.drop(line_addr)
        self._reset_link_if(line_addr)
        if reason == "release":
            # Generalized IQOLB (paper §6): the critical section's data
            # lines travel to the next lock holder with the lock.
            for data_line in self.policy.protected_lines(line_addr):
                self._push_line(successor, data_line)

    def _push_line(self, dst: int, line_addr: int) -> None:
        """Forward an owned protected-data line to the next lock holder."""
        if (
            line_addr in self.mshrs
            or line_addr in self.on_loan
            or line_addr in self.forwarded
        ):
            return
        line = self.hierarchy.peek(line_addr)
        if line is None or not line.is_owner or line.pinned:
            return
        msg = DataMessage(
            DataKind.PUSH,
            line_addr,
            src=self.node_id,
            dst=dst,
            data=list(line.data),
            grant=GrantState.EXCLUSIVE,
        )
        self.hierarchy.drop(line_addr)
        self._reset_link_if(line_addr)
        self.forwarded[line_addr] = dst
        self._count("pushes_sent")
        self._trace("push", line_addr, to=dst)
        self.crossbar.send(msg)

    # ==================================================================
    # Data network receive
    # ==================================================================
    def on_data(self, msg: DataMessage) -> None:
        if msg.kind is DataKind.LINE:
            self._on_line_data(msg)
        elif msg.kind is DataKind.TEAROFF:
            self._on_tearoff(msg)
        elif msg.kind is DataKind.LOAN_RETURN:
            self._on_loan_return(msg)
        elif msg.kind is DataKind.PUSH:
            self._on_push(msg)
        elif msg.kind is DataKind.PUSH_ACK:
            self.forwarded.pop(msg.line_addr, None)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown message kind {msg.kind}")

    def _on_push(self, msg: DataMessage) -> None:
        """Receive a forwarded protected-data line (Generalized IQOLB)."""
        self._count("pushes_received")
        self._trace("push_recv", msg.line_addr, src=msg.src)
        ack = DataMessage(
            DataKind.PUSH_ACK, msg.line_addr, self.node_id, msg.src
        )
        self.crossbar.send(ack)
        # Install like a chain transfer (no transaction id): the usual
        # acceptance guards apply.
        self._on_line_data(msg)

    def _on_line_data(self, msg: DataMessage) -> None:
        line_addr = msg.line_addr
        mshr = self.mshrs.get(line_addr)
        current = self.hierarchy.peek(line_addr)
        if msg.txn_id is not None:
            # A direct response: it must answer our *current* request, or
            # it is a stale answer to a superseded transaction.
            if (
                mshr is None
                or mshr.txn is None
                or mshr.txn.txn_id != msg.txn_id
            ):
                self._count("stale_fills_dropped")
                return
        elif mshr is None and current is not None and current.is_owner:
            # Chain transfer racing a fill that already served us.
            self._count("stale_fills_dropped")
            return
        if msg.grant is GrantState.EXCLUSIVE:
            # Cache-to-cache exclusive transfers may carry dirty data;
            # install as MODIFIED so it is written back on eviction.
            state = State.MODIFIED if msg.src >= 0 else State.EXCLUSIVE
        else:
            state = State.SHARED
        line = self._install_line(line_addr, state, list(msg.data or []))
        line.pinned = False
        if (
            self.link_valid
            and self.link_tearoff
            and self.amap.line_addr(self.link_addr) == line_addr
        ):
            self.link_valid = False
        if msg.loan:
            self.loan_return_to[line_addr] = msg.src
            line.pinned = True  # a borrowed line must survive to return
        self._trace("fill", line_addr, state=state.value, src=msg.src)
        if mshr is not None:
            self._retire_mshr(mshr)
            if mshr.queued:
                self.stats.histogram("queue.wait_cycles").add(
                    self.sim.now - mshr.start_time
                )
            done = mshr.take_waiter()
            if done is not None:
                self._finish_filled_op(mshr, line, done)
        # Arriving at the head of a queue with a known successor creates a
        # fresh forward obligation (the chain must keep moving).
        settled = self.hierarchy.peek(line_addr)
        if (
            settled is not None
            and settled.is_owner
            and line_addr in self.successor
        ):
            self._create_obligation(line_addr)
            settled.pinned = True

    def _finish_filled_op(
        self, mshr: Mshr, line: CacheLine, done: Callable[[Any], None]
    ) -> None:
        """Complete the CPU operation that was blocked on this fill."""
        op = mshr.pending_op
        if op is None:
            done(None)
            return
        kind = op.kind
        index = self.amap.word_index(op.addr)
        if kind == "read":
            done(line.read_word(index))
        elif kind == "ll":
            self._complete_ll(op, line, done)
        elif kind == "write":
            self._perform_store(op, line)
            done(None)
        elif kind == "sc":
            if self.link_valid and self.link_addr == op.addr and line.writable:
                self._succeed_sc(op, line, done)
            else:
                self._fail_sc(op, done)
        elif kind == "swap":
            done(self._perform_swap(op, line))
        elif kind == "enqolb":
            value = line.read_word(index)
            if line.writable and value == 0:
                self.policy.on_enqolb_acquired(op.addr)
                line.pinned = True
            self._trace("enqolb", line.addr, value=value)
            done(value)
        elif kind == "deqolb":
            self._perform_deqolb(op, line)
            done(None)
        else:  # pragma: no cover - defensive
            raise ValueError(f"cannot complete op kind {kind!r}")

    def _on_tearoff(self, msg: DataMessage) -> None:
        line_addr = msg.line_addr
        self._count("tearoffs_received")
        self._trace("tearoff_recv", line_addr, src=msg.src)
        mshr = self.mshrs.get(line_addr)
        current = self.hierarchy.peek(line_addr)
        if current is not None and current.is_owner:
            return  # stale tear-off racing a hand-off we already received
        if msg.txn_id is not None and (
            mshr is None or mshr.txn is None or mshr.txn.txn_id != msg.txn_id
        ):
            # Answer to a superseded request (e.g. squashed and reissued).
            self._count("stale_tearoffs_dropped")
            return
        if mshr is not None and mshr.cpu_op is not None and mshr.cpu_op.kind == "read":
            # A read satisfied by a tear-off is fully complete and is NOT
            # installed: the value is usable once, which keeps repeated
            # reads from observing it after intervening accesses (the
            # sequential-consistency constraint of paper §3.3), and the
            # reader stays out of the queue.
            done = mshr.take_waiter()
            self._retire_mshr(mshr)
            if done is not None:
                data = list(msg.data or [])
                done(data[self.amap.word_index(mshr.pending_op.addr)])
            return
        if mshr is None:
            # A tear-off that outlived its request (e.g. delayed at the
            # sender's port until after we acquired and passed the line
            # on).  Installing it would leave a stale copy we might spin
            # on forever; drop it.
            self._count("stale_tearoffs_dropped")
            return
        line = self._install_line(line_addr, State.TEAROFF, list(msg.data or []))
        # LL or EnQOLB waiter: unblock the CPU with the speculative value;
        # the MSHR stays open, holding our place in the queue.
        mshr.tearoff_done = True
        line.pinned = True
        done = mshr.take_waiter()
        if done is not None:
            op = mshr.pending_op
            index = self.amap.word_index(op.addr if op is not None else line_addr)
            value = line.read_word(index)
            if op is not None and op.kind == "ll":
                self.link_valid = True
                self.link_addr = op.addr
                self.current_ll_pc = op.pc
                self.link_tearoff = True
            elif op is not None and op.kind == "enqolb":
                # Receipt of a tear-off signals a successful queue insert,
                # with the lock currently unavailable (paper §3.3).
                value = 1
            done(value)

    def _on_loan_return(self, msg: DataMessage) -> None:
        line_addr = msg.line_addr
        self.on_loan.pop(line_addr, None)
        if msg.data is None:
            # Loan dissolved: the borrower lost the line to a third party.
            self._dissolve_loan(line_addr)
            return
        line = self._install_line(line_addr, State.MODIFIED, list(msg.data))
        self._trace("loan_back", line_addr, src=msg.src)
        obligation = self.obligations.get(line_addr)
        if obligation is not None:
            obligation.suspended = False
            line.pinned = True
            if obligation.fire_on_resume:
                obligation.fire_on_resume = False
                self.discharge(line_addr, reason="resume")
        self._serve_parked_mshr(line_addr)

    def _serve_parked_mshr(self, line_addr: int) -> None:
        mshr = self.mshrs.get(line_addr)
        if mshr is None or mshr.txn is not None:
            return
        done = mshr.take_waiter()
        self.mshrs.pop(line_addr, None)
        if done is None:
            return
        current = self.hierarchy.peek(line_addr)
        op = mshr.pending_op
        if current is not None and current.is_owner:
            self._finish_filled_op(mshr, current, done)
        elif op is not None:
            # The line moved on (e.g. discharged on resume); replay.
            self.cpu_request(op, done)
        else:
            done(None)

    def _dissolve_loan(self, line_addr: int) -> None:
        self._count("loans_dissolved")
        self._cancel_obligation(line_addr)
        self.successor.pop(line_addr, None)
        mshr = self.mshrs.get(line_addr)
        if mshr is not None and mshr.txn is None:
            # The parked miss must now really go to the bus.
            self._issue_bus(mshr)

    # ==================================================================
    # Line installation and eviction
    # ==================================================================
    def _install_line(self, line_addr: int, state: State, data: list) -> CacheLine:
        existing = self.hierarchy.l2.lookup(line_addr, touch=False)
        if existing is not None:
            existing.state = state
            existing.data = data
            return existing
        line = CacheLine(line_addr, state, data)
        for victim in self.hierarchy.install(line):
            self._handle_eviction(victim)
        return line

    def _handle_eviction(self, victim: CacheLine) -> None:
        """Evicted lines with waiters hand off; dirty lines write back."""
        self._reset_link_if(victim.addr)
        if victim.addr in self.successor and victim.is_owner:
            # Eviction is treated as a time-out (paper §3.3): ownership
            # and data transfer to the next requestor in line.
            successor = self.successor.pop(victim.addr)
            self._cancel_obligation(victim.addr)
            self._count("evict_handoffs")
            self._trace("evict_handoff", victim.addr, to=successor)
            msg = DataMessage(
                DataKind.LINE,
                victim.addr,
                src=self.node_id,
                dst=successor,
                data=list(victim.data),
                grant=GrantState.EXCLUSIVE,
            )
            self.crossbar.send(msg)
            return
        if victim.state is State.TEAROFF:
            return  # tear-offs vanish silently
        if victim.dirty:
            # Functionally update memory immediately so a concurrent read
            # cannot observe stale data; the WRITEBACK transaction models
            # the bus/timing cost.
            self.bus.memory.write_line(victim.addr, list(victim.data))
            txn = BusTransaction(BusOp.WRITEBACK, victim.addr, self.node_id)
            txn.data = list(victim.data)
            self._count("writebacks")
            self.bus.request(txn)

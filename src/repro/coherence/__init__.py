"""MOESI snooping coherence: per-node controllers and MSHRs."""

from repro.coherence.controller import CacheController, Obligation
from repro.coherence.mshr import Mshr

__all__ = ["CacheController", "Mshr", "Obligation"]

"""Miss status holding registers.

One MSHR tracks one outstanding line request.  The interesting life-cycle
is the queued LPRFO: after a tear-off response completes the CPU's LL, the
MSHR *stays open* — the node is sitting in the distributed queue waiting
for real ownership — while the processor spins locally on the tear-off
copy (paper §3.3).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.cpu.ops import Op
from repro.interconnect.messages import BusOp, BusTransaction


class Mshr:
    """State of one outstanding miss."""

    __slots__ = (
        "line_addr",
        "cpu_op",
        "pending_op",
        "done_cb",
        "txn",
        "bus_op",
        "issued",
        "queued",
        "tearoff_done",
        "start_time",
    )

    def __init__(
        self,
        line_addr: int,
        cpu_op: Optional[Op],
        done_cb: Optional[Callable[[Any], None]],
        start_time: int,
    ) -> None:
        self.line_addr = line_addr
        #: the CPU operation currently blocked on this miss (None once the
        #: CPU has been unblocked, e.g. by a tear-off).
        self.cpu_op = cpu_op
        #: the last detached CPU operation (kept so fill completion knows
        #: what to finish after :meth:`take_waiter`).
        self.pending_op: Optional[Op] = None
        self.done_cb = done_cb
        self.txn: Optional[BusTransaction] = None
        #: bus operation this miss uses (remembered for squash/reissue)
        self.bus_op: Optional[BusOp] = None
        self.issued = False
        #: True when the bus told us our response is deferred: we hold a
        #: position in the distributed queue for this line.
        self.queued = False
        self.tearoff_done = False
        self.start_time = start_time

    @property
    def has_waiter(self) -> bool:
        """Is a CPU operation still blocked on this miss?"""
        return self.done_cb is not None

    def take_waiter(self) -> Optional[Callable[[Any], None]]:
        """Detach and return the CPU callback (caller invokes it)."""
        cb = self.done_cb
        self.done_cb = None
        self.pending_op = self.cpu_op
        self.cpu_op = None
        return cb

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.issued:
            flags.append("issued")
        if self.queued:
            flags.append("queued")
        if self.tearoff_done:
            flags.append("tearoff")
        kind = self.cpu_op.kind if self.cpu_op is not None else "-"
        return f"<Mshr {self.line_addr:#x} {kind} {' '.join(flags)}>"

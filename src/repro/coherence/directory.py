"""Home-node MOESI directory protocol over the point-to-point mesh.

The scalable alternative to the broadcast snooping bus
(``SystemConfig(interconnect="directory")``).  Every cache line has a
*home node* (address-interleaved across the mesh); the home keeps a
directory entry — owner pointer, sharer vector, and the distributed
lock queue's bookkeeping — and coherence requests resolve by targeted
messages instead of broadcast:

* **GetS** — forwarded to the owner (3-hop: requester → home → owner →
  requester) when one exists, else supplied by the home's memory;
* **GetX / Upgrade** — the home sends invalidations to every sharer,
  *collects the acknowledgements*, then forwards to the owner (who
  supplies exclusively, or lends under queue retention) or supplies
  from memory;
* **LPRFO / QolbEnq** (the paper's deferrable, low-priority ownership
  requests) — forwarded to the **tail of the line's waiter queue** (or
  the owner when the queue is empty).  The tail claims the requester as
  its successor exactly as it would from observed bus order, so the
  paper's distributed queue forms without a broadcast medium — this is
  the directory realization of the generality claim in paper §3.2, and
  tear-off copies travel point-to-point from the deferring owner.

The class is request/complete-compatible with
:class:`~repro.interconnect.bus.AddressBus`, and talks to the
*unchanged* :class:`~repro.coherence.controller.CacheController` snoop
interface: a forwarded request invokes the target's ``snoop`` and the
reply (supply / defer / retry) is interpreted at the home.  Per-line
serialization at the home replaces the bus's global order: while a
non-deferred fill is in flight the line is *busy* and later requests
park, which is what keeps concurrent misses coherent; a deferral
releases the line immediately so the queue can keep forming.

Ownership hand-offs that bypass the home (queue hand-offs, eviction
transfers, loan returns, pushed protected data) are observed on the
fabric via :class:`~repro.interconnect.network.MeshNetwork`'s ownership
listener, standing in for the directory-update messages a hardware
protocol would piggyback on those transfers.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set

from repro.engine.simulator import Simulator
from repro.engine.stats import StatsRegistry
from repro.interconnect.bus import BusClient
from repro.interconnect.messages import (
    DEFERRABLE_OPS,
    MEMORY_NODE,
    BusOp,
    BusTransaction,
    DataKind,
    DataMessage,
    GrantState,
)
from repro.interconnect.network import VC_REQ, MeshNetwork
from repro.mem.mainmemory import MainMemory

#: transactions that move a cache line to the requester
DATA_OPS = frozenset({BusOp.GETS, BusOp.GETX, BusOp.LPRFO, BusOp.QOLB_ENQ})


class DirectoryEntry:
    """Per-line home-node state."""

    __slots__ = ("owner", "sharers", "waiters", "tail", "busy_txn", "pending")

    def __init__(self) -> None:
        #: node holding the line in an owner state (M/E/O), or None
        self.owner: Optional[int] = None
        #: nodes holding shared copies (conservative: silent evictions
        #: leave stale entries, pruned at the next invalidation round)
        self.sharers: Set[int] = set()
        #: deferred requesters, in queue order (head = next to be served)
        self.waiters: List[int] = []
        #: node new deferrable requests are forwarded to (queue tail)
        self.tail: Optional[int] = None
        #: txn_id of the in-flight fill keeping the line busy
        self.busy_txn: Optional[int] = None
        #: requests parked behind the busy line, in arrival order
        self.pending: Deque[BusTransaction] = deque()


class DirectoryInterconnect:
    """Home-node directory + request transport; AddressBus-compatible."""

    def __init__(
        self,
        sim: Simulator,
        stats: StatsRegistry,
        memory: MainMemory,
        network: MeshNetwork,
        n_nodes: int,
        lookup_cycles: int = 6,
        retry_delay: int = 20,
        queue_retention: bool = False,
    ) -> None:
        self.sim = sim
        self.stats = stats
        self.memory = memory
        self.network = network
        self.n_nodes = n_nodes
        self.lookup_cycles = lookup_cycles
        self.retry_delay = retry_delay
        #: does the protocol variant preserve the queue across RFOs?
        #: (a system-wide protocol property, mirrored from the policy)
        self.queue_retention = queue_retention
        self._clients: Dict[int, BusClient] = {}
        self._entries: Dict[int, DirectoryEntry] = {}
        self._next_txn_id = 0
        #: optional trace hooks, signature-compatible with the bus
        #: observer and the controller tracer respectively
        self.observer: Optional[Callable[..., None]] = None
        self.tracer: Optional[Callable[..., None]] = None
        network.ownership_listener = self._note_ownership
        # Counters on the per-request path, pre-resolved once; rare
        # outcome counters (NACKs, breakdowns, ...) stay lazy so they
        # only appear in snapshots when they actually fire.
        self._c_requests = stats.counter("dir.requests")
        self._c_lookups = stats.counter("dir.lookups")
        self._c_transactions = stats.counter("dir.transactions")
        self._c_forwards = stats.counter("dir.forwards")
        self._h_resolve_wait = stats.histogram("dir.resolve_wait")
        self._w_txn_rate = stats.windowed("dir.txn_rate")
        #: per-op completion counters ("dir.gets", ...), keyed by BusOp,
        #: filled on first use so only ops that complete are reported
        self._c_by_op: Dict[BusOp, Any] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, node_id: int, client: BusClient) -> None:
        self._clients[node_id] = client

    def home(self, line_addr: int) -> int:
        """The line's home node (line-interleaved across the mesh)."""
        return (line_addr // self.memory.amap.line_bytes) % self.n_nodes

    def _entry(self, line_addr: int) -> DirectoryEntry:
        entry = self._entries.get(line_addr)
        if entry is None:
            entry = self._entries[line_addr] = DirectoryEntry()
        return entry

    def _trace(self, kind: str, home: int, line_addr: int, **info: object) -> None:
        if self.tracer is not None:
            self.tracer(kind, self.sim.now, home, line_addr, info)

    # ------------------------------------------------------------------
    # Request side (controller-facing, AddressBus-compatible)
    # ------------------------------------------------------------------
    def request(self, txn: BusTransaction) -> None:
        """Route a transaction to its home node."""
        if txn.request_time is None:
            txn.request_time = self.sim.now
            txn.txn_id = self._next_txn_id
            self._next_txn_id += 1
        self._c_requests.value += 1
        home = self.home(txn.line_addr)
        self.network.route(
            txn.requester,
            home,
            line=txn.op is BusOp.WRITEBACK,
            vc=VC_REQ,
            callback=lambda: self._arrive(txn),
        )

    def transaction_complete(self, txn: BusTransaction) -> None:
        """The requester's fill landed: unblock the line.

        The request may still be live inside the home (parked behind a
        busy line, or re-scheduled by a NACK) if something else — a chain
        hand-off or a push — satisfied the requester first.  It must die
        here: resolving it later would act on a need that no longer
        exists, e.g. supply a stale memory copy over a pushed dirty line.
        """
        txn.cancelled = True
        entry = self._entry(txn.line_addr)
        if entry.busy_txn == txn.txn_id:
            entry.busy_txn = None
            self._pump(txn.line_addr)

    # ------------------------------------------------------------------
    # Home-side processing
    # ------------------------------------------------------------------
    def _arrive(self, txn: BusTransaction) -> None:
        if txn.cancelled:
            self._drop_cancelled(txn)
            return
        self._c_lookups.value += 1
        self.sim.schedule(self.lookup_cycles, self._resolve, txn)

    def _resolve(self, txn: BusTransaction) -> None:
        if txn.cancelled:
            self._drop_cancelled(txn)
            return
        line_addr = txn.line_addr
        entry = self._entry(line_addr)
        if (
            entry.busy_txn is not None
            and entry.busy_txn != txn.txn_id
            and txn.op is not BusOp.WRITEBACK
        ):
            # A fill for this line is in flight; park behind it (the
            # directory analogue of the bus's per-line blocking).
            entry.pending.append(txn)
            self.stats.counter("dir.line_conflicts").inc()
            return
        if txn.issue_time is None:
            txn.issue_time = self.sim.now
            if txn.request_time is not None:
                self._h_resolve_wait.add(self.sim.now - txn.request_time)
        if self.tracer is not None:
            self._trace("dir_lookup", self.home(line_addr), line_addr,
                        op=txn.op.value, requester=txn.requester)
        if txn.op is BusOp.WRITEBACK:
            self._resolve_writeback(txn, entry)
        elif txn.op is BusOp.GETS:
            self._resolve_gets(txn, entry)
        elif txn.op is BusOp.UPGRADE:
            self._resolve_upgrade(txn, entry)
        else:  # GETX / LPRFO / QOLB_ENQ: ownership requests
            self._resolve_ownership(txn, entry)

    def _resolve_writeback(self, txn: BusTransaction, entry: DirectoryEntry) -> None:
        if txn.data is None:
            raise RuntimeError(f"writeback {txn} carries no data")
        self.memory.write_line(txn.line_addr, txn.data)
        if entry.owner == txn.requester:
            entry.owner = None
        self.stats.counter("dir.writebacks").inc()
        self._finish(txn, supplier=None, shared=False, deferred=False)

    # ------------------------------- GetS -----------------------------
    def _resolve_gets(self, txn: BusTransaction, entry: DirectoryEntry) -> None:
        if entry.owner == txn.requester:
            entry.owner = None  # stale pointer: the requester lost it
        if entry.owner is not None:
            self._forward(txn, entry.owner, role="owner")
            return
        if entry.waiters:
            # No owner on record but a waiter chain exists: the line is
            # mid-hand-off between chain nodes.  Memory must not supply
            # a second copy; wait for the transfer to land.
            self._retry(txn)
            return
        entry.sharers.discard(txn.requester)
        shared = bool(entry.sharers)
        grant = GrantState.SHARED if shared else GrantState.EXCLUSIVE
        if shared:
            entry.sharers.add(txn.requester)
        else:
            # An exclusive-clean grant: the receiver may silently write,
            # so the directory must treat it as the owner.
            entry.owner = txn.requester
        entry.busy_txn = txn.txn_id
        self._supply_from_memory(txn, grant)
        self._finish(txn, supplier=None, shared=shared, deferred=False)

    # ----------------------------- Upgrade ----------------------------
    def _resolve_upgrade(self, txn: BusTransaction, entry: DirectoryEntry) -> None:
        requester = txn.requester
        valid = requester in entry.sharers or entry.owner == requester
        if not valid:
            # The requester is not on record: a competing request won the
            # line and its invalidation (which squashes this upgrade at
            # the requester) is still in flight.  Finishing now would
            # grant write permission the requester no longer has — hold
            # the request until the squash cancels it.
            self.stats.counter("dir.stale_upgrades").inc()
            self._retry(txn)
            return
        targets = set(entry.sharers)
        if entry.owner is not None:
            targets.add(entry.owner)
        targets.discard(requester)
        entry.sharers.clear()
        # Serialize the invalidation window: on the bus the upgrade's
        # snoop is atomic, but here the acks take time — a fill resolved
        # mid-window could install data the upgrade is about to kill.
        entry.busy_txn = txn.txn_id
        self._collect_invalidations(
            txn, sorted(targets), lambda: self._after_upgrade(txn)
        )

    def _after_upgrade(self, txn: BusTransaction) -> None:
        entry = self._entry(txn.line_addr)
        if txn.cancelled:
            self._drop_cancelled(txn)
            return
        entry.owner = txn.requester
        self._finish(txn, supplier=None, shared=False, deferred=False)
        # Ownership changed hands without the owner supplying data: the
        # queue (if any) reacts exactly as it would to a snooped upgrade.
        self._queue_breakdown(txn, supplied=False)
        # Permission-only: no fill will call transaction_complete, so the
        # home releases the line itself.
        if entry.busy_txn == txn.txn_id:
            entry.busy_txn = None
            self._pump(txn.line_addr)

    # ------------------------- ownership requests ---------------------
    def _resolve_ownership(self, txn: BusTransaction, entry: DirectoryEntry) -> None:
        requester = txn.requester
        if entry.owner == requester:
            entry.owner = None  # stale: it is requesting the line again
        if txn.op in DEFERRABLE_OPS and requester in entry.waiters:
            # Reissue by a node already queued (squash path): its old
            # position is dead; it rejoins at the tail.
            entry.waiters.remove(requester)
            if entry.tail == requester:
                entry.tail = entry.waiters[-1] if entry.waiters else None
        entry.busy_txn = txn.txn_id
        targets = sorted(entry.sharers - {requester})
        entry.sharers.clear()
        self._collect_invalidations(
            txn, targets, lambda: self._after_invals(txn)
        )

    def _after_invals(self, txn: BusTransaction) -> None:
        entry = self._entry(txn.line_addr)
        if txn.cancelled:
            self._drop_cancelled(txn)
            return
        if txn.op in DEFERRABLE_OPS and entry.waiters:
            # The queue exists: the tail claims the requester as its
            # successor, keeping hand-off order = request order.
            self._forward(txn, entry.tail, role="tail")
            return
        if entry.owner is not None:
            self._forward(txn, entry.owner, role="owner")
            return
        if entry.waiters:
            # Ownerless but a chain exists (hand-off in flight): a regular
            # RFO must wait for the transfer rather than tap memory.
            self._retry(txn)
            return
        entry.owner = txn.requester
        self._supply_from_memory(txn, GrantState.EXCLUSIVE)
        self._finish(txn, supplier=None, shared=False, deferred=False)

    # ------------------------------------------------------------------
    # Forwarding (the 3-hop path) and reply interpretation
    # ------------------------------------------------------------------
    def _forward(self, txn: BusTransaction, target: int, role: str) -> None:
        if txn.op in DATA_OPS and txn.op not in DEFERRABLE_OPS or role == "owner":
            entry = self._entry(txn.line_addr)
            entry.busy_txn = txn.txn_id
        self._c_forwards.value += 1
        self._trace("dir_forward", self.home(txn.line_addr), txn.line_addr,
                    target=target, role=role, op=txn.op.value)
        home = self.home(txn.line_addr)
        self.network.route(
            home,
            target,
            line=False,
            vc=VC_REQ,
            callback=lambda: self._forward_arrived(txn, target, role),
        )

    def _forward_arrived(self, txn: BusTransaction, target: int, role: str) -> None:
        entry = self._entry(txn.line_addr)
        if txn.cancelled:
            self._drop_cancelled(txn)
            return
        reply = self._clients[target].snoop(txn)
        if reply.supply:
            self._on_supplied(txn, entry, target, reply.shared)
        elif reply.defer and txn.op in DEFERRABLE_OPS:
            self._on_deferred(txn, entry, target)
        elif reply.retry:
            self._retry(txn)
        else:
            self._on_forward_missed(txn, entry, target, role)

    def _on_supplied(
        self,
        txn: BusTransaction,
        entry: DirectoryEntry,
        target: int,
        shared: bool,
    ) -> None:
        if txn.op is BusOp.GETS:
            if shared:
                entry.sharers.add(txn.requester)
                held = self._clients[target].hierarchy.peek(txn.line_addr)
                if held is None or not held.is_owner:
                    # The owner downgraded clean-exclusive to plain
                    # shared (E -> S), relinquishing ownership; memory is
                    # current again.  Forgetting this would leave a stale
                    # owner pointer that later invalidations skip.
                    if entry.owner == target:
                        entry.owner = None
                        entry.sharers.add(target)
                # else: M -> O, the target remains the owner of record.
            # else: a tear-off satisfied the read; no coherent copy moved.
        # Ownership ops: the fabric's ownership listener moved the owner
        # pointer when the target committed the line to the requester.
        self._finish(txn, supplier=target, shared=shared, deferred=False)
        if txn.op is BusOp.GETX:
            self._queue_breakdown(txn, supplied=True)

    def _on_deferred(
        self, txn: BusTransaction, entry: DirectoryEntry, target: int
    ) -> None:
        if self._clients[target].successor.get(txn.line_addr) != txn.requester:
            # The target deferred but could not link the requester into
            # the hand-off chain: it still holds an undischarged successor
            # claim from an earlier pass through the queue.  (Re-enqueueing
            # while a previous position is pending is legal, so under
            # retention the claim graph can close into a ring with no free
            # tail.)  Recording the waiter anyway would orphan it — no
            # controller would ever hand it the line.  NACK instead; a
            # claim slot opens once the chain advances.
            if entry.busy_txn == txn.txn_id:
                entry.busy_txn = None
            self.stats.counter("dir.defer_nacks").inc()
            self._trace("dir_nack", self.home(txn.line_addr), txn.line_addr,
                        at=target, requester=txn.requester)
            self._retry(txn)
            self._pump(txn.line_addr)
            return
        entry.waiters.append(txn.requester)
        entry.tail = txn.requester
        if entry.busy_txn == txn.txn_id:
            # A deferred response releases the line immediately: the
            # queue must keep forming behind it.
            entry.busy_txn = None
        self.stats.counter("dir.deferred").inc()
        self._trace("dir_defer", self.home(txn.line_addr), txn.line_addr,
                    at=target, requester=txn.requester,
                    depth=len(entry.waiters))
        self._finish(txn, supplier=target, shared=False, deferred=True)
        self._pump(txn.line_addr)

    def _on_forward_missed(
        self, txn: BusTransaction, entry: DirectoryEntry, target: int, role: str
    ) -> None:
        """The forward target no longer answers for the line.

        For an upgrade-style invalidation this is the normal ack.  For a
        data request it means stale directory state: a silently evicted
        clean owner, or a squashed queue tail.  Repair and re-resolve.
        """
        self.stats.counter("dir.stale_forwards").inc()
        txn.retries += 1
        if txn.retries > 10_000:
            raise RuntimeError(f"{txn} chased stale state {txn.retries} times")
        if role == "tail":
            # The queue broke down under us (squash); forget it and let
            # the request resolve against the owner.
            entry.waiters.clear()
            entry.tail = None
        elif entry.owner == target:
            entry.owner = None
        self._resolve(txn)

    # ------------------------------------------------------------------
    # Invalidation collection
    # ------------------------------------------------------------------
    def _collect_invalidations(
        self,
        txn: BusTransaction,
        targets: List[int],
        done: Callable[[], None],
    ) -> None:
        """Invalidate ``targets``, gather acks at the home, then ``done``.

        Each invalidation runs the target's ``snoop`` (dropping shared
        copies and squashing raced upgrades) and acknowledges back to
        the home; ``done`` fires once every ack has returned.
        """
        if not targets:
            done()
            return
        home = self.home(txn.line_addr)
        remaining = {"n": len(targets)}
        self.stats.counter("dir.invalidations").inc(len(targets))
        self._trace("dir_inval", home, txn.line_addr,
                    targets=len(targets), op=txn.op.value)

        def make_inval(node: int) -> Callable[[], None]:
            def inval() -> None:
                self._clients[node].snoop(txn)
                self.network.route(
                    node, home, line=False, vc=VC_REQ, callback=ack
                )
            return inval

        def ack() -> None:
            remaining["n"] -= 1
            if remaining["n"] == 0:
                done()

        for node in targets:
            self.network.route(
                home, node, line=False, vc=VC_REQ, callback=make_inval(node)
            )

    # ------------------------------------------------------------------
    # Queue breakdown (post-snoop phase)
    # ------------------------------------------------------------------
    def _queue_breakdown(self, txn: BusTransaction, supplied: bool) -> None:
        """Tell queued waiters a regular RFO won the line.

        The bus broadcasts this for free; the directory notifies the
        registered waiters point-to-point.  Without queue retention they
        squash and reissue (and the home forgets the dead queue); with
        retention the queue survives untouched.
        """
        entry = self._entry(txn.line_addr)
        if not entry.waiters:
            return
        home = self.home(txn.line_addr)
        waiters = [w for w in entry.waiters if w != txn.requester]
        if not self.queue_retention:
            entry.waiters.clear()
            entry.tail = None
            self.stats.counter("dir.breakdowns").inc()
            self._trace("dir_breakdown", home, txn.line_addr,
                        cause=txn.requester, waiters=len(waiters))
        for node in waiters:
            client = self._clients[node]
            self.network.route(
                home,
                node,
                line=False,
                vc=VC_REQ,
                callback=lambda client=client: client.post_snoop(
                    txn, supplied=supplied, deferred=False
                ),
            )

    # ------------------------------------------------------------------
    # Supply, retry, completion
    # ------------------------------------------------------------------
    def _supply_from_memory(self, txn: BusTransaction, grant: GrantState) -> None:
        home = self.home(txn.line_addr)
        data = self.memory.read_line(txn.line_addr)
        msg = DataMessage(
            DataKind.LINE,
            txn.line_addr,
            src=MEMORY_NODE,
            dst=txn.requester,
            data=data,
            grant=grant,
            txn_id=txn.txn_id,
        )
        self.stats.counter("dir.memory_supplies").inc()
        self.sim.schedule(
            self.memory.line_latency(),
            lambda: self.network.send(msg, origin=home),
        )

    def _retry(self, txn: BusTransaction) -> None:
        """NACK: the line is in flight; re-resolve shortly."""
        txn.retries += 1
        self.stats.counter("dir.retries").inc()
        if txn.retries > 10_000:
            raise RuntimeError(f"{txn} retried {txn.retries} times; wedged")
        self.sim.schedule(self.retry_delay, self._resolve, txn)

    def _finish(
        self,
        txn: BusTransaction,
        supplier: Optional[int],
        shared: bool,
        deferred: bool,
    ) -> None:
        self._c_transactions.value += 1
        op_counter = self._c_by_op.get(txn.op)
        if op_counter is None:
            op_counter = self._c_by_op[txn.op] = self.stats.counter(
                f"dir.{txn.op.value}"
            )
        op_counter.value += 1
        self._w_txn_rate.record(self.sim.now)
        client = self._clients.get(txn.requester)
        if client is not None:
            client.on_own_issue(txn, supplier, shared, deferred)
        if self.observer is not None:
            self.observer(self.sim.now, txn, supplier, shared, deferred)

    def _drop_cancelled(self, txn: BusTransaction) -> None:
        self.stats.counter("dir.cancelled").inc()
        entry = self._entry(txn.line_addr)
        if entry.busy_txn == txn.txn_id:
            entry.busy_txn = None
        # Always pump: a cancelled transaction may have been the one the
        # pump just popped, with live requests still parked behind it.
        self._pump(txn.line_addr)

    def _pump(self, line_addr: int) -> None:
        entry = self._entry(line_addr)
        if entry.busy_txn is not None or not entry.pending:
            return
        txn = entry.pending.popleft()
        self.sim.schedule(0, self._resolve, txn)

    # ------------------------------------------------------------------
    # Fabric ownership updates
    # ------------------------------------------------------------------
    def _note_ownership(self, line_addr: int, node: int) -> None:
        """An ownership-carrying transfer committed ``line_addr`` to ``node``."""
        entry = self._entry(line_addr)
        entry.owner = node
        entry.sharers.discard(node)
        if node in entry.waiters:
            entry.waiters.remove(node)
            if entry.tail == node:
                entry.tail = entry.waiters[-1] if entry.waiters else None

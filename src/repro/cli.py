"""Command-line interface: ``python -m repro <command>``.

Gives the paper's experiments a front door::

    python -m repro table1                # print the simulated system
    python -m repro table2                # benchmark models
    python -m repro table3 -p 16 raytrace # (a slice of) Table 3
    python -m repro figure 4              # sequence diagram of Fig. 2/3/4
    python -m repro run raytrace --primitive iqolb -p 16
    python -m repro trace fig4 --out run.trace.json   # Perfetto-loadable
    python -m repro stats raytrace -p 16  # latency percentiles + manifest
    python -m repro validate run.trace.json --schema tests/schemas/...
    python -m repro fairness --primitive tts iqolb qolb
    python -m repro policies              # list protocol policies
    python -m repro check --smoke -j 8    # bounded model check the ladder
    python -m repro check --replay ce.json --trace ce.trace.json

Tables and reports go to **stdout**; progress/cache diagnostics go to
**stderr**, so stdout can be piped into files or ``jq`` cleanly.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.registry import interconnect_names, policy_names
from repro.harness.cache import ResultCache
from repro.harness.config import SystemConfig
from repro.harness.diagram import render_sequence_diagram
from repro.harness.experiment import PRIMITIVES, run_app, table3_with_stats
from repro.harness.fairness import measure_lock_fairness
from repro.harness.tables import (
    render_table,
    render_table1,
    render_table2,
    render_table2_parameters,
    render_table3,
)
from repro.harness.traces import (
    SCENARIOS,
    figure2_scenario,
    figure3_scenario,
    figure4_scenario,
)
from repro.telemetry import (
    ChromeTraceSink,
    JsonlSink,
    SchemaError,
    TraceDispatcher,
    infer_schema_path,
    validate_file,
    write_metrics,
)
from repro.workloads.splash import APP_ORDER


def _cmd_table1(args: argparse.Namespace) -> int:
    print(render_table1(SystemConfig()))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    print(render_table2())
    print()
    print(render_table2_parameters())
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    apps = args.apps or APP_ORDER
    unknown = [app for app in apps if app not in APP_ORDER]
    if unknown:
        raise SystemExit(
            f"unknown benchmark(s) {', '.join(unknown)} "
            f"(choose from {', '.join(APP_ORDER)})"
        )
    cache = None if args.no_cache else ResultCache()
    rows, stats = table3_with_stats(
        n_processors=args.processors,
        apps=apps,
        n_jobs=args.jobs,
        cache=cache,
        metrics_out=args.metrics_out,
    )
    print(render_table3(rows, n_processors=args.processors))
    # Diagnostics to stderr: piped stdout stays clean table data.
    stats.print_summary()
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    scenario = {
        2: lambda: (figure2_scenario(), 2),
        3: lambda: (figure3_scenario(), 3),
        4: lambda: (figure4_scenario(), 3),
    }[args.number]
    result, n_processors = scenario()
    print(
        render_sequence_diagram(
            result.recorder, result.target_line, n_processors
        )
    )
    print()
    for key, value in result.summary.items():
        print(f"  {key}: {value}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.harness.experiment import app_signature
    from repro.harness.report import render_report

    result = run_app(
        args.app,
        args.primitive,
        args.processors,
        config_overrides={"interconnect": args.interconnect},
    )
    print(render_report(result))
    signature = app_signature(
        args.app,
        args.primitive,
        args.processors,
        config_overrides={"interconnect": args.interconnect},
    )
    if signature is not None:
        # the same description `repro predict` models — see docs/prediction.md
        print(
            f"signature: {signature.kind} {signature.workload} on "
            f"{signature.fabric}, {signature.n_processors}p, "
            f"{signature.total_ops} ops over {signature.n_locks} lock(s), "
            f"cs={signature.cs_accesses}+{signature.cs_compute}c, "
            f"local={signature.local_compute}c"
        )
    if args.metrics_out:
        write_metrics(args.metrics_out, [result])
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.format == "chrome":
        sink = ChromeTraceSink(args.out)
    else:
        sink = JsonlSink(args.out)
    if args.scenario in SCENARIOS:
        scenario = SCENARIOS[args.scenario]
        result = scenario(sinks=[sink])
        sink.close()
        events = len(result.recorder.events)
        for key, value in result.summary.items():
            print(f"  {key}: {value}")
    elif args.scenario in APP_ORDER:
        dispatcher = TraceDispatcher()
        dispatcher.attach(sink)
        result = run_app(
            args.scenario,
            args.primitive,
            args.processors,
            config_overrides={"interconnect": args.interconnect},
            telemetry=dispatcher,
        )
        dispatcher.close()
        events = dispatcher.events_dispatched
        print(f"  cycles: {result.cycles}")
        print(f"  bus transactions: {result.bus_transactions}")
    else:
        raise SystemExit(
            f"unknown scenario {args.scenario!r} "
            f"(choose from {', '.join(SCENARIOS)} or "
            f"{', '.join(APP_ORDER)})"
        )
    print(
        f"wrote {events} events to {args.out} ({args.format})",
        file=sys.stderr,
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.harness.report import histogram_rows

    result = run_app(
        args.app,
        args.primitive,
        args.processors,
        config_overrides={"interconnect": args.interconnect},
    )
    rows = histogram_rows(result)
    if rows:
        print(
            render_table(
                ["histogram", "n", "min", "mean", "p50", "p90", "p99", "max"],
                rows,
                title=(
                    f"{args.app} on {args.primitive}, "
                    f"{args.processors} processors — latency distributions "
                    f"(cycles)"
                ),
            )
        )
    else:
        print("no histogram samples recorded")
    manifest = result.manifest
    if manifest is not None:
        print()
        print("manifest:")
        print(f"  config hash: {manifest.config_hash[:16]}…")
        print(f"  version: {manifest.version}")
        print(f"  events fired: {manifest.events_fired}")
        print(f"  events/host-s: {manifest.events_per_host_s:,.0f}")
        print(f"  queue high water: {manifest.queue_high_water}")
        print(f"  wall time: {manifest.wall_time_s:.3f}s")
    if args.metrics_out:
        write_metrics(args.metrics_out, [result])
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        schema = args.schema
        if schema is None:
            # self-identifying artifacts name their schema in the
            # document; resolve it through the registry
            schema = infer_schema_path(args.file)
        records = validate_file(args.file, schema)
    except (OSError, ValueError, SchemaError) as exc:
        # unreadable file, malformed JSON, or schema mismatch
        print(f"FAIL {args.file}: {exc}", file=sys.stderr)
        return 1
    print(f"OK {args.file}: {records} record(s) match {schema}")
    return 0


def _cmd_fairness(args: argparse.Namespace) -> int:
    reports = [
        measure_lock_fairness(
            primitive,
            n_processors=args.processors,
            config_overrides={"interconnect": args.interconnect},
        )
        for primitive in args.primitive
    ]
    print(
        render_table(
            ["primitive", "acquires", "mean wait", "max wait",
             "wait CV", "FIFO inversions", "Jain idx"],
            [r.row() for r in reports],
            title=f"Lock fairness, {args.processors} processors",
        )
    )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    import json
    import os
    import re

    from repro.check import (
        Counterexample,
        replay,
        run_matrix,
        smoke_jobs,
    )
    from repro.check.report import from_explore_violation

    if args.replay:
        counterexample = Counterexample.load(args.replay)
        print(f"replaying: {counterexample.describe()}", file=sys.stderr)
        outcome = replay(counterexample, trace_out=args.trace)
        if args.trace:
            print(f"trace written to {args.trace}", file=sys.stderr)
        if outcome.violation is None:
            print(f"NOT REPRODUCED: run ended {outcome.status} "
                  f"with no violation")
            return 1
        print(f"reproduced: [{outcome.violation['oracle']}] "
              f"{outcome.violation['message']}")
        return 0

    jobs = smoke_jobs(
        scenario=args.scenario,
        primitives=args.primitives,
        interconnects=args.interconnects,
        n_processors=args.processors,
        acquires_per_proc=args.acquires,
        max_schedules=args.max_schedules,
        max_steps=args.max_steps,
        max_depth=args.max_depth,
        fault_seeds=args.fault_seeds if args.faults else None,
        mutation=args.mutate,
        timeout_cycles=args.timeout_cycles,
        max_cycles=args.max_cycles,
        reduction=args.reduction,
    )
    print(f"exploring {len(jobs)} cell(s) with {args.jobs} worker(s)",
          file=sys.stderr)
    results = run_matrix(jobs, n_jobs=args.jobs)

    rows = []
    counterexamples: List[str] = []
    fault_stats: dict = {}
    for result in results:
        rows.append([
            result.label,
            f"{result.interleavings:,}",
            str(len(result.violations)),
            f"{result.choice_points:,}",
            f"{result.distinct_states:,}",
            f"{result.pruned:,}",
            f"{result.pruned_sleep + result.pruned_dpor:,}",
            str(result.max_depth_seen),
            f"{result.wall_time_s:.1f}s",
        ])
        for key, value in result.fault_stats.items():
            fault_stats[key] = fault_stats.get(key, 0) + value
        if result.violations and args.out:
            os.makedirs(args.out, exist_ok=True)
            slug = re.sub(r"[^A-Za-z0-9._-]+", "-", result.label)
            for index, record in enumerate(result.violations):
                counterexample = from_explore_violation(result.spec, record)
                path = os.path.join(args.out, f"ce-{slug}-{index}.json")
                counterexample.save(path)
                counterexamples.append(path)
    print(render_table(
        ["cell", "interleavings", "viol", "choice pts", "states",
         "pruned", "por", "depth", "wall"],
        rows,
        title=f"bounded model check (reduction={args.reduction})",
    ))
    total = sum(r.interleavings for r in results)
    violations = sum(len(r.violations) for r in results)
    print(f"\ntotal: {total:,} interleavings, {violations} violation(s)")
    if fault_stats:
        exercised = {k: v for k, v in sorted(fault_stats.items()) if v}
        print("fault-path counters:", json.dumps(exercised))
    for record in results:
        for violation in record.violations:
            print(f"  {record.label}: {violation['violation']}")
    for path in counterexamples:
        print(f"  counterexample: {path}", file=sys.stderr)
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        report_path = os.path.join(args.out, "check-report.json")
        with open(report_path, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "kind": "repro-check-report",
                    "reduction": args.reduction,
                    "total_interleavings": total,
                    "total_violations": violations,
                    "total_distinct_states": sum(
                        r.distinct_states for r in results
                    ),
                    "fault_stats": fault_stats,
                    "counterexamples": counterexamples,
                    "cells": [
                        {
                            "label": r.label,
                            "spec": r.spec.to_dict(),
                            "interleavings": r.interleavings,
                            "violations": r.violations,
                            "statuses": r.statuses,
                            "choice_points": r.choice_points,
                            "distinct_states": r.distinct_states,
                            "pruned": r.pruned,
                            "pruned_sleep": r.pruned_sleep,
                            "pruned_dpor": r.pruned_dpor,
                            "reduction": r.reduction,
                            "frontier_left": r.frontier_left,
                            "max_depth_seen": r.max_depth_seen,
                            "handoffs": r.handoffs,
                            "wall_time_s": r.wall_time_s,
                            "fault_stats": r.fault_stats,
                        }
                        for r in results
                    ],
                },
                fh, indent=2, sort_keys=True,
            )
            fh.write("\n")
        print(f"report written to {report_path}", file=sys.stderr)
    if args.expect_violation:
        if violations == 0:
            print("FAIL: expected the checker to find a violation "
                  "(seeded mutation not caught)", file=sys.stderr)
            return 1
        return 0
    return 1 if violations else 0


#: the 5-rung primitive ladder the predict tables default to
PREDICT_LADDER = ("tts", "aggressive", "delayed", "iqolb", "qolb")


def _parse_grid(spec: str) -> List[int]:
    """``procs=1..128`` -> doubling processor counts [1, 2, ..., 128]."""
    try:
        axis, _, span = spec.partition("=")
        lo_text, _, hi_text = span.partition("..")
        lo, hi = int(lo_text), int(hi_text)
    except ValueError:
        raise SystemExit(f"bad --grid {spec!r}: expected procs=LO..HI")
    if axis != "procs" or lo < 1 or hi < lo:
        raise SystemExit(f"bad --grid {spec!r}: expected procs=LO..HI")
    values = []
    n = lo
    while n < hi:
        values.append(n)
        n *= 2
    values.append(hi)
    return values


def _predict_params(args: argparse.Namespace):
    """Load (or fit) calibration; never touches the simulator."""
    import pathlib

    from repro.predict import (
        default_params,
        fit_from_artifacts,
        load_calibration,
    )

    path = pathlib.Path(args.calibration)
    if path.exists():
        return load_calibration(path)
    try:
        params = fit_from_artifacts(pathlib.Path("."))
        print(
            f"note: {path} not found; calibrated from committed artifacts",
            file=sys.stderr,
        )
        return params
    except FileNotFoundError:
        print(
            f"note: {path} and benchmark artifacts not found; "
            f"using derived (uncalibrated) parameters",
            file=sys.stderr,
        )
        return default_params()


def _predict_signature(
    args: argparse.Namespace, primitive: str, fabric: str, procs: int
):
    from repro.harness.experiment import app_signature
    from repro.harness.signature import WorkloadSignature

    if args.app:
        return app_signature(
            args.app,
            primitive,
            procs,
            config_overrides={"interconnect": fabric},
        )
    return WorkloadSignature.micro_lock(
        primitive,
        fabric=fabric,
        n_processors=procs,
        acquires_per_proc=args.acquires,
        think_cycles=args.think,
    )


def _cmd_predict_validate(args: argparse.Namespace) -> int:
    import pathlib

    from repro.predict import check_gates, validate_artifacts, write_report

    try:
        report = validate_artifacts(pathlib.Path("."))
    except FileNotFoundError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    if args.out:
        write_report(report, pathlib.Path(args.out))
        print(f"report written to {args.out}", file=sys.stderr)
    if args.format == "json":
        import json

        print(json.dumps(report.payload(), indent=2, sort_keys=True))
    else:
        rows = [
            [
                cell.artifact,
                "/".join(str(part) for part in cell.key),
                f"{cell.observed_cycles:,.0f}",
                f"{cell.predicted_cycles:,.0f}",
                f"{cell.rel_error:+.1%}",
                cell.regime,
            ]
            for cell in sorted(
                report.cells, key=lambda c: -abs(c.rel_error)
            )
        ]
        print(
            render_table(
                ["artifact", "cell", "simulated", "predicted", "error",
                 "regime"],
                rows,
                title="Prediction vs. cached simulation",
            )
        )
        print()
        print(
            f"mean |rel error| {report.mean_abs_rel_error:.1%} over "
            f"{len(report.cells)} cells (max {report.max_abs_rel_error:.1%}); "
            f"taxonomy ordering preserved on "
            f"{report.ordering_agreement:.0%} of "
            f"{len(report.ordering)} groups"
        )
    problems = check_gates(
        report,
        max_mean_error=args.max_mean_error,
        min_agreement=args.min_ordering,
    )
    for problem in problems:
        print(f"GATE FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


def _cmd_predict(args: argparse.Namespace) -> int:
    import json
    import pathlib

    if args.calibrate:
        from repro.predict import fit_from_artifacts, save_calibration

        try:
            params = fit_from_artifacts(pathlib.Path("."))
        except FileNotFoundError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        out = pathlib.Path(args.out or args.calibration)
        save_calibration(params, out)
        print(
            f"calibration fitted from {', '.join(params.fitted_from)} "
            f"-> {out}"
        )
        return 0

    if args.validate:
        return _cmd_predict_validate(args)

    from repro.predict import predict

    params = _predict_params(args)
    primitives = args.primitive or list(PREDICT_LADDER)
    fabrics = args.fabric or ["bus", "directory"]
    procs_list = _parse_grid(args.grid) if args.grid else [args.processors]

    predictions = [
        predict(_predict_signature(args, primitive, fabric, procs), params)
        for fabric in fabrics
        for primitive in primitives
        for procs in procs_list
    ]
    if args.format == "json":
        print(
            json.dumps(
                [p.to_dict() for p in predictions], indent=2, sort_keys=True
            )
        )
        return 0

    workload = predictions[0].signature.workload
    if args.grid:
        by_row = {}
        for p in predictions:
            row = (p.signature.fabric, p.signature.primitive)
            by_row.setdefault(row, {})[p.signature.n_processors] = p
        rows = [
            [f"{fabric}/{primitive}"]
            + [f"{by_row[(fabric, primitive)][n].throughput:.2f}"
               for n in procs_list]
            for fabric in fabrics
            for primitive in primitives
        ]
        print(
            render_table(
                ["fabric/primitive"] + [str(n) for n in procs_list],
                rows,
                title=(
                    f"Predicted throughput (ops/kcycle), {workload} — "
                    f"analytical model, no simulation"
                ),
            )
        )
    else:
        rows = [
            [
                f"{p.signature.fabric}/{p.signature.primitive}",
                f"{p.throughput:.2f}",
                f"{p.per_op_cycles:,.0f}",
                f"{p.handoff_cycles:,.0f}",
                f"{p.effective_waiters:.1f}",
                p.regime,
            ]
            for p in predictions
        ]
        print(
            render_table(
                ["fabric/primitive", "ops/kcycle", "cycles/op",
                 "hand-off", "waiters", "regime"],
                rows,
                title=(
                    f"Predicted throughput, {workload}, "
                    f"{args.processors} processors"
                ),
            )
        )
    return 0


def _cmd_policies(args: argparse.Namespace) -> int:
    print("protocol policies:", ", ".join(policy_names()))
    print("primitives:", ", ".join(sorted(PRIMITIVES)))
    print("interconnects:", ", ".join(interconnect_names()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IQOLB (HPCA 2000) reproduction: experiments front door",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the simulated system (Table 1)")
    sub.add_parser("table2", help="print the benchmark models (Table 2)")

    p3 = sub.add_parser("table3", help="reproduce (a slice of) Table 3")
    # No argparse choices= here: with nargs="*" Python <= 3.12.7 rejects
    # the empty default against the choice list; validated in the handler.
    p3.add_argument("apps", nargs="*",
                    help=f"benchmarks (default: {' '.join(APP_ORDER)})")
    p3.add_argument("-p", "--processors", type=int, default=32)
    p3.add_argument("-j", "--jobs", type=int, default=1,
                    help="worker processes for the sweep (default 1)")
    p3.add_argument("--no-cache", action="store_true",
                    help="ignore and do not update the on-disk result cache")
    p3.add_argument("--metrics-out", metavar="PATH",
                    help="also write the per-cell grid as metrics JSON")

    pf = sub.add_parser("figure", help="render a sequence figure (2, 3 or 4)")
    pf.add_argument("number", type=int, choices=(2, 3, 4))

    pr = sub.add_parser("run", help="run one benchmark on one primitive")
    pr.add_argument("app", choices=APP_ORDER)
    pr.add_argument("--primitive", default="iqolb", choices=sorted(PRIMITIVES))
    pr.add_argument("-p", "--processors", type=int, default=32)
    pr.add_argument("--interconnect", default="bus",
                    choices=interconnect_names(),
                    help="coherence fabric (default: bus)")
    pr.add_argument("--metrics-out", metavar="PATH",
                    help="also write counters/histograms/manifest as JSON")

    pt = sub.add_parser(
        "trace", help="record a structured event trace of a run"
    )
    pt.add_argument("scenario",
                    help="fig2, fig3, fig4, or a benchmark name")
    pt.add_argument("--out", required=True, metavar="PATH",
                    help="trace file to write")
    pt.add_argument("--format", default="chrome",
                    choices=("chrome", "jsonl"),
                    help="chrome trace_event JSON (Perfetto-loadable) "
                         "or JSON Lines (default: chrome)")
    pt.add_argument("--primitive", default="iqolb",
                    choices=sorted(PRIMITIVES),
                    help="primitive for benchmark scenarios")
    pt.add_argument("-p", "--processors", type=int, default=8)
    pt.add_argument("--interconnect", default="bus",
                    choices=interconnect_names(),
                    help="coherence fabric for benchmark scenarios")

    ps = sub.add_parser(
        "stats", help="latency percentiles and run manifest for one run"
    )
    ps.add_argument("app", choices=APP_ORDER)
    ps.add_argument("--primitive", default="iqolb", choices=sorted(PRIMITIVES))
    ps.add_argument("-p", "--processors", type=int, default=32)
    ps.add_argument("--interconnect", default="bus",
                    choices=interconnect_names(),
                    help="coherence fabric (default: bus)")
    ps.add_argument("--metrics-out", metavar="PATH",
                    help="also write counters/histograms/manifest as JSON")

    pv = sub.add_parser(
        "validate", help="validate a telemetry artifact against a JSON schema"
    )
    pv.add_argument("file", help=".json or .jsonl artifact to check")
    pv.add_argument("--schema", metavar="PATH",
                    help="JSON-Schema file (see tests/schemas/); omit for "
                         "self-identifying artifacts with a registered "
                         "top-level \"schema\" field")

    pp = sub.add_parser(
        "predict",
        help="analytical throughput prediction — no simulation",
    )
    pp.add_argument("--primitive", nargs="+", metavar="PRIM",
                    choices=sorted(PRIMITIVES),
                    help="primitives to model (default: the 5-rung ladder "
                         f"{' '.join(PREDICT_LADDER)})")
    pp.add_argument("--fabric", nargs="+", metavar="FABRIC",
                    choices=interconnect_names(),
                    help="coherence fabrics (default: bus and directory)")
    pp.add_argument("-p", "--processors", type=int, default=16)
    pp.add_argument("--grid", metavar="procs=LO..HI",
                    help="sweep machine size in doubling steps, e.g. "
                         "procs=1..128")
    pp.add_argument("--app", choices=APP_ORDER,
                    help="model a synthetic SPLASH-2 app instead of the "
                         "null-critical-section microbenchmark")
    pp.add_argument("--acquires", type=int, default=20,
                    help="microbenchmark acquires per processor (default 20)")
    pp.add_argument("--think", type=int, default=100,
                    help="microbenchmark local compute between acquires "
                         "(default 100 cycles)")
    pp.add_argument("--calibration", metavar="PATH",
                    default="results/PREDICT_calibration.json",
                    help="fitted parameters to load (default: "
                         "results/PREDICT_calibration.json)")
    pp.add_argument("--calibrate", action="store_true",
                    help="refit parameters from the committed benchmark "
                         "artifacts and write them to --out")
    pp.add_argument("--validate", action="store_true",
                    help="replay every committed benchmark cell through the "
                         "model and report prediction error")
    pp.add_argument("--out", metavar="PATH",
                    help="with --validate/--calibrate: artifact to write")
    pp.add_argument("--max-mean-error", type=float, default=0.25,
                    help="with --validate: gate on mean |relative error| "
                         "(default 0.25)")
    pp.add_argument("--min-ordering", type=float, default=0.90,
                    help="with --validate: gate on taxonomy-ordering "
                         "agreement (default 0.90)")
    pp.add_argument("--format", default="table", choices=("table", "json"))

    pq = sub.add_parser("fairness", help="measure lock fairness")
    pq.add_argument("--primitive", nargs="+", default=["tts", "iqolb", "qolb"],
                    choices=sorted(PRIMITIVES))
    pq.add_argument("-p", "--processors", type=int, default=8)
    pq.add_argument("--interconnect", default="bus",
                    choices=interconnect_names(),
                    help="coherence fabric (default: bus)")

    pc = sub.add_parser(
        "check",
        help="bounded model check: permute tie-breaks, check invariants",
    )
    pc.add_argument("--smoke", action="store_true",
                    help="run the default policy-ladder x fabric matrix "
                         "(the flag documents intent; defaults already "
                         "describe the smoke matrix)")
    from repro.check.scenarios import mutation_names, scenario_names

    pc.add_argument("--scenario", default="lock",
                    choices=scenario_names(),
                    help="workload shape to explore (default: lock)")
    pc.add_argument("--reduction", default="none",
                    choices=("none", "sleep", "dpor"),
                    help="partial-order reduction over the choice tree: "
                         "sleep sets, or sleep sets + dynamic backtrack "
                         "seeding (default: none — the exhaustive oracle)")
    pc.add_argument("--primitives", nargs="+", metavar="PRIM",
                    choices=sorted(PRIMITIVES),
                    help="primitives to sweep (default: the 5-rung ladder)")
    pc.add_argument("--interconnects", nargs="+", metavar="FABRIC",
                    choices=interconnect_names(),
                    help="fabrics to sweep (default: bus and directory)")
    pc.add_argument("-p", "--processors", type=int, default=4)
    pc.add_argument("--acquires", type=int, default=2,
                    help="lock acquires per processor (default 2)")
    pc.add_argument("--max-schedules", type=int, default=1200,
                    help="schedules explored per cell (default 1200)")
    pc.add_argument("--max-steps", type=int, default=80_000,
                    help="kernel events per schedule before giving up")
    pc.add_argument("--max-depth", type=int, default=60,
                    help="tie-break choice points the DFS may branch at")
    pc.add_argument("--timeout-cycles", type=int, default=400,
                    help="lock hand-off timeout (default 400)")
    pc.add_argument("--max-cycles", type=int, default=2_000_000,
                    help="runaway guard per schedule (default 2,000,000)")
    pc.add_argument("--faults", action="store_true",
                    help="repeat each cell with the fault injector armed")
    pc.add_argument("--fault-seeds", type=int, nargs="+", default=[1],
                    metavar="SEED",
                    help="fault-injector seeds (with --faults; default: 1)")
    pc.add_argument("--mutate", metavar="NAME",
                    choices=mutation_names(),
                    help="install a seeded protocol/workload mutation "
                         f"({', '.join(mutation_names())}) — "
                         "checker self-test")
    pc.add_argument("--expect-violation", action="store_true",
                    help="exit 0 only if a violation IS found "
                         "(for the seeded-mutation self-test)")
    pc.add_argument("-j", "--jobs", type=int, default=1,
                    help="worker processes, one cell each (default 1)")
    pc.add_argument("--out", metavar="DIR",
                    help="write check-report.json and counterexamples here")
    pc.add_argument("--replay", metavar="CE.json",
                    help="re-execute a saved counterexample instead of "
                         "exploring")
    pc.add_argument("--trace", metavar="PATH",
                    help="with --replay: dump a Chrome trace of the replay")

    sub.add_parser("policies", help="list protocol policies and primitives")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {
        "table1": _cmd_table1,
        "table2": _cmd_table2,
        "table3": _cmd_table3,
        "figure": _cmd_figure,
        "run": _cmd_run,
        "trace": _cmd_trace,
        "stats": _cmd_stats,
        "validate": _cmd_validate,
        "predict": _cmd_predict,
        "fairness": _cmd_fairness,
        "check": _cmd_check,
        "policies": _cmd_policies,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

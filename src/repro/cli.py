"""Command-line interface: ``python -m repro <command>``.

Gives the paper's experiments a front door::

    python -m repro table1                # print the simulated system
    python -m repro table2                # benchmark models
    python -m repro table3 -p 16 raytrace # (a slice of) Table 3
    python -m repro figure 4              # sequence diagram of Fig. 2/3/4
    python -m repro run raytrace --primitive iqolb -p 16
    python -m repro trace fig4 --out run.trace.json   # Perfetto-loadable
    python -m repro stats raytrace -p 16  # latency percentiles + manifest
    python -m repro validate run.trace.json --schema tests/schemas/...
    python -m repro fairness --primitive tts iqolb qolb
    python -m repro policies              # list protocol policies

Tables and reports go to **stdout**; progress/cache diagnostics go to
**stderr**, so stdout can be piped into files or ``jq`` cleanly.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.registry import interconnect_names, policy_names
from repro.harness.cache import ResultCache
from repro.harness.config import SystemConfig
from repro.harness.diagram import render_sequence_diagram
from repro.harness.experiment import PRIMITIVES, run_app, table3_with_stats
from repro.harness.fairness import measure_lock_fairness
from repro.harness.tables import (
    render_table,
    render_table1,
    render_table2,
    render_table2_parameters,
    render_table3,
)
from repro.harness.traces import (
    SCENARIOS,
    figure2_scenario,
    figure3_scenario,
    figure4_scenario,
)
from repro.telemetry import (
    ChromeTraceSink,
    JsonlSink,
    SchemaError,
    TraceDispatcher,
    validate_file,
    write_metrics,
)
from repro.workloads.splash import APP_ORDER


def _cmd_table1(args: argparse.Namespace) -> int:
    print(render_table1(SystemConfig()))
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    print(render_table2())
    print()
    print(render_table2_parameters())
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    apps = args.apps or APP_ORDER
    unknown = [app for app in apps if app not in APP_ORDER]
    if unknown:
        raise SystemExit(
            f"unknown benchmark(s) {', '.join(unknown)} "
            f"(choose from {', '.join(APP_ORDER)})"
        )
    cache = None if args.no_cache else ResultCache()
    rows, stats = table3_with_stats(
        n_processors=args.processors,
        apps=apps,
        n_jobs=args.jobs,
        cache=cache,
        metrics_out=args.metrics_out,
    )
    print(render_table3(rows, n_processors=args.processors))
    # Diagnostics to stderr: piped stdout stays clean table data.
    stats.print_summary()
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    scenario = {
        2: lambda: (figure2_scenario(), 2),
        3: lambda: (figure3_scenario(), 3),
        4: lambda: (figure4_scenario(), 3),
    }[args.number]
    result, n_processors = scenario()
    print(
        render_sequence_diagram(
            result.recorder, result.target_line, n_processors
        )
    )
    print()
    for key, value in result.summary.items():
        print(f"  {key}: {value}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.harness.report import render_report

    result = run_app(
        args.app,
        args.primitive,
        args.processors,
        config_overrides={"interconnect": args.interconnect},
    )
    print(render_report(result))
    if args.metrics_out:
        write_metrics(args.metrics_out, [result])
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.format == "chrome":
        sink = ChromeTraceSink(args.out)
    else:
        sink = JsonlSink(args.out)
    if args.scenario in SCENARIOS:
        scenario = SCENARIOS[args.scenario]
        result = scenario(sinks=[sink])
        sink.close()
        events = len(result.recorder.events)
        for key, value in result.summary.items():
            print(f"  {key}: {value}")
    elif args.scenario in APP_ORDER:
        dispatcher = TraceDispatcher()
        dispatcher.attach(sink)
        result = run_app(
            args.scenario,
            args.primitive,
            args.processors,
            config_overrides={"interconnect": args.interconnect},
            telemetry=dispatcher,
        )
        dispatcher.close()
        events = dispatcher.events_dispatched
        print(f"  cycles: {result.cycles}")
        print(f"  bus transactions: {result.bus_transactions}")
    else:
        raise SystemExit(
            f"unknown scenario {args.scenario!r} "
            f"(choose from {', '.join(SCENARIOS)} or "
            f"{', '.join(APP_ORDER)})"
        )
    print(
        f"wrote {events} events to {args.out} ({args.format})",
        file=sys.stderr,
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.harness.report import histogram_rows

    result = run_app(
        args.app,
        args.primitive,
        args.processors,
        config_overrides={"interconnect": args.interconnect},
    )
    rows = histogram_rows(result)
    if rows:
        print(
            render_table(
                ["histogram", "n", "min", "mean", "p50", "p90", "p99", "max"],
                rows,
                title=(
                    f"{args.app} on {args.primitive}, "
                    f"{args.processors} processors — latency distributions "
                    f"(cycles)"
                ),
            )
        )
    else:
        print("no histogram samples recorded")
    manifest = result.manifest
    if manifest is not None:
        print()
        print("manifest:")
        print(f"  config hash: {manifest.config_hash[:16]}…")
        print(f"  version: {manifest.version}")
        print(f"  events fired: {manifest.events_fired}")
        print(f"  events/host-s: {manifest.events_per_host_s:,.0f}")
        print(f"  queue high water: {manifest.queue_high_water}")
        print(f"  wall time: {manifest.wall_time_s:.3f}s")
    if args.metrics_out:
        write_metrics(args.metrics_out, [result])
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    try:
        records = validate_file(args.file, args.schema)
    except (OSError, ValueError, SchemaError) as exc:
        # unreadable file, malformed JSON, or schema mismatch
        print(f"FAIL {args.file}: {exc}", file=sys.stderr)
        return 1
    print(f"OK {args.file}: {records} record(s) match {args.schema}")
    return 0


def _cmd_fairness(args: argparse.Namespace) -> int:
    reports = [
        measure_lock_fairness(
            primitive,
            n_processors=args.processors,
            config_overrides={"interconnect": args.interconnect},
        )
        for primitive in args.primitive
    ]
    print(
        render_table(
            ["primitive", "acquires", "mean wait", "max wait",
             "wait CV", "FIFO inversions", "Jain idx"],
            [r.row() for r in reports],
            title=f"Lock fairness, {args.processors} processors",
        )
    )
    return 0


def _cmd_policies(args: argparse.Namespace) -> int:
    print("protocol policies:", ", ".join(policy_names()))
    print("primitives:", ", ".join(sorted(PRIMITIVES)))
    print("interconnects:", ", ".join(interconnect_names()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IQOLB (HPCA 2000) reproduction: experiments front door",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the simulated system (Table 1)")
    sub.add_parser("table2", help="print the benchmark models (Table 2)")

    p3 = sub.add_parser("table3", help="reproduce (a slice of) Table 3")
    # No argparse choices= here: with nargs="*" Python <= 3.12.7 rejects
    # the empty default against the choice list; validated in the handler.
    p3.add_argument("apps", nargs="*",
                    help=f"benchmarks (default: {' '.join(APP_ORDER)})")
    p3.add_argument("-p", "--processors", type=int, default=32)
    p3.add_argument("-j", "--jobs", type=int, default=1,
                    help="worker processes for the sweep (default 1)")
    p3.add_argument("--no-cache", action="store_true",
                    help="ignore and do not update the on-disk result cache")
    p3.add_argument("--metrics-out", metavar="PATH",
                    help="also write the per-cell grid as metrics JSON")

    pf = sub.add_parser("figure", help="render a sequence figure (2, 3 or 4)")
    pf.add_argument("number", type=int, choices=(2, 3, 4))

    pr = sub.add_parser("run", help="run one benchmark on one primitive")
    pr.add_argument("app", choices=APP_ORDER)
    pr.add_argument("--primitive", default="iqolb", choices=sorted(PRIMITIVES))
    pr.add_argument("-p", "--processors", type=int, default=32)
    pr.add_argument("--interconnect", default="bus",
                    choices=interconnect_names(),
                    help="coherence fabric (default: bus)")
    pr.add_argument("--metrics-out", metavar="PATH",
                    help="also write counters/histograms/manifest as JSON")

    pt = sub.add_parser(
        "trace", help="record a structured event trace of a run"
    )
    pt.add_argument("scenario",
                    help="fig2, fig3, fig4, or a benchmark name")
    pt.add_argument("--out", required=True, metavar="PATH",
                    help="trace file to write")
    pt.add_argument("--format", default="chrome",
                    choices=("chrome", "jsonl"),
                    help="chrome trace_event JSON (Perfetto-loadable) "
                         "or JSON Lines (default: chrome)")
    pt.add_argument("--primitive", default="iqolb",
                    choices=sorted(PRIMITIVES),
                    help="primitive for benchmark scenarios")
    pt.add_argument("-p", "--processors", type=int, default=8)
    pt.add_argument("--interconnect", default="bus",
                    choices=interconnect_names(),
                    help="coherence fabric for benchmark scenarios")

    ps = sub.add_parser(
        "stats", help="latency percentiles and run manifest for one run"
    )
    ps.add_argument("app", choices=APP_ORDER)
    ps.add_argument("--primitive", default="iqolb", choices=sorted(PRIMITIVES))
    ps.add_argument("-p", "--processors", type=int, default=32)
    ps.add_argument("--interconnect", default="bus",
                    choices=interconnect_names(),
                    help="coherence fabric (default: bus)")
    ps.add_argument("--metrics-out", metavar="PATH",
                    help="also write counters/histograms/manifest as JSON")

    pv = sub.add_parser(
        "validate", help="validate a telemetry artifact against a JSON schema"
    )
    pv.add_argument("file", help=".json or .jsonl artifact to check")
    pv.add_argument("--schema", required=True, metavar="PATH",
                    help="JSON-Schema file (see tests/schemas/)")

    pq = sub.add_parser("fairness", help="measure lock fairness")
    pq.add_argument("--primitive", nargs="+", default=["tts", "iqolb", "qolb"],
                    choices=sorted(PRIMITIVES))
    pq.add_argument("-p", "--processors", type=int, default=8)
    pq.add_argument("--interconnect", default="bus",
                    choices=interconnect_names(),
                    help="coherence fabric (default: bus)")

    sub.add_parser("policies", help="list protocol policies and primitives")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {
        "table1": _cmd_table1,
        "table2": _cmd_table2,
        "table3": _cmd_table3,
        "figure": _cmd_figure,
        "run": _cmd_run,
        "trace": _cmd_trace,
        "stats": _cmd_stats,
        "validate": _cmd_validate,
        "fairness": _cmd_fairness,
        "policies": _cmd_policies,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

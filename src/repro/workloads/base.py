"""Workload scaffolding.

A workload knows how to lay out its shared memory on a
:class:`~repro.harness.system.System` and to produce one generator
program per processor.  Lock-primitive selection is factored into
:class:`LockSet` so the same workload runs unchanged under TTS, QOLB,
ticket, MCS or test&set locking — the comparison axis of the paper's
evaluation.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.harness.system import System
from repro.sync.anderson import AndersonLock
from repro.sync.clh import ClhLock
from repro.sync.mcs import McsLock
from repro.sync.qolb_lock import QolbLock
from repro.sync.ticket import TicketLock
from repro.sync.tts import TSLock, TTSLock

#: lock primitive names accepted by LockSet
LOCK_KINDS = ("tts", "ts", "ticket", "mcs", "qolb", "anderson", "clh")


class LockSet:
    """A set of locks of one primitive kind, one per lock index.

    MCS needs a private queue node per (thread, lock); the set allocates
    and hides that so workload code is primitive-agnostic::

        yield from lockset.acquire(lock_idx, tid)
        ... critical section ...
        yield from lockset.release(lock_idx, tid)
    """

    def __init__(
        self, kind: str, system: System, n_locks: int, n_threads: int
    ) -> None:
        if kind not in LOCK_KINDS:
            raise ValueError(f"unknown lock kind {kind!r}; known: {LOCK_KINDS}")
        self.kind = kind
        self.n_locks = n_locks
        layout = system.layout
        self._locks: List[object] = []
        self._mcs_nodes: Optional[List[List[int]]] = None
        if kind == "tts":
            self._locks = [TTSLock(layout.alloc_line()) for _ in range(n_locks)]
        elif kind == "ts":
            self._locks = [TSLock(layout.alloc_line()) for _ in range(n_locks)]
        elif kind == "qolb":
            self._locks = [QolbLock(layout.alloc_line()) for _ in range(n_locks)]
        elif kind == "ticket":
            self._locks = [
                TicketLock(layout.alloc_line(), layout.alloc_line())
                for _ in range(n_locks)
            ]
        elif kind == "mcs":
            self._locks = [McsLock(layout.alloc_line()) for _ in range(n_locks)]
            # One queue node per (lock, thread); nodes are two words and
            # get a line each to avoid false sharing between spinners.
            self._mcs_nodes = [
                [layout.alloc_line() for _ in range(n_threads)]
                for _ in range(n_locks)
            ]
        elif kind == "anderson":
            self._locks = []
            for _ in range(n_locks):
                lock = AndersonLock(
                    layout.alloc_line(),
                    [layout.alloc_line() for _ in range(max(2, n_threads))],
                )
                lock.initialise(system.write_word)
                self._locks.append(lock)
            #: slot held between acquire and release, per (lock, thread)
            self._anderson_slots = {}
        elif kind == "clh":
            self._locks = []
            for _ in range(n_locks):
                lock = ClhLock(layout.alloc_line(), layout.alloc_line())
                lock.initialise(system.write_word)
                self._locks.append(lock)
            #: each thread's current node and held node, per (lock, thread)
            self._clh_nodes = {
                (i, t): layout.alloc_line()
                for i in range(n_locks)
                for t in range(n_threads)
            }
            self._clh_held = {}

    def lock_addr(self, index: int) -> int:
        return self._locks[index].addr  # type: ignore[attr-defined]

    def acquire(self, index: int, tid: int) -> Iterator:
        lock = self._locks[index]
        if self.kind == "mcs":
            assert self._mcs_nodes is not None
            return lock.acquire_with(self._mcs_nodes[index][tid])  # type: ignore
        if self.kind == "anderson":
            return self._anderson_acquire(index, tid)
        if self.kind == "clh":
            return self._clh_acquire(index, tid)
        return lock.acquire()  # type: ignore[attr-defined]

    def release(self, index: int, tid: int) -> Iterator:
        lock = self._locks[index]
        if self.kind == "mcs":
            assert self._mcs_nodes is not None
            return lock.release_with(self._mcs_nodes[index][tid])  # type: ignore
        if self.kind == "anderson":
            return self._anderson_release(index, tid)
        if self.kind == "clh":
            return self._clh_release(index, tid)
        return lock.release()  # type: ignore[attr-defined]

    # -- Anderson / CLH need state carried from acquire to release ------
    def _anderson_acquire(self, index: int, tid: int):
        slot = yield from self._locks[index].acquire_slot()  # type: ignore
        self._anderson_slots[(index, tid)] = slot

    def _anderson_release(self, index: int, tid: int):
        slot = self._anderson_slots.pop((index, tid))
        yield from self._locks[index].release_slot(slot)  # type: ignore

    def _clh_acquire(self, index: int, tid: int):
        node = self._clh_nodes[(index, tid)]
        held, pred = yield from self._locks[index].acquire_with(node)  # type: ignore
        self._clh_held[(index, tid)] = held
        self._clh_nodes[(index, tid)] = pred  # recycle predecessor's node

    def _clh_release(self, index: int, tid: int):
        held = self._clh_held.pop((index, tid))
        yield from self._locks[index].release_with(held)  # type: ignore


class Workload:
    """Base class: builds per-processor programs on a system."""

    name = "workload"

    def build(self, system: System) -> None:  # pragma: no cover - interface
        """Allocate shared memory and load one program per processor."""
        raise NotImplementedError

    def verify(self, system: System) -> None:
        """Post-run invariant checks (override where meaningful)."""

    def handoff_lines(self, system: System) -> List[int]:
        """Lines whose ownership hand-off the checker should audit.

        Defaults to the workload's contended line when it declares one
        (``lock_line``); scenarios with different hand-off semantics
        override this.
        """
        lock_line = getattr(self, "lock_line", None)
        return [lock_line(system)] if callable(lock_line) else []

    def extra_oracles(self, system: System) -> List[object]:
        """Scenario-specific oracles to register alongside the standard
        SWMR / data-value / hand-off / progress checks (checker only)."""
        return []

"""Workload scaffolding.

A workload knows how to lay out its shared memory on a
:class:`~repro.harness.system.System` and to produce one generator
program per processor.  Lock-primitive selection is factored into
:class:`LockSet` so the same workload runs unchanged under any
registered lock kind — the comparison axis of the paper's evaluation.

Each kind's plumbing (node allocation, state carried from acquire to
release) lives in a small adapter class, and :data:`LOCK_ADAPTERS` maps
kind name -> adapter factory.  Registering a lock kind is adding one
entry there; :data:`LOCK_KINDS` and every registry-parameterized test
grid derive from it.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List

from repro.core.registry import unknown_choice
from repro.harness.system import System
from repro.sync.anderson import AndersonLock
from repro.sync.clh import ClhLock
from repro.sync.fissile import FissileLock
from repro.sync.mcs import McsLock
from repro.sync.qolb_lock import QolbLock
from repro.sync.reciprocating import ReciprocatingLock
from repro.sync.ticket import TicketLock
from repro.sync.tts import TSLock, TTSLock


class _SimpleAdapter:
    """Locks with stateless ``acquire()``/``release()`` generators."""

    def __init__(self, lock) -> None:
        self.lock = lock

    def acquire(self, tid: int) -> Iterator:
        return self.lock.acquire()

    def release(self, tid: int) -> Iterator:
        return self.lock.release()


class _McsAdapter:
    """One queue node per thread; nodes are two words and get a line
    each to avoid false sharing between spinners."""

    def __init__(self, system: System, n_threads: int) -> None:
        self.lock = McsLock(system.layout.alloc_line())
        self._nodes: List[int] = []

    def finish(self, system: System, n_threads: int) -> None:
        self._nodes = [system.layout.alloc_line() for _ in range(n_threads)]

    def acquire(self, tid: int) -> Iterator:
        return self.lock.acquire_with(self._nodes[tid])

    def release(self, tid: int) -> Iterator:
        return self.lock.release_with(self._nodes[tid])


class _AndersonAdapter:
    """Slot index held between acquire and release, per thread."""

    def __init__(self, system: System, n_threads: int) -> None:
        layout = system.layout
        self.lock = AndersonLock(
            layout.alloc_line(),
            [layout.alloc_line() for _ in range(max(2, n_threads))],
        )
        self.lock.initialise(system.write_word)
        self._slots: Dict[int, int] = {}

    def acquire(self, tid: int):
        slot = yield from self.lock.acquire_slot()
        self._slots[tid] = slot

    def release(self, tid: int):
        yield from self.lock.release_slot(self._slots.pop(tid))


class _ClhAdapter:
    """Each thread recycles its predecessor's node (CLH protocol)."""

    def __init__(self, system: System, n_threads: int) -> None:
        layout = system.layout
        self.lock = ClhLock(layout.alloc_line(), layout.alloc_line())
        self.lock.initialise(system.write_word)
        self._nodes: Dict[int, int] = {}
        self._held: Dict[int, int] = {}

    def finish(self, system: System, n_threads: int) -> None:
        self._nodes = {
            t: system.layout.alloc_line() for t in range(n_threads)
        }

    def acquire(self, tid: int):
        held, pred = yield from self.lock.acquire_with(self._nodes[tid])
        self._held[tid] = held
        self._nodes[tid] = pred  # recycle predecessor's node

    def release(self, tid: int):
        yield from self.lock.release_with(self._held.pop(tid))


class _ReciprocatingAdapter:
    """Splice predecessor and conveyed segment pair carried from
    acquire to release, per thread; nodes are immediately reusable."""

    def __init__(self, system: System, n_threads: int) -> None:
        layout = system.layout
        self.lock = ReciprocatingLock(layout.alloc_line())
        self._nodes = [layout.alloc_line() for _ in range(n_threads)]
        self._held: Dict[int, tuple] = {}

    def acquire(self, tid: int):
        pred, eos, res = yield from self.lock.acquire_with(self._nodes[tid])
        self._held[tid] = (pred, eos, res)

    def release(self, tid: int):
        pred, eos, res = self._held.pop(tid)
        yield from self.lock.release_with(self._nodes[tid], pred, eos, res)


class _FissileAdapter:
    """Outer-queue node per thread; release touches no node state."""

    def __init__(self, system: System, n_threads: int) -> None:
        layout = system.layout
        self.lock = FissileLock(layout.alloc_line(), layout.alloc_line())
        self._nodes = [layout.alloc_line() for _ in range(n_threads)]

    def acquire(self, tid: int) -> Iterator:
        return self.lock.acquire_with(self._nodes[tid])

    def release(self, tid: int) -> Iterator:
        return self.lock.release()


def _simple(lock_cls, n_addrs: int = 1):
    def factory(system: System, n_threads: int) -> _SimpleAdapter:
        layout = system.layout
        addrs = [layout.alloc_line() for _ in range(n_addrs)]
        return _SimpleAdapter(lock_cls(*addrs))
    return factory


#: lock kind -> ``factory(system, n_threads)`` building one adapter
#: (= one lock instance plus its per-thread plumbing).  An adapter may
#: defer part of its allocation to a ``finish`` method, which LockSet
#: calls after every lock in the set is constructed — this keeps the
#: memory layout of multi-lock sets identical to the pre-registry code
#: (lock words first, then queue nodes), which the committed perf
#: baselines depend on.
LOCK_ADAPTERS: Dict[str, Callable[[System, int], object]] = {
    "tts": _simple(TTSLock),
    "ts": _simple(TSLock),
    "ticket": _simple(TicketLock, n_addrs=2),
    "mcs": _McsAdapter,
    "qolb": _simple(QolbLock),
    "anderson": _AndersonAdapter,
    "clh": _ClhAdapter,
    "reciprocating": _ReciprocatingAdapter,
    "fissile": _FissileAdapter,
}

#: lock primitive names accepted by LockSet (derived from the adapter
#: registry — a new adapter is automatically a new kind)
LOCK_KINDS = tuple(LOCK_ADAPTERS)


class LockSet:
    """A set of locks of one primitive kind, one per lock index.

    Queue locks need private per-(thread, lock) state — MCS nodes, CLH
    recycling, reciprocating segment pairs; the kind's adapter allocates
    and hides that so workload code is primitive-agnostic::

        yield from lockset.acquire(lock_idx, tid)
        ... critical section ...
        yield from lockset.release(lock_idx, tid)
    """

    def __init__(
        self, kind: str, system: System, n_locks: int, n_threads: int
    ) -> None:
        factory = LOCK_ADAPTERS.get(kind)
        if factory is None:
            raise unknown_choice("lock kind", kind, LOCK_ADAPTERS)
        self.kind = kind
        self.n_locks = n_locks
        self._adapters = [
            factory(system, n_threads) for _ in range(n_locks)
        ]
        for adapter in self._adapters:
            finish = getattr(adapter, "finish", None)
            if finish is not None:
                finish(system, n_threads)

    def lock_addr(self, index: int) -> int:
        return self._adapters[index].lock.addr  # type: ignore[attr-defined]

    def acquire(self, index: int, tid: int) -> Iterator:
        return self._adapters[index].acquire(tid)  # type: ignore[attr-defined]

    def release(self, index: int, tid: int) -> Iterator:
        return self._adapters[index].release(tid)  # type: ignore[attr-defined]


class Workload:
    """Base class: builds per-processor programs on a system."""

    name = "workload"

    def build(self, system: System) -> None:  # pragma: no cover - interface
        """Allocate shared memory and load one program per processor."""
        raise NotImplementedError

    def verify(self, system: System) -> None:
        """Post-run invariant checks (override where meaningful)."""

    def handoff_lines(self, system: System) -> List[int]:
        """Lines whose ownership hand-off the checker should audit.

        Defaults to the workload's contended line when it declares one
        (``lock_line``); scenarios with different hand-off semantics
        override this.
        """
        lock_line = getattr(self, "lock_line", None)
        return [lock_line(system)] if callable(lock_line) else []

    def extra_oracles(self, system: System) -> List[object]:
        """Scenario-specific oracles to register alongside the standard
        SWMR / data-value / hand-off / progress checks (checker only)."""
        return []

"""Workloads: microbenchmarks and synthetic SPLASH-2 application models."""

from repro.workloads.base import LOCK_KINDS, LockSet, Workload
from repro.workloads.micro import (
    CollocatedCriticalSection,
    ContendedCounter,
    NullCriticalSection,
)
from repro.workloads.pipeline import ProducerConsumer, ReaderHeavy
from repro.workloads.splash import (
    APP_MODELS,
    APP_ORDER,
    AppModel,
    SyntheticApp,
    make_app,
)

__all__ = [
    "APP_MODELS",
    "APP_ORDER",
    "AppModel",
    "CollocatedCriticalSection",
    "ContendedCounter",
    "LOCK_KINDS",
    "LockSet",
    "NullCriticalSection",
    "ProducerConsumer",
    "ReaderHeavy",
    "SyntheticApp",
    "Workload",
    "make_app",
]

"""Task-pipeline workloads: producer/consumer and reader-heavy sharing.

Two realistic shapes beyond the SPLASH models:

* :class:`ProducerConsumer` — a bounded shared work queue protected by
  one lock: producers push task ids, consumers pop and process them.
  This is the paper's Raytrace/Radiosity pattern made explicit, and the
  canonical beneficiary of queue-based locking.
* :class:`ReaderHeavy` — one writer updates a small table under a lock
  while many readers poll it read-only.  Exercises IQOLB's read
  tear-offs ("a processor interested in querying the state of the lock
  [and data] proceeds without being involved in the queue", §3.3).
"""

from __future__ import annotations

from typing import List

from repro.cpu.ops import Compute, Read, Write
from repro.harness.system import System
from repro.workloads.base import LockSet, Workload


class ProducerConsumer(Workload):
    """Bounded queue: half the processors produce, half consume."""

    name = "producer-consumer"

    def __init__(
        self,
        lock_kind: str = "tts",
        items_per_producer: int = 12,
        queue_capacity: int = 8,
        produce_cycles: int = 150,
        consume_cycles: int = 200,
    ) -> None:
        self.lock_kind = lock_kind
        self.items_per_producer = items_per_producer
        self.queue_capacity = queue_capacity
        self.produce_cycles = produce_cycles
        self.consume_cycles = consume_cycles

    def build(self, system: System) -> None:
        n = system.config.n_processors
        if n < 2:
            raise ValueError("producer/consumer needs at least 2 processors")
        self.n_producers = n // 2
        self.n_consumers = n - self.n_producers
        self.total_items = self.n_producers * self.items_per_producer
        layout = system.layout
        self.lockset = LockSet(self.lock_kind, system, 1, n)
        # Queue state: head, tail, count in one line; slots in their own.
        self.head_addr, self.tail_addr, self.count_addr = (
            layout.alloc_words_in_line(3)
        )
        self.slots = [layout.alloc_line() for _ in range(self.queue_capacity)]
        self.consumed_addr = layout.alloc_line()
        self.checksum_addr = self.consumed_addr + 4
        node = 0
        for producer in range(self.n_producers):
            system.load_program(node, self._producer(node, producer))
            node += 1
        for _consumer in range(self.n_consumers):
            system.load_program(node, self._consumer(node))
            node += 1

    def _producer(self, tid: int, producer_idx: int):
        # Thread-staggered exponential backoff when the queue is full.
        # The backoff is essential, not cosmetic: a deterministic
        # simulator can phase-lock fixed-period pollers so that one side
        # starves forever on an unfair lock (a real TTS pathology).
        backoff = 40 + tid * 17
        yield Compute(1 + tid * 7)
        for i in range(self.items_per_producer):
            item = producer_idx * 1000 + i + 1
            while True:
                yield from self.lockset.acquire(0, tid)
                count = yield Read(self.count_addr)
                if count < self.queue_capacity:
                    tail = yield Read(self.tail_addr)
                    yield Write(self.slots[tail % self.queue_capacity], item)
                    yield Write(self.tail_addr, tail + 1)
                    yield Write(self.count_addr, count + 1)
                    yield from self.lockset.release(0, tid)
                    backoff = 40 + tid * 17
                    break
                yield from self.lockset.release(0, tid)
                yield Compute(backoff)  # queue full: back off
                backoff = min(backoff * 2, 2_000)
            yield Compute(self.produce_cycles)

    def _consumer(self, tid: int):
        backoff = 60 + tid * 29
        yield Compute(1 + tid * 11)
        while True:
            yield from self.lockset.acquire(0, tid)
            consumed = yield Read(self.consumed_addr)
            count = yield Read(self.count_addr)
            if consumed >= self.total_items:
                yield from self.lockset.release(0, tid)
                return
            if count == 0:
                yield from self.lockset.release(0, tid)
                yield Compute(backoff)  # queue empty: back off
                backoff = min(backoff * 2, 2_000)
                continue
            backoff = 60 + tid * 29
            head = yield Read(self.head_addr)
            item = yield Read(self.slots[head % self.queue_capacity])
            yield Write(self.head_addr, head + 1)
            yield Write(self.count_addr, count - 1)
            yield Write(self.consumed_addr, consumed + 1)
            checksum = yield Read(self.checksum_addr)
            yield Write(self.checksum_addr, checksum + item)
            yield from self.lockset.release(0, tid)
            yield Compute(self.consume_cycles)

    def expected_checksum(self) -> int:
        total = 0
        for producer in range(self.n_producers):
            for i in range(self.items_per_producer):
                total += producer * 1000 + i + 1
        return total

    def verify(self, system: System) -> None:
        consumed = system.read_word(self.consumed_addr)
        checksum = system.read_word(self.checksum_addr)
        if consumed != self.total_items:
            raise AssertionError(
                f"consumed {consumed} of {self.total_items} items"
            )
        if checksum != self.expected_checksum():
            raise AssertionError(
                f"checksum {checksum} != {self.expected_checksum()} "
                "(item lost or duplicated)"
            )


class ReaderHeavy(Workload):
    """One writer updates a versioned record; readers poll it."""

    name = "reader-heavy"

    def __init__(
        self,
        lock_kind: str = "tts",
        updates: int = 15,
        reads_per_reader: int = 25,
        record_words: int = 4,
    ) -> None:
        self.lock_kind = lock_kind
        self.updates = updates
        self.reads_per_reader = reads_per_reader
        self.record_words = record_words
        self.torn_reads: List[tuple] = []

    def build(self, system: System) -> None:
        n = system.config.n_processors
        if n < 2:
            raise ValueError("reader-heavy needs at least 2 processors")
        layout = system.layout
        self.lockset = LockSet(self.lock_kind, system, 1, n)
        self.record = layout.alloc_array(self.record_words)
        system.load_program(0, self._writer(0))
        for node in range(1, n):
            system.load_program(node, self._reader(node))

    def _writer(self, tid: int):
        for version in range(1, self.updates + 1):
            yield from self.lockset.acquire(0, tid)
            for addr in self.record:
                yield Write(addr, version)
            yield from self.lockset.release(0, tid)
            yield Compute(300)

    def _reader(self, tid: int):
        for _ in range(self.reads_per_reader):
            yield from self.lockset.acquire(0, tid)
            values = []
            for addr in self.record:
                values.append((yield Read(addr)))
            yield from self.lockset.release(0, tid)
            if len(set(values)) != 1:
                self.torn_reads.append(tuple(values))
            yield Compute(120)

    def verify(self, system: System) -> None:
        if self.torn_reads:
            raise AssertionError(
                f"{len(self.torn_reads)} torn reads observed: "
                f"{self.torn_reads[:3]}"
            )
        final = [system.read_word(addr) for addr in self.record]
        if set(final) != {self.updates}:
            raise AssertionError(f"record inconsistent at end: {final}")

"""Microbenchmarks.

These isolate the paper's mechanisms one at a time:

* :class:`ContendedCounter` — every processor hammers fetch&add on one
  word: the pure atomic-RMW scenario of paper Figures 2 and 3 (network
  transactions per RMW, SC failure rates, livelock exposure).
* :class:`NullCriticalSection` — lock/unlock with an empty body: pure
  lock hand-off throughput, the IQOLB scenario of Figure 4.
* :class:`CollocatedCriticalSection` — lock plus protected data in the
  *same* cache line: the collocation benefit QOLB pioneered and
  Generalized IQOLB targets (paper §6).
"""

from __future__ import annotations

from repro.cpu.ops import Compute, Read, Write
from repro.harness.system import System
from repro.sync.fetchop import fetch_and_add
from repro.workloads.base import LockSet, Workload


class ContendedCounter(Workload):
    """All processors increment one shared counter atomically."""

    name = "contended-counter"

    def __init__(self, increments_per_proc: int = 50, think_cycles: int = 20) -> None:
        self.increments_per_proc = increments_per_proc
        self.think_cycles = think_cycles
        self.counter_addr = 0
        self.expected = 0

    def build(self, system: System) -> None:
        self.counter_addr = system.layout.alloc_line()
        n = system.config.n_processors
        self.expected = n * self.increments_per_proc
        for node in range(n):
            system.load_program(node, self._program())

    def _program(self):
        for _ in range(self.increments_per_proc):
            yield from fetch_and_add(self.counter_addr, 1, "counter.add")
            yield Compute(self.think_cycles)

    def verify(self, system: System) -> None:
        actual = system.read_word(self.counter_addr)
        if actual != self.expected:
            raise AssertionError(
                f"lost updates: counter={actual}, expected {self.expected}"
            )


class NullCriticalSection(Workload):
    """Lock hand-off throughput: acquire/release with an empty body."""

    name = "null-cs"

    def __init__(
        self,
        lock_kind: str = "tts",
        acquires_per_proc: int = 20,
        think_cycles: int = 100,
    ) -> None:
        self.lock_kind = lock_kind
        self.acquires_per_proc = acquires_per_proc
        self.think_cycles = think_cycles
        self.token_addr = 0
        self.expected = 0

    def build(self, system: System) -> None:
        n = system.config.n_processors
        self.lockset = LockSet(self.lock_kind, system, 1, n)
        self.token_addr = system.layout.alloc_line()
        self.expected = n * self.acquires_per_proc
        for node in range(n):
            system.load_program(node, self._program(node))

    def _program(self, tid: int):
        for _ in range(self.acquires_per_proc):
            yield from self.lockset.acquire(0, tid)
            # Minimal body: bump a token in a *different* line so mutual
            # exclusion is checkable without collocation effects.
            value = yield Read(self.token_addr)
            yield Write(self.token_addr, value + 1)
            yield from self.lockset.release(0, tid)
            yield Compute(self.think_cycles)

    def verify(self, system: System) -> None:
        actual = system.read_word(self.token_addr)
        if actual != self.expected:
            raise AssertionError(
                f"mutual exclusion violated: token={actual}, "
                f"expected {self.expected}"
            )


class CollocatedCriticalSection(Workload):
    """Lock and protected data share one cache line (collocation)."""

    name = "collocated-cs"

    def __init__(
        self,
        lock_kind: str = "tts",
        acquires_per_proc: int = 20,
        think_cycles: int = 100,
        data_words: int = 4,
    ) -> None:
        self.lock_kind = lock_kind
        self.acquires_per_proc = acquires_per_proc
        self.think_cycles = think_cycles
        self.data_words = data_words
        self.data_addrs: list = []

    def build(self, system: System) -> None:
        n = system.config.n_processors
        # The lock set allocates a full line per lock; reuse that line's
        # remaining words as the protected data (collocation).
        self.lockset = LockSet(self.lock_kind, system, 1, n)
        lock_addr = self.lockset.lock_addr(0)
        word = 4
        self.data_addrs = [
            lock_addr + word * (i + 1) for i in range(self.data_words)
        ]
        if self.lock_kind == "ticket":
            # Ticket locks use two words; keep data clear of both.
            self.data_addrs = [
                lock_addr + word * (i + 2) for i in range(self.data_words)
            ]
        self.expected = n * self.acquires_per_proc
        for node in range(n):
            system.load_program(node, self._program(node))

    def _program(self, tid: int):
        for _ in range(self.acquires_per_proc):
            yield from self.lockset.acquire(0, tid)
            total = 0
            for addr in self.data_addrs:
                total += yield Read(addr)
            yield Write(self.data_addrs[0], total + 1)
            yield from self.lockset.release(0, tid)
            yield Compute(self.think_cycles)

    def verify(self, system: System) -> None:
        actual = system.read_word(self.data_addrs[0])
        if actual != self.expected:
            raise AssertionError(
                f"collocated data corrupted: {actual} != {self.expected}"
            )

"""Synthetic models of the paper's SPLASH-2 benchmarks (Table 2).

The paper runs Barnes, Ocean (contiguous), Radiosity, Raytrace and
Water-nsquared on a cycle-accurate simulator.  Real SPLASH-2 binaries are
out of reach for a laptop-scale Python reproduction (see DESIGN.md §2),
so each application is modelled by its *synchronization signature* — the
properties that determine how synchronization primitives affect it:

====================  ==========================================================
parameter             meaning
====================  ==========================================================
total_work            work items (critical-section entries), conserved across P
n_locks               distinct locks; fewer locks → more contention
hot_lock_fraction     fraction of acquires hitting lock 0 (work-queue patterns)
cs_reads/cs_writes    accesses to the protected data of the chosen lock
cs_compute            cycles of computation inside the critical section
local_compute         mean cycles of computation per item outside any lock
phases                global barrier episodes (work split evenly across them)
serial_compute        cycles of single-threaded work per phase (Amdahl term)
====================  ==========================================================

The presets below were calibrated (see ``benchmarks/bench_table3_speedups.py``
and EXPERIMENTS.md) so that, on the 32-processor Table 1 system, the
TTS absolute speedups and the QOLB/IQOLB relative speedups land near the
paper's Table 3.  The *shape* is what the models encode:

* **Raytrace** — a single, fiercely contended work-queue lock with tiny
  tasks: TTS collapses (paper: 1.5 absolute), queue-based locks win ~11x.
* **Radiosity** — a few task-queue locks, high contention (2.5 / 6.37x).
* **Ocean** — barrier-heavy grid solver with moderately contended locks
  (6.0 / 1.54x).
* **Barnes** — many tree-cell locks, low contention, real serial fraction
  (7.5 / 1.06x).
* **Water-nsquared** — mostly compute, per-molecule locks plus a mildly
  contended global accumulator (18.1 / 1.06x).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.cpu.ops import Compute, Read, Write
from repro.engine.rng import WorkloadRng
from repro.harness.system import System
from repro.sync.barrier import Barrier
from repro.workloads.base import LockSet, Workload


@dataclasses.dataclass
class AppModel:
    """Synchronization signature of one application."""

    name: str
    description: str
    input_analogue: str
    total_work: int
    n_locks: int
    hot_lock_fraction: float
    cs_reads: int
    cs_writes: int
    cs_compute: int
    local_compute: int
    phases: int
    serial_compute: int
    seed: int = 1234


class SyntheticApp(Workload):
    """A parallel application model driven by an :class:`AppModel`."""

    def __init__(self, model: AppModel, lock_kind: str = "tts") -> None:
        self.model = model
        self.lock_kind = lock_kind
        self.name = model.name

    def build(self, system: System) -> None:
        model = self.model
        n = system.config.n_processors
        if model.total_work % (n * model.phases):
            raise ValueError(
                f"{model.name}: total_work={model.total_work} must divide "
                f"evenly into {n} procs x {model.phases} phases"
            )
        self.lockset = LockSet(self.lock_kind, system, model.n_locks, n)
        layout = system.layout
        # One line of protected data per lock (the data a critical
        # section actually touches; separate line from the lock itself —
        # the paper's results "do not attempt to take advantage of
        # potential collocation benefits", §4).
        self.data_lines: List[int] = [layout.alloc_line() for _ in range(model.n_locks)]
        self.barrier = Barrier(layout.alloc_line(), layout.alloc_line(), n)
        self.work_done_addr = layout.alloc_line()
        rng = WorkloadRng(model.seed)
        per_thread_phase = model.total_work // (n * model.phases)
        for node in range(n):
            system.load_program(
                node, self._program(node, per_thread_phase, rng.spawn(node))
            )

    def _pick_lock(self, rng: WorkloadRng) -> int:
        model = self.model
        if model.n_locks == 1:
            return 0
        if rng.random() < model.hot_lock_fraction:
            return 0
        return rng.uniform_int(1, model.n_locks - 1)

    def _program(self, tid: int, per_thread_phase: int, rng: WorkloadRng):
        model = self.model
        sense = 0
        for _phase in range(model.phases):
            for _item in range(per_thread_phase):
                yield Compute(rng.exponential_int(model.local_compute, minimum=8))
                lock_idx = self._pick_lock(rng)
                yield from self.lockset.acquire(lock_idx, tid)
                data = self.data_lines[lock_idx]
                value = 0
                for r in range(model.cs_reads):
                    value = yield Read(data + 4 * (r % 8))
                if model.cs_compute:
                    yield Compute(model.cs_compute)
                for w in range(model.cs_writes):
                    yield Write(data + 4 * (w % 8), value + 1)
                yield from self.lockset.release(lock_idx, tid)
            if tid == 0 and model.serial_compute:
                yield Compute(model.serial_compute)
            sense = yield from self.barrier.wait(sense)


#: Calibrated presets (see module docstring and EXPERIMENTS.md).
APP_MODELS: Dict[str, AppModel] = {
    "barnes": AppModel(
        name="barnes",
        description="Barnes-Hut N-body: many tree-cell locks, low contention",
        input_analogue="2,048 bodies, 11 iter.",
        total_work=640,
        n_locks=64,
        hot_lock_fraction=0.25,
        cs_reads=2,
        cs_writes=2,
        cs_compute=12,
        local_compute=2600,
        phases=4,
        serial_compute=48_000,
        seed=11,
    ),
    "ocean": AppModel(
        name="ocean",
        description="Ocean contig.: barrier-heavy grid solver, moderate locks",
        input_analogue="130x130 grid, 2 days",
        total_work=640,
        n_locks=16,
        hot_lock_fraction=0.255,
        cs_reads=2,
        cs_writes=2,
        cs_compute=15,
        local_compute=1500,
        phases=4,
        serial_compute=21_000,
        seed=22,
    ),
    "radiosity": AppModel(
        name="radiosity",
        description="Radiosity: task-queue locks, high contention",
        input_analogue="room scene, batch mode",
        total_work=640,
        n_locks=6,
        hot_lock_fraction=0.37,
        cs_reads=2,
        cs_writes=2,
        cs_compute=15,
        local_compute=1350,
        phases=2,
        serial_compute=10_000,
        seed=33,
    ),
    "raytrace": AppModel(
        name="raytrace",
        description="Raytrace: one fiercely contended ray work-queue lock",
        input_analogue="car scene",
        total_work=640,
        n_locks=1,
        hot_lock_fraction=1.0,
        cs_reads=1,
        cs_writes=1,
        cs_compute=5,
        local_compute=2600,
        phases=2,
        serial_compute=6_000,
        seed=44,
    ),
    "water-nsq": AppModel(
        name="water-nsq",
        description="Water-nsquared: compute-bound, per-molecule locks",
        input_analogue="512 molecules, 3 iter.",
        total_work=640,
        n_locks=12,
        hot_lock_fraction=0.35,
        cs_reads=2,
        cs_writes=2,
        cs_compute=10,
        local_compute=5200,
        phases=2,
        serial_compute=4_000,
        seed=55,
    ),
}

#: Evaluation order used throughout the paper's tables.
APP_ORDER = ["barnes", "ocean", "radiosity", "raytrace", "water-nsq"]


def make_app(name: str, lock_kind: str = "tts",
             model_overrides: Optional[dict] = None) -> SyntheticApp:
    """Instantiate a synthetic app by name with an optional param patch."""
    model = APP_MODELS[name]
    if model_overrides:
        model = dataclasses.replace(model, **model_overrides)
    return SyntheticApp(model, lock_kind=lock_kind)

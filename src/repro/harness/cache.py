"""Content-addressed on-disk cache for simulation results.

The simulator is deterministic (``engine/rng.py``), so a run is fully
determined by its inputs: the :class:`~repro.harness.config.SystemConfig`,
the workload specification, the primitive, and the code that interprets
them.  This module hashes that tuple into a stable key and stores the
resulting :class:`~repro.harness.experiment.RunResult` as JSON, so a
re-run of a sweep replays only the cells whose inputs changed.

Key properties:

* **Content-addressed** — the key is a SHA-256 over a canonical JSON
  encoding of the cell description plus the package version; any config
  field, workload parameter, primitive or version change produces a new
  key.  Entries are never mutated in place.
* **Corruption-tolerant** — unreadable or schema-mismatched entries are
  discarded (and deleted) rather than crashing the run.
* **Relocatable** — the root defaults to ``~/.cache/repro-iqolb`` and is
  overridden by the ``REPRO_CACHE_DIR`` environment variable.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import tempfile
from typing import Any, Optional

import repro
from repro.harness.experiment import RunResult
from repro.telemetry.manifest import RunManifest, canonical, stable_hash

__all__ = [
    "ENTRY_SCHEMA",
    "ResultCache",
    "canonical",
    "default_cache_dir",
    "result_from_dict",
    "result_to_dict",
    "stable_hash",
]

#: Schema version of the stored entries; bump on RunResult shape changes.
#: v2: RunResult carries histogram digests and a RunManifest.
ENTRY_SCHEMA = 2


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-iqolb``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-iqolb"


# canonical() and stable_hash() live in repro.telemetry.manifest (shared
# with run manifests) and are re-exported here for backwards compatibility.


def result_to_dict(result: RunResult) -> dict:
    return dataclasses.asdict(result)


def result_from_dict(data: dict) -> RunResult:
    return RunResult(
        workload=data["workload"],
        primitive=data["primitive"],
        n_processors=data["n_processors"],
        cycles=data["cycles"],
        bus_transactions=data["bus_transactions"],
        stats={str(k): v for k, v in data["stats"].items()},
        wall_time_s=data.get("wall_time_s", 0.0),
        histograms=data.get("histograms") or {},
        manifest=RunManifest.from_dict(data.get("manifest")),
    )


class ResultCache:
    """A content-addressed store of :class:`RunResult` objects on disk.

    ``version`` is folded into every key, so bumping the package version
    (or passing an explicit one) invalidates all previous entries without
    touching the files.
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        version: Optional[str] = None,
    ) -> None:
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.version = version if version is not None else repro.__version__
        self.hits = 0
        self.misses = 0

    def key(self, description: Any) -> str:
        """The content address for a cell description."""
        return stable_hash(
            {
                "schema": ENTRY_SCHEMA,
                "version": self.version,
                "cell": description,
            }
        )

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[RunResult]:
        """The cached result for *key*, or None.

        Corrupted entries (unreadable, bad JSON, missing fields, wrong
        types) are deleted and treated as misses.
        """
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
            if data.get("schema") != ENTRY_SCHEMA or data.get("key") != key:
                raise ValueError("cache entry schema mismatch")
            result = result_from_dict(data["result"])
            if not isinstance(result.cycles, int) or not isinstance(
                result.stats, dict
            ):
                raise ValueError("cache entry malformed")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self._discard(path)
            self.misses += 1
            return None
        self.hits += 1
        if result.manifest is not None:
            result.manifest.cache_hit = True
        return result

    def put(self, key: str, result: RunResult) -> None:
        """Store *result* under *key* (atomic replace; last writer wins)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"schema": ENTRY_SCHEMA, "key": key, "result": result_to_dict(result)},
            sort_keys=True,
        )
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            self._discard(pathlib.Path(tmp))

    @staticmethod
    def _discard(path: pathlib.Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

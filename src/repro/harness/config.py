"""System configuration: the paper's Table 1, as a dataclass.

All latencies are in processor cycles, as in the paper.  The defaults
reproduce the baseline system: 64-KB 2-way L1s with 1-cycle hits, a
512-KB 4-way MOESI L2 with 6-cycle hits, a split-transaction broadcast
address bus (12-cycle access, ≤117 outstanding), a point-to-point
crossbar at 40 cycles per line transfer, 64-byte lines, and
40 + 7×4-cycle DRAM lines.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional


@dataclasses.dataclass
class SystemConfig:
    """Parameters of the simulated multiprocessor (paper Table 1)."""

    n_processors: int = 32
    policy: str = "baseline"
    #: coherence fabric: broadcast snooping "bus" or home-node "directory"
    interconnect: str = "bus"

    # Cache subsystem
    line_bytes: int = 64
    l1_size_bytes: int = 64 * 1024
    l1_assoc: int = 2
    l1_hit_cycles: int = 1
    l2_size_bytes: int = 512 * 1024
    l2_assoc: int = 4
    l2_hit_cycles: int = 6

    # Memory bus / interconnect
    bus_addr_latency: int = 12
    bus_issue_interval: int = 2
    bus_max_outstanding: int = 117
    xbar_line_cycles: int = 40
    xbar_word_cycles: int = 10

    # Main memory: 8-byte wide, 40-cycle first chunk, 4-cycle subsequent
    mem_first_chunk_cycles: int = 40
    mem_next_chunk_cycles: int = 4
    mem_chunk_bytes: int = 8

    # Directory backend: 2-D mesh link timing and home-node lookup cost
    net_hop_cycles: int = 4
    net_line_ser_cycles: int = 16
    net_word_ser_cycles: int = 4
    dir_lookup_cycles: int = 6

    # Processor
    issue_overhead: int = 1

    # Policy knobs (None = policy default)
    timeout_cycles: Optional[int] = None

    # Runaway guard — turns livelock into a reportable outcome
    max_cycles: int = 500_000_000

    #: simulation kernel: "fast" (calendar queue, batched drain) or
    #: "reference" (the original min-heap oracle).  Bit-identical results;
    #: see DESIGN.md "Two-engine architecture".
    engine: str = "fast"

    def policy_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments forwarded to the policy factory."""
        kwargs: Dict[str, Any] = {}
        if self.timeout_cycles is not None and self.policy in (
            "delayed",
            "delayed+retention",
            "iqolb",
            "iqolb+retention",
        ):
            kwargs["timeout_cycles"] = self.timeout_cycles
        return kwargs

    def with_(self, **overrides: Any) -> "SystemConfig":
        """A copy with some fields replaced."""
        return dataclasses.replace(self, **overrides)


def table1_rows(config: Optional[SystemConfig] = None) -> list:
    """The rows of the paper's Table 1, generated from a live config."""
    cfg = config if config is not None else SystemConfig()
    mem_line = (
        cfg.mem_first_chunk_cycles
        + (cfg.line_bytes // cfg.mem_chunk_bytes - 1) * cfg.mem_next_chunk_cycles
    )
    return [
        ("Processor", "issue mechanism",
         "in-order, blocking memory ops (substitution; see DESIGN.md)"),
        ("Cache subsystem", "L1 data cache",
         f"{cfg.l1_size_bytes // 1024}-KB, {cfg.l1_assoc}-way, write-back, "
         f"{cfg.l1_hit_cycles}-cycle hit, MESI"),
        ("Cache subsystem", "L2 unified cache",
         f"{cfg.l2_size_bytes // 1024}-KB, {cfg.l2_assoc}-way, write-back, "
         f"{cfg.l2_hit_cycles}-cycle hit, MOESI"),
        ("Cache subsystem", "line size", f"{cfg.line_bytes} bytes"),
        ("Memory bus", "address bus",
         f"broadcast-based MOESI snooping, {cfg.bus_addr_latency}-cycle "
         f"access latency, <= {cfg.bus_max_outstanding} outstanding"),
        ("Memory bus", "data network",
         f"point-to-point crossbar, {cfg.xbar_line_cycles}-cycle latency "
         f"per cache-line transfer"),
        ("Memory", "DRAM",
         f"{cfg.mem_chunk_bytes}-byte wide, {cfg.mem_first_chunk_cycles}-cycle "
         f"first chunk, {cfg.mem_next_chunk_cycles}-cycle subsequent "
         f"({mem_line} cycles/line)"),
        ("Consistency model", "", "sequential consistency"),
    ]

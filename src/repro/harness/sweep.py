"""Parameter-sweep utilities.

A small declarative helper for the grid experiments the benches and
examples run: sweep one or two axes (machine size, protocol, timeout,
network latency, ...) over a workload factory and collect
:class:`~repro.harness.experiment.RunResult` objects into a grid that
renders straight into a table.

Cells are described as picklable
:class:`~repro.harness.runner.CellSpec` objects and executed through
:func:`~repro.harness.runner.run_cells`, so every sweep can run across
a worker pool (``n_jobs``) and replay unchanged cells from the
content-addressed result cache (``cache``) — with results identical to
a serial, uncached run.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.harness.cache import ResultCache
from repro.harness.config import SystemConfig
from repro.harness.experiment import PRIMITIVES, RunResult
from repro.harness.runner import CellSpec, FactorySpec, RunnerStats, run_cells
from repro.harness.tables import render_table
from repro.workloads.base import Workload


@dataclasses.dataclass
class SweepResult:
    """A 2-D grid of run results: rows x columns."""

    row_axis: str
    col_axis: str
    rows: List[Any]
    cols: List[Any]
    grid: Dict[Tuple[Any, Any], RunResult]
    #: Execution accounting for the batch (simulated vs. cache hits).
    runner_stats: Optional[RunnerStats] = None
    #: Model-facing signature per cell key (``None`` where the shape has
    #: no closed form) — the bridge to :mod:`repro.predict`.
    signatures: Dict[Tuple[Any, Any], Any] = dataclasses.field(
        default_factory=dict
    )

    def cell(self, row: Any, col: Any) -> RunResult:
        try:
            return self.grid[(row, col)]
        except KeyError:
            raise KeyError(
                f"no sweep cell ({row!r}, {col!r}): valid {self.row_axis} "
                f"values are {self.rows!r} and valid {self.col_axis} "
                f"values are {self.cols!r}"
            ) from None

    def metric_grid(
        self, metric: Callable[[RunResult], Any]
    ) -> List[List[Any]]:
        return [
            [metric(self.grid[(row, col)]) for col in self.cols]
            for row in self.rows
        ]

    def render(
        self,
        metric: Callable[[RunResult], Any] = lambda r: r.cycles,
        title: str = "",
    ) -> str:
        headers = [f"{self.row_axis}\\{self.col_axis}"] + [
            str(col) for col in self.cols
        ]
        body = [
            [str(row)] + [str(metric(self.grid[(row, col)])) for col in self.cols]
            for row in self.rows
        ]
        return render_table(headers, body, title=title)


def sweep(
    workload_factory: Callable[[str], Workload],
    primitives: Sequence[str],
    processor_counts: Sequence[int],
    config_overrides: Optional[dict] = None,
    verify: bool = True,
    n_jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> SweepResult:
    """Sweep primitive x machine size.

    ``workload_factory(lock_kind)`` builds a fresh workload per cell
    (workloads hold per-run state and cannot be reused).  For parallel
    execution the factory must be picklable (a module-level callable or
    ``functools.partial``); otherwise the sweep runs serially.
    """
    specs = []
    for primitive in primitives:
        policy, lock_kind = PRIMITIVES[primitive]
        for n in processor_counts:
            config = SystemConfig(n_processors=n, policy=policy)
            if config_overrides:
                config = config.with_(**config_overrides)
            specs.append(
                CellSpec(
                    key=(primitive, n),
                    primitive=primitive,
                    config=config,
                    workload=FactorySpec(workload_factory, lock_kind),
                    verify=verify,
                )
            )
    grid, stats = run_cells(specs, n_jobs=n_jobs, cache=cache)
    return SweepResult(
        row_axis="primitive",
        col_axis="procs",
        rows=list(primitives),
        cols=list(processor_counts),
        grid=grid,
        runner_stats=stats,
        signatures={spec.key: spec.signature() for spec in specs},
    )


def sweep_config(
    workload_factory: Callable[[str], Workload],
    primitive: str,
    axis_name: str,
    axis_values: Sequence[Any],
    n_processors: int = 16,
    verify: bool = True,
    n_jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> SweepResult:
    """Sweep one SystemConfig field for a single primitive."""
    policy, lock_kind = PRIMITIVES[primitive]
    specs = []
    for value in axis_values:
        config = SystemConfig(
            n_processors=n_processors, policy=policy, **{axis_name: value}
        )
        specs.append(
            CellSpec(
                key=(primitive, value),
                primitive=primitive,
                config=config,
                workload=FactorySpec(workload_factory, lock_kind),
                verify=verify,
            )
        )
    grid, stats = run_cells(specs, n_jobs=n_jobs, cache=cache)
    return SweepResult(
        row_axis="primitive",
        col_axis=axis_name,
        rows=[primitive],
        cols=list(axis_values),
        grid=grid,
        runner_stats=stats,
        signatures={spec.key: spec.signature() for spec in specs},
    )

"""Synchronization-behaviour report for a run.

Turns a :class:`~repro.harness.experiment.RunResult` (or a live
:class:`~repro.harness.system.System`) into a human-readable breakdown
of what the protocol did: traffic by transaction type, speculation
activity (deferrals, tear-offs, hand-offs by cause), failure/retry
counts, and cache behaviour.  Used by the CLI and handy in notebooks.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.harness.experiment import RunResult
from repro.harness.tables import render_table

#: (section, metric label, stat key or per-node suffix, per_node?)
_LAYOUT: List[Tuple[str, str, str, bool]] = [
    ("bus traffic", "total transactions", "bus.transactions", False),
    ("bus traffic", "GetS (read shared)", "bus.GetS", False),
    ("bus traffic", "GetX (RFO)", "bus.GetX", False),
    ("bus traffic", "Upgrade", "bus.Upgrade", False),
    ("bus traffic", "LPRFO (low-priority RFO)", "bus.LPRFO", False),
    ("bus traffic", "QOLB enqueue", "bus.QolbEnq", False),
    ("bus traffic", "writebacks", "bus.WB", False),
    ("bus traffic", "NACK/retries", "bus.retries", False),
    ("bus traffic", "memory supplies", "bus.memory_supplies", False),
    ("speculation", "deferrals", "deferrals", True),
    ("speculation", "tear-offs sent", "tearoffs_sent", True),
    ("speculation", "hand-offs (total)", "handoffs", True),
    ("speculation", "  at SC (Fetch&Phi)", "handoff_sc", True),
    ("speculation", "  at release store (lock)", "handoff_release", True),
    ("speculation", "  at DeQOLB", "handoff_deqolb", True),
    ("speculation", "  at timeout", "handoff_timeout", True),
    ("speculation", "eviction hand-offs", "evict_handoffs", True),
    ("speculation", "queue breakdowns", "queue_breakdowns", True),
    ("speculation", "squash+reissue", "squashes", True),
    ("speculation", "loans / returns", "loans", True),
    ("speculation", "data pushes (gen. IQOLB)", "pushes_sent", True),
    ("speculation", "releases recognized", "releases_detected", True),
    ("LL/SC", "LL executed", "ll_ops", True),
    ("LL/SC", "SC attempts", "sc_attempts", True),
    ("LL/SC", "SC failures", "sc_fail", True),
    ("caches", "L1 hits", "l1_hits", True),
    ("caches", "L2 hits", "l2_hits", True),
    ("caches", "misses", "misses", True),
    ("caches", "L2 evictions", "l2_evictions", True),
]


def report_rows(result: RunResult) -> List[Tuple[str, str, int]]:
    """(section, label, value) rows, zero rows skipped."""
    rows = []
    for section, label, key, per_node in _LAYOUT:
        value = result.stat(key) if per_node else result.stats.get(key, 0)
        if value:
            rows.append((section, label, value))
    return rows


def histogram_rows(result: RunResult) -> List[Tuple]:
    """Percentile rows for each non-empty latency histogram."""
    rows = []
    for name, digest in sorted((result.histograms or {}).items()):
        if "count" not in digest or not digest["count"]:
            continue  # empty, or a windowed-counter digest
        rows.append(
            (
                name,
                digest["count"],
                digest["min"],
                f"{digest['mean']:.1f}",
                digest["p50"],
                digest["p90"],
                digest["p99"],
                digest["max"],
            )
        )
    return rows


def render_report(result: RunResult) -> str:
    """A full text report for one run."""
    header = (
        f"{result.workload} on {result.primitive}, "
        f"{result.n_processors} processors: {result.cycles} cycles"
    )
    table = render_table(
        ["section", "metric", "count"],
        report_rows(result),
        title=header,
    )
    lines = [table]
    latency_rows = histogram_rows(result)
    if latency_rows:
        lines.extend(
            [
                "",
                render_table(
                    ["histogram", "n", "min", "mean", "p50", "p90", "p99",
                     "max"],
                    latency_rows,
                    title="latency distributions (cycles)",
                ),
            ]
        )
    derived = _derived_metrics(result)
    lines.extend(["", "derived:"])
    lines.extend(f"  {name}: {value}" for name, value in derived)
    return "\n".join(lines)


def _derived_metrics(result: RunResult) -> List[Tuple[str, str]]:
    out: List[Tuple[str, str]] = []
    attempts = result.stat("sc_attempts")
    if attempts:
        failure_rate = result.stat("sc_fail") / attempts
        out.append(("SC failure rate", f"{failure_rate:.1%}"))
    handoffs = result.stat("handoffs")
    if handoffs:
        out.append(
            ("cycles per hand-off", f"{result.cycles / handoffs:.0f}")
        )
    txns = result.bus_transactions
    if txns:
        out.append(
            ("cycles per bus transaction", f"{result.cycles / txns:.0f}")
        )
    hits = result.stat("l1_hits") + result.stat("l2_hits")
    misses = result.stat("misses")
    if hits + misses:
        out.append(("cache hit rate", f"{hits / (hits + misses):.1%}"))
    if result.wall_time_s:
        out.append(("host wall time", f"{result.wall_time_s:.3f}s"))
        out.append(
            ("simulated cycles per host second",
             f"{result.cycles / result.wall_time_s:,.0f}")
        )
    return out

"""Experiment harness: configuration, system builder, runners, tables."""

from repro.harness.cache import ResultCache, default_cache_dir, stable_hash
from repro.harness.config import SystemConfig, table1_rows
from repro.harness.diagram import render_sequence_diagram
from repro.harness.experiment import (
    PRIMITIVES,
    RunResult,
    Table3Row,
    run_app,
    run_workload,
    table3,
    table3_row,
    table3_with_stats,
)
from repro.harness.fairness import FairnessReport, measure_lock_fairness
from repro.harness.layout import MemoryLayout
from repro.harness.report import render_report, report_rows
from repro.harness.runner import (
    AppSpec,
    CellSpec,
    FactorySpec,
    RunnerStats,
    run_cells,
)
from repro.harness.sweep import SweepResult, sweep, sweep_config
from repro.harness.system import System
from repro.harness.tables import (
    render_table,
    render_table1,
    render_table2,
    render_table2_parameters,
    render_table3,
)
from repro.harness.traces import (
    ScenarioResult,
    TraceEvent,
    TraceRecorder,
    figure2_scenario,
    figure3_scenario,
    figure4_scenario,
)

__all__ = [
    "AppSpec",
    "CellSpec",
    "FactorySpec",
    "FairnessReport",
    "MemoryLayout",
    "PRIMITIVES",
    "ResultCache",
    "RunResult",
    "RunnerStats",
    "ScenarioResult",
    "System",
    "SystemConfig",
    "Table3Row",
    "TraceEvent",
    "TraceRecorder",
    "default_cache_dir",
    "run_cells",
    "stable_hash",
    "figure2_scenario",
    "figure3_scenario",
    "figure4_scenario",
    "render_table",
    "render_table1",
    "render_table2",
    "render_table2_parameters",
    "render_table3",
    "measure_lock_fairness",
    "render_report",
    "render_sequence_diagram",
    "report_rows",
    "run_app",
    "run_workload",
    "sweep",
    "sweep_config",
    "SweepResult",
    "table1_rows",
    "table3",
    "table3_row",
    "table3_with_stats",
]

"""ASCII sequence diagrams in the style of the paper's figures.

The paper's Figures 2-4 draw one time column per processor with events
and message arrows between them.  :func:`render_sequence_diagram` turns a
recorded :class:`~repro.harness.traces.TraceRecorder` stream for one
cache line into the same layout::

        time  P0                P1                P2
        ----  ----------------  ----------------  ----------------
          20  LL ->LPRFO
          32                    defer(P0)
          42  <~tearoff
          ...

Events are abbreviated; message-ish events carry an arrow marker
(``->`` outgoing request, ``<~`` speculative response, ``<=`` data
arrival).  This is a *renderer*: it never re-simulates, so it shows
exactly what happened.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.harness.traces import TraceEvent, TraceRecorder

#: event kind -> short label template (info fields in {braces})
_LABELS: Dict[str, str] = {
    "ll": "LL={value}",
    "sc": "SC {ok}",
    "store": "ST={value}",
    "swap": "SWAP",
    "enqolb": "EnQOLB={value}",
    "deqolb": "DeQOLB",
    "defer": "defer(P{requester})",
    "tearoff": "~>tearoff(P{to})",
    "tearoff_recv": "<~tearoff",
    "handoff": "=>P{to} [{reason}]",
    "fill": "<=fill({state})",
    "queued": "queued",
    "successor": "succ=P{successor}",
    "squash": "squash!",
    "queue_breakdown": "breakdown!",
    "timeout": "TIMEOUT",
    "release": "release",
    "loan": "loan->P{to}",
    "loan_return": "return->P{to}",
    "loan_back": "<=returned",
    "push": "push->P{to}",
    "push_recv": "<=push",
    "evict_handoff": "evict=>P{to}",
}


def _label(event: TraceEvent) -> str:
    template = _LABELS.get(event.kind)
    if template is None:
        if event.kind.startswith("bus:"):
            return f"->{event.kind[4:]}"
        return event.kind
    info = dict(event.info)
    if event.kind == "sc":
        info["ok"] = "ok" if info.get("success") else "FAIL"
    try:
        return template.format(**info)
    except (KeyError, IndexError):
        return event.kind


def render_sequence_diagram(
    recorder: TraceRecorder,
    line_addr: int,
    n_processors: int,
    column_width: int = 18,
    limit: Optional[int] = None,
    collapse_spins: bool = True,
) -> str:
    """Render the recorded events for one line as per-processor columns.

    ``collapse_spins`` folds runs of identical spin events (repeated LLs
    of the same value on one node) into a single ``... xN`` row, which is
    what makes IQOLB's local-spinning phases legible.
    """
    events = recorder.filtered(line_addr=line_addr)
    if limit is not None:
        events = events[:limit]

    rows: List[tuple] = []  # (time, node, label)
    spin_run = 0
    previous_key = None
    for event in events:
        label = _label(event)
        key = (event.node, event.kind, label)
        if collapse_spins and key == previous_key and event.kind in ("ll", "enqolb"):
            spin_run += 1
            continue
        if spin_run:
            last_time, last_node, last_label = rows[-1]
            rows[-1] = (last_time, last_node, f"{last_label} x{spin_run + 1}")
            spin_run = 0
        rows.append((event.time, event.node, label))
        previous_key = key
    if spin_run and rows:
        last_time, last_node, last_label = rows[-1]
        rows[-1] = (last_time, last_node, f"{last_label} x{spin_run + 1}")

    header = "time".rjust(8) + "  " + "  ".join(
        f"P{p}".ljust(column_width) for p in range(n_processors)
    )
    rule = "-" * 8 + "  " + "  ".join("-" * column_width for _ in range(n_processors))
    lines = [header, rule]
    for time, node, label in rows:
        cells = [" " * column_width] * n_processors
        if 0 <= node < n_processors:
            cells[node] = label[:column_width].ljust(column_width)
        lines.append(f"{time:>8}  " + "  ".join(cells))
    return "\n".join(lines)

"""The shared workload signature: one description of "what a cell runs".

``repro run``, the sweep layer and the analytical prediction subsystem
(:mod:`repro.predict`) all need the same handful of facts about a cell —
processor count, primitive, fabric, critical-section shape, lock count,
inter-acquire compute — but historically each re-derived them from
config dicts and workload constructor state.  :class:`WorkloadSignature`
is the single home for that description:

* the runner extracts it from a live :class:`~repro.workloads.base.Workload`
  (:meth:`WorkloadSignature.from_workload`), so simulated cells and
  predicted cells are described by the same code path;
* the prediction layer builds signatures directly
  (:meth:`WorkloadSignature.from_app_model`, or the constructor for
  microbenchmark shapes) and never touches the simulator;
* signatures are plain frozen dataclasses: hashable, picklable, and
  JSON-encodable via :meth:`to_dict` for artifacts and manifests.

All lengths are in processor cycles, mirroring ``SystemConfig``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

#: signature kinds — the three workload shapes the model understands
KIND_LOCK = "lock"      # lock/unlock around a small critical section
KIND_RMW = "rmw"        # contended atomic fetch&op, no lock
KIND_APP = "app"        # synthetic SPLASH-2 application model


@dataclasses.dataclass(frozen=True)
class WorkloadSignature:
    """The contention parameters that determine a cell's throughput.

    ``total_ops`` is the *total* number of synchronization operations
    (lock acquires or atomic updates) across all processors, conserved
    as the machine scales — matching how the synthetic apps conserve
    ``total_work``.  ``local_compute`` is the mean per-op compute
    outside any critical section; ``cs_*`` describe the protected body.
    """

    kind: str
    workload: str
    primitive: str
    fabric: str
    n_processors: int
    total_ops: int
    n_locks: int = 1
    cs_reads: int = 0
    cs_writes: int = 0
    cs_compute: int = 0
    local_compute: int = 0
    hot_lock_fraction: float = 1.0
    phases: int = 1
    serial_compute: int = 0
    collocated: bool = False

    @property
    def ops_per_proc(self) -> float:
        """Mean sync operations per processor (may be fractional)."""
        return self.total_ops / max(1, self.n_processors)

    @property
    def cs_accesses(self) -> int:
        """Data accesses inside the critical section."""
        return self.cs_reads + self.cs_writes

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkloadSignature":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def with_(self, **overrides: Any) -> "WorkloadSignature":
        """A copy with some fields replaced (mirrors SystemConfig)."""
        return dataclasses.replace(self, **overrides)

    # ------------------------------------------------------------------
    # Constructors shared by the runner and the prediction layer
    # ------------------------------------------------------------------

    @classmethod
    def from_workload(
        cls, workload: Any, config: Any, primitive: str
    ) -> Optional["WorkloadSignature"]:
        """Extract the signature of a live workload instance.

        Recognizes the micro workloads and the synthetic apps; returns
        ``None`` for shapes the model has no closed form for (trace
        scenarios, litmus programs) rather than guessing.
        """
        from repro.workloads.micro import (
            CollocatedCriticalSection,
            ContendedCounter,
            NullCriticalSection,
        )
        from repro.workloads.splash import SyntheticApp

        n = config.n_processors
        fabric = config.interconnect
        if isinstance(workload, NullCriticalSection):
            return cls(
                kind=KIND_LOCK,
                workload=workload.name,
                primitive=primitive,
                fabric=fabric,
                n_processors=n,
                total_ops=n * workload.acquires_per_proc,
                n_locks=1,
                cs_reads=1,
                cs_writes=1,
                local_compute=workload.think_cycles,
            )
        if isinstance(workload, CollocatedCriticalSection):
            return cls(
                kind=KIND_LOCK,
                workload=workload.name,
                primitive=primitive,
                fabric=fabric,
                n_processors=n,
                total_ops=n * workload.acquires_per_proc,
                n_locks=1,
                cs_reads=workload.data_words,
                cs_writes=1,
                local_compute=workload.think_cycles,
                collocated=True,
            )
        if isinstance(workload, ContendedCounter):
            return cls(
                kind=KIND_RMW,
                workload=workload.name,
                primitive=primitive,
                fabric=fabric,
                n_processors=n,
                total_ops=n * workload.increments_per_proc,
                n_locks=1,
                cs_writes=1,
                local_compute=workload.think_cycles,
            )
        if isinstance(workload, SyntheticApp):
            return cls.from_app_model(
                workload.model, primitive=primitive, fabric=fabric,
                n_processors=n,
            )
        return None

    @classmethod
    def from_app_model(
        cls,
        model: Any,
        primitive: str,
        fabric: str = "bus",
        n_processors: int = 32,
    ) -> "WorkloadSignature":
        """The signature of a synthetic SPLASH-2 app model (Table 2)."""
        return cls(
            kind=KIND_APP,
            workload=model.name,
            primitive=primitive,
            fabric=fabric,
            n_processors=n_processors,
            total_ops=model.total_work,
            n_locks=model.n_locks,
            cs_reads=model.cs_reads,
            cs_writes=model.cs_writes,
            cs_compute=model.cs_compute,
            local_compute=model.local_compute,
            hot_lock_fraction=model.hot_lock_fraction,
            phases=model.phases,
            serial_compute=model.serial_compute,
        )

    @classmethod
    def micro_lock(
        cls,
        primitive: str,
        fabric: str = "bus",
        n_processors: int = 16,
        acquires_per_proc: int = 20,
        think_cycles: int = 100,
    ) -> "WorkloadSignature":
        """The null critical section shape, without building a workload."""
        return cls(
            kind=KIND_LOCK,
            workload="null-cs",
            primitive=primitive,
            fabric=fabric,
            n_processors=n_processors,
            total_ops=n_processors * acquires_per_proc,
            n_locks=1,
            cs_reads=1,
            cs_writes=1,
            local_compute=think_cycles,
        )

"""Lock-fairness measurement.

The paper repeatedly trades off fairness: the distributed queue grants
"in precisely the order in which the original requests occurred"
(§3.2), while the retention alternative "avoids queue breakdown at the
expense of ... fairness and of forward progress" (§3.3), and raw TTS
spinning is famously unfair under contention.  This module quantifies
those claims: it runs a contended-lock workload that timestamps every
arrival (start of acquire) and grant (acquire completed), and computes

* waiting-time statistics (mean / max / coefficient of variation),
* FIFO inversions — grants that overtook an earlier arrival, and
* Jain's fairness index over per-thread total waiting time.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Tuple

from repro.cpu.ops import Compute, Read, Write
from repro.harness.config import SystemConfig
from repro.harness.experiment import PRIMITIVES
from repro.harness.system import System
from repro.workloads.base import LockSet


@dataclasses.dataclass
class Acquisition:
    """One lock acquisition: who, when requested, when granted."""

    tid: int
    arrival: int
    grant: int

    @property
    def wait(self) -> int:
        return self.grant - self.arrival


@dataclasses.dataclass
class FairnessReport:
    """Fairness metrics for one run."""

    primitive: str
    n_processors: int
    acquisitions: int
    mean_wait: float
    max_wait: int
    wait_cv: float
    fifo_inversions: int
    jain_index: float

    def row(self) -> Tuple:
        return (
            self.primitive,
            self.acquisitions,
            f"{self.mean_wait:.0f}",
            self.max_wait,
            f"{self.wait_cv:.2f}",
            self.fifo_inversions,
            f"{self.jain_index:.3f}",
        )


def _wait_stats(waits: List[int]) -> Tuple[float, int, float]:
    mean = sum(waits) / len(waits)
    if mean == 0:
        return mean, max(waits), 0.0
    variance = sum((w - mean) ** 2 for w in waits) / len(waits)
    return mean, max(waits), math.sqrt(variance) / mean


def count_fifo_inversions(acquisitions: List[Acquisition]) -> int:
    """Grants that overtook a strictly earlier, still-waiting arrival."""
    inversions = 0
    by_grant = sorted(acquisitions, key=lambda a: a.grant)
    for i, winner in enumerate(by_grant):
        for later in by_grant[i + 1:]:
            if later.arrival < winner.arrival:
                inversions += 1
    return inversions


def jain_index(per_thread_totals: Dict[int, int]) -> float:
    """Jain's fairness index over per-thread waiting totals (1 = fair)."""
    values = [max(v, 1) for v in per_thread_totals.values()]
    numerator = sum(values) ** 2
    denominator = len(values) * sum(v * v for v in values)
    return numerator / denominator


def measure_lock_fairness(
    primitive: str,
    n_processors: int = 8,
    acquires_per_proc: int = 15,
    think_cycles: int = 60,
    config_overrides: dict = None,
) -> FairnessReport:
    """Run a contended lock and report fairness metrics."""
    policy, lock_kind = PRIMITIVES[primitive]
    config = SystemConfig(n_processors=n_processors, policy=policy)
    if config_overrides:
        config = config.with_(**config_overrides)
    system = System(config)
    lockset = LockSet(lock_kind, system, n_locks=1, n_threads=n_processors)
    token = system.layout.alloc_line()
    acquisitions: List[Acquisition] = []
    sim = system.sim

    def worker(tid: int):
        for _ in range(acquires_per_proc):
            arrival = sim.now
            yield from lockset.acquire(0, tid)
            acquisitions.append(Acquisition(tid, arrival, sim.now))
            value = yield Read(token)
            yield Write(token, value + 1)
            yield from lockset.release(0, tid)
            yield Compute(think_cycles)

    for node in range(n_processors):
        system.load_program(node, worker(node))
    system.run()
    expected = n_processors * acquires_per_proc
    actual = system.read_word(token)
    if actual != expected:
        raise AssertionError(f"mutual exclusion violated: {actual} != {expected}")

    waits = [a.wait for a in acquisitions]
    mean, worst, cv = _wait_stats(waits)
    per_thread: Dict[int, int] = {}
    for a in acquisitions:
        per_thread[a.tid] = per_thread.get(a.tid, 0) + a.wait
    return FairnessReport(
        primitive=primitive,
        n_processors=n_processors,
        acquisitions=len(acquisitions),
        mean_wait=mean,
        max_wait=worst,
        wait_cv=cv,
        fifo_inversions=count_fifo_inversions(acquisitions),
        jain_index=jain_index(per_thread),
    )

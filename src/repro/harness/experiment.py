"""Experiment runner: the paper's evaluation procedures.

The central notion is a *primitive* (paper §4): the combination of a
synchronization library implementation and the protocol policy it runs
on.  The paper's three are::

    tts    test&test&set via LL/SC on the conventional protocol
    qolb   explicit QOLB (EnQOLB/DeQOLB) on the QOLB protocol
    iqolb  the same TTS binary, unmodified, on the IQOLB protocol

— the punchline being that ``iqolb`` runs *the TTS software* and gets
QOLB-class performance.  Extra primitives (ticket, mcs, ts, and the
retention variants) support the ablation benches.
"""

from __future__ import annotations

import dataclasses
import time
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.core.registry import PRIMITIVE_SPECS, get_primitive
from repro.harness.config import SystemConfig
from repro.harness.system import System
from repro.telemetry.manifest import RunManifest, workload_seed
from repro.workloads.base import Workload
from repro.workloads.splash import APP_ORDER, make_app

if TYPE_CHECKING:  # pragma: no cover — avoids a runtime import cycle
    from repro.harness.cache import ResultCache
    from repro.harness.runner import RunnerStats

#: primitive name -> (protocol policy, lock kind), derived from the
#: central registry (:data:`repro.core.registry.PRIMITIVE_SPECS`)
PRIMITIVES: Dict[str, tuple] = {
    name: (spec.policy, spec.lock_kind)
    for name, spec in PRIMITIVE_SPECS.items()
}


def primitive_pair(primitive: str) -> tuple:
    """``(policy, lock_kind)`` for a primitive; rejection of an
    unregistered name lists the valid choices."""
    spec = get_primitive(primitive)
    return spec.policy, spec.lock_kind


@dataclasses.dataclass
class RunResult:
    """Outcome of one simulated run."""

    workload: str
    primitive: str
    n_processors: int
    cycles: int
    bus_transactions: int
    stats: Dict[str, int]
    #: Host seconds the simulation took; excluded from equality so that
    #: serial, parallel and cached runs of the same cell compare equal.
    wall_time_s: float = dataclasses.field(default=0.0, compare=False)
    #: Log-bucketed histogram digests (``StatsRegistry.histogram_snapshot``)
    #: — deterministic, so they participate in equality like counters do.
    histograms: Dict[str, Any] = dataclasses.field(default_factory=dict)
    #: Provenance record; host- and wall-time-dependent, never compared.
    manifest: Optional[RunManifest] = dataclasses.field(
        default=None, compare=False
    )

    def stat(self, suffix: str) -> int:
        """Sum of all per-node counters ending in ``.suffix``."""
        return sum(
            value for name, value in self.stats.items()
            if name.endswith(f".{suffix}")
        )


def run_workload(
    workload: Workload,
    config: SystemConfig,
    primitive: str = "tts",
    tracer: Optional[Callable[..., None]] = None,
    verify: bool = True,
    telemetry: Optional[Any] = None,
) -> RunResult:
    """Build a system, run a workload on a primitive, verify, report.

    ``telemetry``, when given, is a
    :class:`~repro.telemetry.tracer.TraceDispatcher` wired to every
    emitter in the system for the duration of the run.
    """
    import repro

    start = time.perf_counter()
    policy, _lock_kind = primitive_pair(primitive)
    run_config = config.with_(policy=policy)
    system = System(run_config, tracer=tracer)
    if telemetry is not None:
        system.attach_telemetry(telemetry)
    workload.build(system)
    cycles = system.run()
    if verify:
        workload.verify(system)
    wall_time_s = time.perf_counter() - start
    manifest = RunManifest.collect(
        config=run_config,
        version=repro.__version__,
        seed=workload_seed(workload),
        wall_time_s=wall_time_s,
        events_fired=system.sim.events_fired,
        queue_high_water=system.sim.queue_high_water,
    )
    return RunResult(
        workload=workload.name,
        primitive=primitive,
        n_processors=config.n_processors,
        cycles=cycles,
        bus_transactions=system.bus_transactions(),
        stats=system.stats.snapshot(),
        wall_time_s=wall_time_s,
        histograms=system.stats.histogram_snapshot(),
        manifest=manifest,
    )


def run_app(
    app_name: str,
    primitive: str,
    n_processors: int,
    model_overrides: Optional[dict] = None,
    config_overrides: Optional[dict] = None,
    telemetry: Optional[Any] = None,
) -> RunResult:
    """Run one synthetic SPLASH-2 model under one primitive."""
    policy, lock_kind = primitive_pair(primitive)
    app = make_app(app_name, lock_kind=lock_kind, model_overrides=model_overrides)
    config = SystemConfig(n_processors=n_processors, policy=policy)
    if config_overrides:
        config = config.with_(**config_overrides)
    return run_workload(
        app, config, primitive=primitive, verify=False, telemetry=telemetry
    )


def app_signature(
    app_name: str,
    primitive: str,
    n_processors: int,
    model_overrides: Optional[dict] = None,
    config_overrides: Optional[dict] = None,
):
    """The :class:`~repro.harness.signature.WorkloadSignature` that
    :func:`run_app` with the same arguments would simulate — the shared
    description ``repro run`` reports and ``repro predict`` models."""
    from repro.harness.signature import WorkloadSignature

    policy, lock_kind = primitive_pair(primitive)
    app = make_app(
        app_name, lock_kind=lock_kind, model_overrides=model_overrides
    )
    config = SystemConfig(n_processors=n_processors, policy=policy)
    if config_overrides:
        config = config.with_(**config_overrides)
    return WorkloadSignature.from_workload(app, config, primitive)


@dataclasses.dataclass
class Table3Row:
    """One benchmark's row of the paper's Table 3."""

    benchmark: str
    tts_absolute_speedup: float
    qolb_speedup: float
    iqolb_speedup: float
    tts_cycles: int
    qolb_cycles: int
    iqolb_cycles: int
    uniprocessor_cycles: int


def table3_row(
    app_name: str,
    n_processors: int = 32,
    model_overrides: Optional[dict] = None,
) -> Table3Row:
    """Reproduce one row of Table 3.

    Absolute speedup is "the fraction of the running time on a single
    node divided by the running time on a 32-node system" for TTS; QOLB
    and IQOLB are reported relative to the TTS base case (paper §5).
    """
    uni = run_app(app_name, "tts", 1, model_overrides)
    tts = run_app(app_name, "tts", n_processors, model_overrides)
    qolb = run_app(app_name, "qolb", n_processors, model_overrides)
    iqolb = run_app(app_name, "iqolb", n_processors, model_overrides)
    return Table3Row(
        benchmark=app_name,
        tts_absolute_speedup=uni.cycles / tts.cycles,
        qolb_speedup=tts.cycles / qolb.cycles,
        iqolb_speedup=tts.cycles / iqolb.cycles,
        tts_cycles=tts.cycles,
        qolb_cycles=qolb.cycles,
        iqolb_cycles=iqolb.cycles,
        uniprocessor_cycles=uni.cycles,
    )


def table3_cells(
    n_processors: int = 32,
    apps: Optional[List[str]] = None,
    model_overrides: Optional[dict] = None,
) -> list:
    """The declarative cell list behind Table 3.

    Four cells per benchmark — the uniprocessor TTS base case plus TTS,
    QOLB and IQOLB on the ``n_processors`` machine — keyed
    ``(app, label)`` so the grid reassembles into :class:`Table3Row`.
    """
    from repro.harness.runner import AppSpec, CellSpec

    names = apps if apps is not None else APP_ORDER
    cells = []
    for name in names:
        runs = [("uni", "tts", 1)] + [
            (primitive, primitive, n_processors)
            for primitive in ("tts", "qolb", "iqolb")
        ]
        for label, primitive, procs in runs:
            policy, lock_kind = primitive_pair(primitive)
            cells.append(
                CellSpec(
                    key=(name, label),
                    primitive=primitive,
                    config=SystemConfig(n_processors=procs, policy=policy),
                    workload=AppSpec(
                        app_name=name,
                        lock_kind=lock_kind,
                        model_overrides=model_overrides,
                    ),
                    verify=False,
                )
            )
    return cells


def table3_with_stats(
    n_processors: int = 32,
    apps: Optional[List[str]] = None,
    n_jobs: int = 1,
    cache: Optional["ResultCache"] = None,
    model_overrides: Optional[dict] = None,
    metrics_out: Optional[str] = None,
) -> Tuple[List[Table3Row], "RunnerStats"]:
    """Reproduce Table 3 through the parallel runner.

    Returns the rows plus the :class:`~repro.harness.runner.RunnerStats`
    (simulated vs. cache-hit cell counts) for the batch.  With
    ``metrics_out``, the full per-cell grid — counters, histogram
    percentiles and run manifests — is also written as ``metrics.json``.
    """
    from repro.harness.runner import run_cells
    from repro.telemetry.export import write_metrics

    names = apps if apps is not None else APP_ORDER
    cells = table3_cells(n_processors, names, model_overrides)
    grid, stats = run_cells(cells, n_jobs=n_jobs, cache=cache)
    if metrics_out is not None:
        write_metrics(metrics_out, grid, stats)
    rows = []
    for name in names:
        uni = grid[(name, "uni")]
        tts = grid[(name, "tts")]
        qolb = grid[(name, "qolb")]
        iqolb = grid[(name, "iqolb")]
        rows.append(
            Table3Row(
                benchmark=name,
                tts_absolute_speedup=uni.cycles / tts.cycles,
                qolb_speedup=tts.cycles / qolb.cycles,
                iqolb_speedup=tts.cycles / iqolb.cycles,
                tts_cycles=tts.cycles,
                qolb_cycles=qolb.cycles,
                iqolb_cycles=iqolb.cycles,
                uniprocessor_cycles=uni.cycles,
            )
        )
    return rows, stats


def table3(
    n_processors: int = 32,
    apps: Optional[List[str]] = None,
    n_jobs: int = 1,
    cache: Optional["ResultCache"] = None,
    model_overrides: Optional[dict] = None,
) -> List[Table3Row]:
    """Reproduce the paper's Table 3 (all benchmarks)."""
    rows, _stats = table3_with_stats(
        n_processors,
        apps,
        n_jobs=n_jobs,
        cache=cache,
        model_overrides=model_overrides,
    )
    return rows

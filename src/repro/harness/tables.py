"""Plain-text table rendering for the paper's tables.

Everything renders from live objects (configs, workload models, run
results), never from hard-coded strings, so the benches that print these
tables genuinely *regenerate* them.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.harness.config import SystemConfig, table1_rows
from repro.harness.experiment import Table3Row
from repro.workloads.splash import APP_MODELS, APP_ORDER


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[str]], title: str = ""
) -> str:
    """Fixed-width table with a separator under the header."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_table1(config: Optional[SystemConfig] = None) -> str:
    """Table 1: baseline system parameters."""
    return render_table(
        ["Component", "Item", "Configuration"],
        table1_rows(config),
        title="Table 1. Baseline system",
    )


def render_table2() -> str:
    """Table 2: benchmarks and inputs (the synthetic model analogues)."""
    rows = []
    for name in APP_ORDER:
        model = APP_MODELS[name]
        rows.append((model.name, model.description, model.input_analogue))
    return render_table(
        ["Benchmark", "Type of simulation (model)", "Input analogue"],
        rows,
        title="Table 2. Benchmarks",
    )


def render_table2_parameters() -> str:
    """The synthetic models' full parameterisation (reproduction detail)."""
    headers = [
        "Benchmark", "work", "locks", "hot%", "csR", "csW", "csC",
        "local", "phases", "serial",
    ]
    rows = []
    for name in APP_ORDER:
        m = APP_MODELS[name]
        rows.append((
            m.name, m.total_work, m.n_locks, f"{m.hot_lock_fraction:.2f}",
            m.cs_reads, m.cs_writes, m.cs_compute, m.local_compute,
            m.phases, m.serial_compute,
        ))
    return render_table(headers, rows, title="Synthetic model parameters")


def render_table3(rows: List[Table3Row], n_processors: int = 32) -> str:
    """Table 3: speedups (TTS absolute in parentheses; rest relative)."""
    headers = ["Synch. primitive"] + [row.benchmark for row in rows]
    tts = ["TTS w/ LL/SC"] + [
        f"({row.tts_absolute_speedup:.1f})" for row in rows
    ]
    qolb = ["QOLB"] + [f"{row.qolb_speedup:.2f}" for row in rows]
    iqolb = ["IQOLB"] + [f"{row.iqolb_speedup:.2f}" for row in rows]
    return render_table(
        headers,
        [tts, qolb, iqolb],
        title=f"Table 3. Results ({n_processors}-processor system)",
    )

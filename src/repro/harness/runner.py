"""Parallel experiment runner.

The sweep layer describes each simulation as a picklable
:class:`CellSpec` — (workload spec, config, primitive) plus a grid key —
and submits batches of them through :func:`run_cells`, which executes
them across a ``ProcessPoolExecutor`` worker pool, consults the
content-addressed :class:`~repro.harness.cache.ResultCache` first, and
reassembles the grid in deterministic spec order.

The simulator is single-threaded and deterministic, so a parallel run
produces results bit-identical to a serial one; ``run_cells`` falls back
to an in-process serial loop for ``n_jobs=1``, for unpicklable specs
(e.g. lambda workload factories), and for platforms where worker
processes cannot be started.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import pickle
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, TextIO, Tuple

from repro.harness.cache import ResultCache
from repro.harness.config import SystemConfig
from repro.harness.experiment import RunResult, run_workload
from repro.workloads.base import Workload
from repro.workloads.splash import make_app


@dataclasses.dataclass
class FactorySpec:
    """A workload built by calling ``factory(lock_kind)``.

    The factory must be picklable (a module-level callable or a
    ``functools.partial`` of one) for the spec to run in a worker
    process; unpicklable factories still work via the serial fallback.
    """

    factory: Callable[[str], Workload]
    lock_kind: str

    def make(self) -> Workload:
        return self.factory(self.lock_kind)

    def describe(self) -> Any:
        """A stable content description: class + constructor state.

        Building a workload is cheap (construction only stores
        parameters; ``build()`` is what touches a System), so the
        description is taken from a fresh instance's attributes rather
        than from the factory's identity — a factory whose parameters
        change produces a different key even if its name does not.
        """
        sample = self.make()
        return {
            "kind": "factory",
            "class": f"{type(sample).__module__}.{type(sample).__qualname__}",
            "lock_kind": self.lock_kind,
            "params": dict(vars(sample)),
        }


@dataclasses.dataclass
class AppSpec:
    """A synthetic SPLASH-2 application model by name (Table 2)."""

    app_name: str
    lock_kind: str
    model_overrides: Optional[dict] = None

    def make(self) -> Workload:
        return make_app(
            self.app_name,
            lock_kind=self.lock_kind,
            model_overrides=self.model_overrides,
        )

    def describe(self) -> Any:
        sample = self.make()
        return {
            "kind": "app",
            "app_name": self.app_name,
            "lock_kind": self.lock_kind,
            "model": sample.model,
        }


@dataclasses.dataclass
class CellSpec:
    """One grid cell: a workload on a primitive under a config."""

    key: Tuple[Any, ...]
    primitive: str
    config: SystemConfig
    workload: Any  # FactorySpec | AppSpec (anything with make/describe)
    verify: bool = True

    def __post_init__(self) -> None:
        # Reject unregistered primitives at construction, with the
        # registry's choice-listing message — a typo'd sweep spec fails
        # before any cell is simulated, not deep inside a worker.
        from repro.core.registry import get_primitive

        get_primitive(self.primitive)

    def describe(self) -> Any:
        """The content description hashed into the cache key."""
        return {
            "primitive": self.primitive,
            "config": self.config,
            "workload": self.workload.describe(),
            "verify": self.verify,
        }

    def signature(self) -> Optional["WorkloadSignature"]:
        """The cell's model-facing :class:`WorkloadSignature`.

        ``None`` for workload shapes the prediction layer has no closed
        form for (trace scenarios, litmus programs).
        """
        from repro.harness.signature import WorkloadSignature

        return WorkloadSignature.from_workload(
            self.workload.make(), self.config, self.primitive
        )


@dataclasses.dataclass
class RunnerStats:
    """What a batch of cells cost: simulations run vs. cache hits."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    wall_time_s: float = 0.0
    n_jobs: int = 1

    def summary(self) -> str:
        return (
            f"{self.total} cells: {self.executed} simulated, "
            f"{self.cache_hits} cache hits "
            f"({self.n_jobs} jobs, {self.wall_time_s:.2f}s wall)"
        )

    def print_summary(self, file: Optional[TextIO] = None) -> None:
        """Print the summary to *file* (default **stderr**).

        Diagnostics go to stderr so that piping a command's stdout (e.g.
        ``repro table3 --format json | jq``) yields clean JSON.
        """
        print(self.summary(), file=file if file is not None else sys.stderr)


def execute_cell(spec: CellSpec) -> RunResult:
    """Run one cell to completion (also the worker-process entry point)."""
    workload = spec.workload.make()
    return run_workload(
        workload, spec.config, primitive=spec.primitive, verify=spec.verify
    )


def _picklable(*objects: Any) -> bool:
    try:
        pickle.dumps(objects)
    except Exception:
        return False
    return True


def map_parallel(
    fn: Callable[[Any], Any], items: Sequence[Any], n_jobs: int
) -> List[Any]:
    """``[fn(item) for item in items]`` across a worker-process pool.

    The generic engine behind :func:`run_cells`, reused by any batch of
    independent deterministic jobs (e.g. ``repro check``'s per-config
    explorations).  Results come back in item order.  Falls back to an
    in-process serial loop when parallelism cannot help (one job, one
    item), when ``fn``/items are unpicklable, or when the platform cannot
    start worker processes — the results are identical either way.
    """
    if n_jobs > 1 and len(items) > 1 and _picklable(fn, list(items)):
        workers = min(n_jobs, len(items))
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            ) as pool:
                return list(pool.map(fn, items))
        except (OSError, ValueError, concurrent.futures.BrokenExecutor):
            pass  # no fork/spawn available — fall through to serial
    return [fn(item) for item in items]


def _execute_batch(
    specs: Sequence[CellSpec], n_jobs: int
) -> List[RunResult]:
    """Execute specs in order; parallel when possible, serial otherwise."""
    return map_parallel(execute_cell, specs, n_jobs)


def run_cells(
    specs: Sequence[CellSpec],
    n_jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> Tuple[Dict[Tuple[Any, ...], RunResult], RunnerStats]:
    """Run a batch of cells, returning ``(grid, stats)``.

    The grid maps each spec's ``key`` to its :class:`RunResult`, in spec
    order.  With a cache, previously-computed cells are served from disk
    and only the remainder is simulated; ``stats`` reports the split so
    callers can surface it ("0 simulated, 20 cache hits").
    """
    stats = RunnerStats(total=len(specs), n_jobs=max(1, n_jobs))
    start = time.perf_counter()
    results: Dict[Tuple[Any, ...], RunResult] = {}
    pending: List[CellSpec] = []
    for spec in specs:
        cached = cache.get(cache.key(spec.describe())) if cache else None
        if cached is not None:
            results[spec.key] = cached
            stats.cache_hits += 1
        else:
            pending.append(spec)
    if pending:
        for spec, result in zip(pending, _execute_batch(pending, n_jobs)):
            results[spec.key] = result
            stats.executed += 1
            if cache:
                cache.put(cache.key(spec.describe()), result)
    stats.wall_time_s = time.perf_counter() - start
    return {spec.key: results[spec.key] for spec in specs}, stats
